#!/usr/bin/env bash
# Bench regression smoke gate: run the full pipeline sweep on the bundled
# example graph, emit BENCH_pipeline.json from its --metrics-out file, and
# compare against the checked-in baseline. Fails on any deterministic
# counter mismatch (nnz, flops, cache, MCL iterations) or a wall-clock
# regression beyond BENCH_GATE_TOLERANCE (default 0.25 = 25%, with a small
# absolute slack floor for sub-second runs — see crates/bench/src/gate.rs).
#
# To refresh the baseline after an intentional kernel change:
#   ./scripts/bench_gate.sh || true
#   cp target/bench_gate/BENCH_pipeline.json bench_results/baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${BENCH_GATE_TOLERANCE:-0.25}"
BASELINE="bench_results/baseline.json"
OUT_DIR="target/bench_gate"
mkdir -p "$OUT_DIR"

cargo build --release -q -p symclust-cli -p symclust-bench

./target/release/symclust pipeline \
  --input examples/data/dsbm_small.txt \
  --truth examples/data/dsbm_small.truth.txt \
  --clusterers mlrmcl,metis --k 8 --prune 0.001 \
  --quiet \
  --metrics-out "$OUT_DIR/metrics.json"

./target/release/bench_gate emit "$OUT_DIR/metrics.json" "$OUT_DIR/BENCH_pipeline.json"
./target/release/bench_gate check "$BASELINE" "$OUT_DIR/BENCH_pipeline.json" "$TOLERANCE"

# SYRK speedup lock: the symmetric kernel must do strictly fewer
# multiply-adds than the general kernel on the bundled example, for a
# bit-identical product.
./target/release/bench_gate syrk-check examples/data/dsbm_small.txt

# Artifact-store speedup lock: replaying a symmetrization through a fresh
# memory tier over the on-disk store (a simulated daemon restart) must be
# a disk hit — zero SpGEMM calls, bit-identical matrix — and strictly
# faster than the cold compute.
./target/release/bench_gate serve-check examples/data/dsbm_small.txt

# Adaptive-accumulator lock: the adaptive per-row strategy must produce
# byte-identical output to forced-sparse accumulation, pick the dense
# path for at least one row, and be strictly faster on the bundled graph.
./target/release/bench_gate accum-check examples/data/dsbm_small.txt

# Out-of-core panel lock: a forced tiny-panel, 1-byte-budget run must
# execute multiple tiles, spill at least once, and stay byte-identical to
# the in-memory product (serial and parallel), while the default in-memory
# run reports zero panel activity.
./target/release/bench_gate panel-check examples/data/dsbm_small.txt

# Out-of-core end-to-end lock: stream a DSBM graph to disk, then run the
# full symmetrize→cluster pipeline with a spill budget at most a quarter
# of the file size — it must spill, finish, and recover the planted
# clusters.
./target/release/bench_gate oom-check

# Perf trajectory: append {commit, wall_ms, flops, rows_dense, rows_sparse}
# to the checked-in history so CI accumulates a wall-time record run over
# run (set BENCH_GATE_NO_TRAJECTORY=1 to skip, e.g. for local experiments).
if [ -z "${BENCH_GATE_NO_TRAJECTORY:-}" ]; then
  ./target/release/bench_gate trajectory \
    "$OUT_DIR/BENCH_pipeline.json" bench_results/trajectory.jsonl \
    "$(git rev-parse HEAD 2>/dev/null || echo unknown)"
fi

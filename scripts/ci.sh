#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault injection: cargo test -q -p symclust-engine --features fault-injection"
cargo test -q -p symclust-engine --features fault-injection

echo "==> debug assertions: cargo test -q -p symclust-engine (release + debug-assertions)"
RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on" cargo test -q --release -p symclust-engine

echo "CI gate passed."

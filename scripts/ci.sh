#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test pass, and the
# bench regression smoke gate. Run from the repository root:
#
#   ./scripts/ci.sh              # every stage, in order
#   ./scripts/ci.sh clippy test  # just the named stages
#
# `.github/workflows/ci.yml` invokes the same stages one job each, so the
# stage list below is the single source of truth for what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES=(fmt clippy check build test fault debug-assertions threads-matrix bench)

stage_fmt() { cargo fmt --all -- --check; }
stage_clippy() { cargo clippy --workspace --all-targets -- -D warnings; }
# Repo-invariant lint rules + exhaustive scheduler model check
# (DESIGN.md §13). Runs first among the heavy stages: it needs only the
# dependency-free symclust-check crate, so contract violations fail fast.
stage_check() {
  cargo run -q -p symclust-check -- lint
  cargo run -q -p symclust-check -- sched-model
}
stage_build() { cargo build --release; }
# One workspace pass covers the tier-1 crates too; the old separate
# `cargo test -q` stage was a strict subset of this one.
stage_test() { cargo test -q --workspace; }
stage_fault() { cargo test -q -p symclust-engine --features fault-injection; }
stage_debug_assertions() {
  RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on" \
    cargo test -q --release -p symclust-engine
}
stage_bench() { ./scripts/bench_gate.sh; }
# Scheduling-determinism matrix: the kernel/symmetrizer tests must pass
# with the SpGEMM thread default forced serial and forced 4-way, since
# output (and every deterministic counter) is spec'd bit-identical for
# any thread count.
stage_threads_matrix() {
  for n in 1 4; do
    echo "--- SYMCLUST_THREADS=$n"
    SYMCLUST_THREADS="$n" cargo test -q -p symclust-sparse -p symclust-core
  done
}

run_stage() {
  local name="$1"
  local fn="stage_${name//-/_}"
  if ! declare -F "$fn" >/dev/null; then
    echo "ci.sh: unknown stage '$name' (stages: ${ALL_STAGES[*]})" >&2
    exit 2
  fi
  echo "==> $name"
  local start=$SECONDS
  "$fn"
  echo "==> $name passed in $((SECONDS - start))s"
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=("${ALL_STAGES[@]}")
fi

total_start=$SECONDS
for stage in "${stages[@]}"; do
  run_stage "$stage"
done
echo "CI gate passed in $((SECONDS - total_start))s (${stages[*]})."

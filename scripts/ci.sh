#!/usr/bin/env bash
# Local CI gate: formatting, lints, the tier-1 build + test pass, and the
# bench regression smoke gate. Run from the repository root:
#
#   ./scripts/ci.sh              # every stage, in order
#   ./scripts/ci.sh clippy test  # just the named stages
#
# `.github/workflows/ci.yml` invokes the same stages one job each, so the
# stage list below is the single source of truth for what CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

ALL_STAGES=(fmt clippy check build test fault debug-assertions threads-matrix oom-matrix serve chaos bench sanitize miri)

stage_fmt() { cargo fmt --all -- --check; }
stage_clippy() { cargo clippy --workspace --all-targets -- -D warnings; }
# Repo-invariant lint rules + the exhaustive scheduler and serve-lifecycle
# model checks (DESIGN.md §13, §18). Runs first among the heavy stages: it
# needs only the dependency-free symclust-check crate, so contract
# violations fail fast.
stage_check() {
  cargo run -q -p symclust-check -- lint
  cargo run -q -p symclust-check -- sched-model
  cargo run -q -p symclust-check -- serve-model
}
stage_build() { cargo build --release; }
# One workspace pass covers the tier-1 crates too; the old separate
# `cargo test -q` stage was a strict subset of this one.
stage_test() { cargo test -q --workspace; }
stage_fault() { cargo test -q -p symclust-engine --features fault-injection; }
# Chaos-hardening gate (DESIGN.md §15): the store + cli test suites under
# the deterministic I/O fault injector, then the full scripted
# kill-and-restart sweep against a real daemon over a real socket. The
# sweep fails on any crash-consistency violation: a corrupt blob served,
# a torn stats.json, a replay that is not byte-identical, or an LRU
# budget overrun after recovery.
stage_chaos() {
  cargo test -q -p symclust-store --features fault-injection
  cargo test -q -p symclust-cli --features fault-injection
  cargo build --release -q -p symclust-cli --features fault-injection
  ./target/release/symclust chaos --seed 42 --cycles 25
}
stage_debug_assertions() {
  RUSTFLAGS="${RUSTFLAGS:-} -C debug-assertions=on" \
    cargo test -q --release -p symclust-engine
}
stage_bench() { ./scripts/bench_gate.sh; }
# Daemon smoke over a real unix socket: upload the bundled graph, cold-
# compute one symmetrization, restart the daemon over the same store, and
# require the identical request to come back byte-identical with the
# store reporting a hit (no recompute).
SERVE_PID=""
serve_cleanup() { [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true; }
serve_wait_ready() {
  local sock="$1" log="$2"
  for _ in $(seq 1 200); do
    [ -S "$sock" ] && return 0
    kill -0 "$SERVE_PID" 2>/dev/null || {
      echo "serve: daemon exited before binding:" >&2
      cat "$log" >&2
      return 1
    }
    sleep 0.05
  done
  echo "serve: daemon never became ready:" >&2
  cat "$log" >&2
  return 1
}
stage_serve() {
  cargo build --release -q -p symclust-cli
  trap serve_cleanup EXIT
  local dir=target/serve_ci
  rm -rf "$dir"
  mkdir -p "$dir"
  local sock="$dir/serve.sock" store="$dir/store" log="$dir/serve.log"
  local client=(./target/release/symclust client --socket "$sock")

  ./target/release/symclust serve --socket "$sock" --store "$store" >"$log" 2>&1 &
  SERVE_PID=$!
  serve_wait_ready "$sock" "$log"
  local upload graph r1
  upload="$("${client[@]}" --op upload-graph --edges-file examples/data/dsbm_small.txt)"
  graph="$(sed -n 's/.*"graph":"\([0-9a-f]*\)".*/\1/p' <<<"$upload")"
  [ -n "$graph" ] || {
    echo "serve: no graph key in: $upload" >&2
    return 1
  }
  r1="$("${client[@]}" --op symmetrize --graph "$graph" --method bib)"
  "${client[@]}" --op shutdown >/dev/null
  wait "$SERVE_PID"

  ./target/release/symclust serve --socket "$sock" --store "$store" >"$log" 2>&1 &
  SERVE_PID=$!
  serve_wait_ready "$sock" "$log"
  local r2 stats hits
  r2="$("${client[@]}" --op symmetrize --graph "$graph" --method bib)"
  stats="$("${client[@]}" --op stats)"
  "${client[@]}" --op shutdown >/dev/null
  wait "$SERVE_PID"
  SERVE_PID=""
  [ "$r1" = "$r2" ] || {
    echo "serve: responses differ across restart:" >&2
    echo "  $r1" >&2
    echo "  $r2" >&2
    return 1
  }
  hits="$(sed -n 's/.*"store-hits":\([0-9]*\).*/\1/p' <<<"$stats")"
  [ "${hits:-0}" -ge 1 ] || {
    echo "serve: expected a store hit after restart, got: $stats" >&2
    return 1
  }
}
# Scheduling-determinism matrix: the kernel/symmetrizer tests must pass
# with the SpGEMM thread default forced serial and forced 4-way, and
# under every accumulator strategy (dense / sparse / adaptive), since
# output (and every deterministic counter) is spec'd bit-identical for
# any thread count and any strategy mix.
stage_threads_matrix() {
  for accum in dense sparse adaptive; do
    for n in 1 4; do
      echo "--- SYMCLUST_ACCUM=$accum SYMCLUST_THREADS=$n"
      SYMCLUST_ACCUM="$accum" SYMCLUST_THREADS="$n" \
        cargo test -q -p symclust-sparse -p symclust-core
    done
  done
}
# Out-of-core determinism matrix: the same kernel/symmetrizer suites must
# pass with the panel path engaged through the environment — small panels,
# with and without a starvation-level spill byte budget — because the
# out-of-core path is spec'd bit-identical to the in-memory one for any
# panel size and any budget (DESIGN.md §17).
stage_oom_matrix() {
  for budget in "" 1; do
    for rows in 7 64; do
      echo "--- SYMCLUST_PANEL_ROWS=$rows SYMCLUST_MEMORY_BUDGET=${budget:-unset}"
      SYMCLUST_PANEL_ROWS="$rows" SYMCLUST_MEMORY_BUDGET="$budget" \
        cargo test -q -p symclust-sparse -p symclust-core
    done
  done
}

# Sanitizer pass (DESIGN.md §18): ThreadSanitizer, then AddressSanitizer,
# over the concurrency-heavy suites — the sparse scheduler / accumulator /
# cancellation lib tests, the store crate, and the daemon end-to-end
# suites (the daemon binary itself runs instrumented). Requires a nightly
# toolchain (-Zsanitizer is unstable); skips cleanly when none is
# installed — the GitHub job installs one, so CI always runs it.
#
# TSan runs under scripts/tsan.supp: against a prebuilt (uninstrumented)
# standard library, std-internal synchronization — scoped-thread joins,
# mpsc channels, condvars — is invisible to TSan, which then reports
# false races whose every frame sits in std or test-harness code. The
# suppressions are anchored on those frames; a real race in library code
# carries symclust_* frames and still reports. When rust-src is
# available, std is rebuilt instrumented (-Zbuild-std) and the
# suppression file is inert belt-and-braces.
SANITIZE_SUITES=(-p symclust-sparse -p symclust-store -p symclust-cli)
sanitize_run() {
  local name="$1" zflag="$2" tdir="$3"
  shift 3
  echo "--- $name"
  # --tests: doctests are compiled by rustdoc, which does not see
  # RUSTFLAGS and so cannot link the sanitized rlibs.
  RUSTFLAGS="${RUSTFLAGS:-} -Z sanitizer=$zflag -C unsafe-allow-abi-mismatch=sanitizer" \
    rustup run nightly cargo test -q --tests \
    --target x86_64-unknown-linux-gnu --target-dir "target/$tdir" \
    "$@" "${SANITIZE_SUITES[@]}"
}
stage_sanitize() {
  if ! rustup run nightly cargo --version >/dev/null 2>&1; then
    echo "sanitize: no nightly toolchain installed; stage skipped"
    return 0
  fi
  local build_std=()
  if [ -d "$(rustup run nightly rustc --print sysroot)/lib/rustlib/src/rust/library" ]; then
    build_std=(-Zbuild-std)
  fi
  TSAN_OPTIONS="suppressions=$PWD/scripts/tsan.supp" \
    sanitize_run tsan thread tsan "${build_std[@]}"
  sanitize_run asan address asan "${build_std[@]}"
}
# Miri gate (DESIGN.md §18): the curated concurrency-core subset — the
# work-stealing scheduler, cancellation tokens, and SpGEMM accumulators —
# runs as a *gating* check (it is minutes, not hours). The full-workspace
# miri sweep stays a nightly allow-failure job in ci.yml. Skips cleanly
# when the miri component is not installed locally.
stage_miri() {
  if ! rustup run nightly cargo miri --version >/dev/null 2>&1; then
    echo "miri: component not installed; stage skipped"
    return 0
  fi
  MIRIFLAGS="-Zmiri-strict-provenance" \
    rustup run nightly cargo miri test -p symclust-sparse --lib \
    sched:: cancel:: accum::
}

run_stage() {
  local name="$1"
  local fn="stage_${name//-/_}"
  if ! declare -F "$fn" >/dev/null; then
    echo "ci.sh: unknown stage '$name' (stages: ${ALL_STAGES[*]})" >&2
    exit 2
  fi
  echo "==> $name"
  local start=$SECONDS
  "$fn"
  echo "==> $name passed in $((SECONDS - start))s"
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=("${ALL_STAGES[@]}")
fi

total_start=$SECONDS
for stage in "${stages[@]}"; do
  run_stage "$stage"
done
echo "CI gate passed in $((SECONDS - total_start))s (${stages[*]})."

//! End-to-end integration tests: directed graph → symmetrization →
//! clustering → evaluation, across crates.

use symclust::cluster::{ClusterAlgorithm, GraclusLike, MetisLike, MlrMcl};
use symclust::core::{Bibliometric, DegreeDiscounted, PlusTranspose, RandomWalk, Symmetrizer};
use symclust::eval::{adjusted_rand_index, avg_f_score};
use symclust::graph::generators::{figure1_graph, shared_link_dsbm, SharedLinkDsbmConfig};

fn planted_graph(seed: u64) -> symclust::graph::generators::GeneratedGraph {
    shared_link_dsbm(&SharedLinkDsbmConfig {
        n_nodes: 600,
        n_clusters: 12,
        p_signature: 0.7,
        p_intra: 0.01,
        n_hubs: 4,
        seed,
        ..Default::default()
    })
    .expect("generator succeeds")
}

#[test]
fn degree_discounted_recovers_planted_clusters_with_metis() {
    let g = planted_graph(11);
    let sym = DegreeDiscounted::default()
        .symmetrize(&g.graph)
        .expect("symmetrize");
    let c = MetisLike::with_k(12).cluster(&sym).expect("cluster");
    let f = avg_f_score(c.assignments(), &g.truth).avg_f;
    assert!(f > 60.0, "F = {f}");
}

#[test]
fn degree_discounted_recovers_planted_clusters_with_mlrmcl() {
    let g = planted_graph(12);
    let sym = DegreeDiscounted::default()
        .symmetrize(&g.graph)
        .expect("symmetrize");
    let c = MlrMcl::with_inflation(2.0).cluster(&sym).expect("cluster");
    let f = avg_f_score(c.assignments(), &g.truth).avg_f;
    assert!(f > 50.0, "F = {f} with k = {}", c.n_clusters());
}

#[test]
fn degree_discounted_recovers_planted_clusters_with_graclus() {
    let g = planted_graph(13);
    let sym = DegreeDiscounted::default()
        .symmetrize(&g.graph)
        .expect("symmetrize");
    let c = GraclusLike::with_k(12).cluster(&sym).expect("cluster");
    let f = avg_f_score(c.assignments(), &g.truth).avg_f;
    assert!(f > 55.0, "F = {f}");
}

#[test]
fn degree_discounted_beats_plus_transpose_on_shared_link_clusters() {
    // The headline claim of the paper, as an invariant of this repo: on a
    // graph whose clusters are defined by shared links (not interlinkage),
    // Degree-discounted symmetrization yields better clusters than A+Aᵀ.
    let g = planted_graph(14);
    let k = 12;
    let dd = DegreeDiscounted::default()
        .symmetrize(&g.graph)
        .expect("symmetrize");
    let pt = PlusTranspose.symmetrize(&g.graph).expect("symmetrize");
    let f_dd = avg_f_score(
        MetisLike::with_k(k)
            .cluster(&dd)
            .expect("cluster")
            .assignments(),
        &g.truth,
    )
    .avg_f;
    let f_pt = avg_f_score(
        MetisLike::with_k(k)
            .cluster(&pt)
            .expect("cluster")
            .assignments(),
        &g.truth,
    )
    .avg_f;
    assert!(
        f_dd > f_pt + 5.0,
        "Degree-discounted F = {f_dd} vs A+A' F = {f_pt}"
    );
}

#[test]
fn all_symmetrizations_produce_clusterable_graphs() {
    let g = planted_graph(15);
    let syms: Vec<Box<dyn Symmetrizer>> = vec![
        Box::new(PlusTranspose),
        Box::new(RandomWalk::default()),
        Box::new(Bibliometric::default()),
        Box::new(DegreeDiscounted::default()),
    ];
    for sym_method in syms {
        let sym = sym_method.symmetrize(&g.graph).expect("symmetrize");
        assert!(sym.adjacency().is_symmetric(1e-9), "{}", sym.method());
        let c = MetisLike::with_k(12).cluster(&sym).expect("cluster");
        assert_eq!(c.n_nodes(), 600);
        assert_eq!(c.n_clusters(), 12, "{}", sym.method());
    }
}

#[test]
fn planted_recovery_measured_by_ari() {
    // ARI against the *complete* planted partition (no unlabeled holes).
    let cfg = SharedLinkDsbmConfig {
        n_nodes: 500,
        n_clusters: 10,
        p_signature: 0.8,
        n_hubs: 0,
        unlabeled_fraction: 0.0,
        seed: 99,
        ..Default::default()
    };
    let g = shared_link_dsbm(&cfg).expect("generate");
    let sym = DegreeDiscounted::default()
        .symmetrize(&g.graph)
        .expect("symmetrize");
    let c = MetisLike::with_k(10).cluster(&sym).expect("cluster");
    let ari = adjusted_rand_index(c.assignments(), &g.planted);
    assert!(ari > 0.5, "ARI = {ari}");
}

#[test]
fn figure1_pair_clusters_under_dd_but_not_under_plus_transpose() {
    let g = figure1_graph();
    let dd = DegreeDiscounted::default().symmetrize(&g).expect("dd");
    // Under DD the pair is connected with the strongest weight incident to
    // either node.
    let w45 = dd.adjacency().get(4, 5);
    assert!(w45 > 0.0);
    let pt = PlusTranspose.symmetrize(&g).expect("pt");
    assert_eq!(pt.adjacency().get(4, 5), 0.0);
}

#[test]
fn pipeline_is_deterministic() {
    let g = planted_graph(16);
    let run = || {
        let sym = DegreeDiscounted::default()
            .symmetrize(&g.graph)
            .expect("symmetrize");
        MetisLike::with_k(12)
            .cluster(&sym)
            .expect("cluster")
            .assignments()
            .to_vec()
    };
    assert_eq!(run(), run());
}

//! Tests of the mathematical identities the paper's framework rests on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symclust::core::{
    Bibliometric, BibliometricOptions, DegreeDiscounted, RandomWalk, Symmetrizer,
};
use symclust::eval::{directed_normalized_cut, normalized_cut};
use symclust::graph::DiGraph;

/// A doubly-stochastic-after-normalization digraph: every node has
/// out-degree and in-degree exactly `d` (union of `d` circulant shifts),
/// so the uniform distribution is stationary for the walk both with and
/// without teleportation.
fn circulant(n: usize, shifts: &[usize]) -> DiGraph {
    let mut edges = Vec::new();
    for i in 0..n {
        for &s in shifts {
            edges.push((i, (i + s) % n));
        }
    }
    DiGraph::from_edges(n, &edges).expect("valid edges")
}

/// Gleich's theorem (§3.2 of the paper): for `U = (ΠP + PᵀΠ)/2`, the
/// undirected normalized cut of any vertex subset in `U` equals the
/// directed normalized cut (Eq. 3) of the same subset in `G`, whenever `π`
/// is stationary for `P`.
#[test]
fn gleich_equivalence_of_random_walk_symmetrization() {
    let g = circulant(24, &[1, 3, 7]);
    let sym = RandomWalk::default().symmetrize(&g).expect("symmetrize");
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..20 {
        // Random nonempty proper subset as a 2-clustering.
        let assignment: Vec<u32> = (0..24).map(|_| rng.gen_range(0..2u32)).collect();
        if assignment.iter().all(|&a| a == 0) || assignment.iter().all(|&a| a == 1) {
            continue;
        }
        let undirected = normalized_cut(sym.graph(), &assignment);
        let directed = directed_normalized_cut(&g, &assignment, 0.05);
        assert!(
            (undirected - directed).abs() < 1e-6,
            "NCut_U = {undirected} vs NCut_dir = {directed}"
        );
    }
}

/// Kessler/Small counting semantics (§2.2): on an unweighted graph,
/// `AAᵀ(i,j)` is the number of common out-neighbors and `AᵀA(i,j)` the
/// number of common in-neighbors; the Bibliometric weight is their sum.
#[test]
fn bibliometric_counts_common_neighbors() {
    let mut rng = StdRng::seed_from_u64(17);
    let n = 40;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(0.1) {
                edges.push((u, v));
            }
        }
    }
    let g = DiGraph::from_edges(n, &edges).expect("valid edges");
    let sym = Bibliometric {
        options: BibliometricOptions {
            add_identity: false,
            ..Default::default()
        },
    }
    .symmetrize(&g)
    .expect("symmetrize");
    let a = g.adjacency();
    for i in 0..n {
        for j in (i + 1)..n {
            let common_out = (0..n)
                .filter(|&k| a.get(i, k) != 0.0 && a.get(j, k) != 0.0)
                .count();
            let common_in = (0..n)
                .filter(|&k| a.get(k, i) != 0.0 && a.get(k, j) != 0.0)
                .count();
            assert_eq!(
                sym.adjacency().get(i, j),
                (common_out + common_in) as f64,
                "pair ({i},{j})"
            );
        }
    }
}

/// Eq. 6–8: the Degree-discounted weight computed by the factored SpGEMM
/// path matches the definition evaluated directly.
#[test]
fn degree_discounted_matches_definition() {
    let mut rng = StdRng::seed_from_u64(23);
    let n = 30;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(0.12) {
                edges.push((u, v));
            }
        }
    }
    let g = DiGraph::from_edges(n, &edges).expect("valid edges");
    let sym = DegreeDiscounted::default()
        .symmetrize(&g)
        .expect("symmetrize");
    let a = g.adjacency();
    let out_deg: Vec<f64> = g.weighted_out_degrees();
    let in_deg: Vec<f64> = g.weighted_in_degrees();
    let disc = |d: f64| if d > 0.0 { d.powf(-0.5) } else { 0.0 };
    for i in 0..n {
        for j in (i + 1)..n {
            let mut bd = 0.0;
            let mut cd = 0.0;
            for k in 0..n {
                bd += a.get(i, k) * a.get(j, k) * disc(in_deg[k]);
                cd += a.get(k, i) * a.get(k, j) * disc(out_deg[k]);
            }
            let expected =
                disc(out_deg[i]) * disc(out_deg[j]) * bd + disc(in_deg[i]) * disc(in_deg[j]) * cd;
            let got = sym.adjacency().get(i, j);
            assert!(
                (got - expected).abs() < 1e-9,
                "pair ({i},{j}): {got} vs {expected}"
            );
        }
    }
}

/// §3.2 also implies: the total edge weight of the random-walk
/// symmetrization equals the stationary probability mass on non-dangling
/// nodes (each walk step is counted once).
#[test]
fn random_walk_total_weight_is_walk_mass() {
    let g = circulant(15, &[1, 4]);
    let sym = RandomWalk::default().symmetrize(&g).expect("symmetrize");
    let total: f64 = sym.adjacency().values().iter().sum();
    assert!((total - 1.0).abs() < 1e-8, "total = {total}");
}

/// The directed normalized cut of the Figure-1 cluster {4,5} is high even
/// though the cluster is meaningful — the motivating observation of §2.1.1
/// — while its degree-discounted similarity is the strongest in the graph.
#[test]
fn figure1_high_ncut_but_high_similarity() {
    let g = symclust::graph::generators::figure1_graph();
    let mut assignment = vec![0u32; 9];
    assignment[4] = 1;
    assignment[5] = 1;
    let ncut_term = directed_normalized_cut(&g, &assignment, 0.05);
    assert!(ncut_term > 0.9);
    let dd = DegreeDiscounted::default()
        .symmetrize(&g)
        .expect("symmetrize");
    let w45 = dd.adjacency().get(4, 5);
    let max_w = dd
        .adjacency()
        .values()
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    assert!(
        (w45 - max_w).abs() < 1e-12,
        "w(4,5) = {w45} is not the maximum {max_w}"
    );
}

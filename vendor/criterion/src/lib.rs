//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Instead of
//! criterion's statistical analysis it reports the median and min of a
//! fixed number of timed samples — enough for the relative comparisons the
//! benches exist for (e.g. serial vs parallel SpGEMM).

use std::time::{Duration, Instant};

/// Opaque identifier for a parameterized benchmark, rendered as
/// `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (one call per
    /// sample; no per-sample batching).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.results.clone();
        sorted.sort();
        let median = sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let min = sorted.first().copied().unwrap_or(Duration::ZERO);
        println!(
            "{}/{id}: median {median:?}, min {min:?} ({} samples)",
            self.name,
            sorted.len()
        );
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Runs a benchmark identified by a [`BenchmarkId`], passing `input`
    /// through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.id.clone();
        self.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group (criterion's
    /// top-level `bench_function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn top_level_bench_function_runs() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        c.bench_function("standalone", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + default 10 timed samples.
        assert_eq!(calls, 11);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("serial", 1024);
        assert_eq!(id.id, "serial/1024");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.benchmark_group("noop")
            .sample_size(1)
            .bench_function("nothing", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_produces_runner() {
        demo_group();
    }
}

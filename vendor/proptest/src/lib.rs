//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! subset of the proptest 1.x API its property tests use: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`/`prop_filter`/`prop_filter_map`,
//! range and tuple strategies, [`collection::vec`], [`option::of`],
//! [`arbitrary`] (`any::<bool>()` and friends), and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline test harness:
//! inputs are generated from a fixed-seed SplitMix64 stream (fully
//! deterministic, no persistence files), and failing cases are reported
//! without shrinking. Value types therefore need no `Debug` bound.

/// Deterministic generator feeding all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A generator of test-case inputs. `generate` returns `None` when the
/// candidate is rejected (e.g. by [`Strategy::prop_filter_map`]); the
/// runner then retries with fresh randomness.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` to reject the candidate.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values for which the predicate is false.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Combined map + filter: `None` results are rejected.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// A strategy that always yields the same (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                Some(self.start + (rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64 + 1;
                Some(start + (rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uint_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                Some((self.start as i64 + (rng.next_u64() % span) as i64) as $t)
            }
        }
    )*};
}

impl_sint_range_strategy!(isize, i64, i32, i16, i8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + (rng.next_f64() as f32) * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the length argument of [`vec`]: a fixed size or
    /// a range of sizes.
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s (`None` with probability 1/4, as
    /// upstream's default weighting).
    pub struct OfStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.next_u64().is_multiple_of(4) {
                Some(None)
            } else {
                self.inner.generate(rng).map(Some)
            }
        }
    }

    /// Wraps a strategy to sometimes produce `None`.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy { inner }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;

        /// Builds that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy behind `any::<bool>()`.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty => $name:ident),*) => {$(
            /// Strategy behind `any` for the corresponding integer type.
            pub struct $name;

            impl Strategy for $name {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.next_u64() as $t)
                }
            }

            impl Arbitrary for $t {
                type Strategy = $name;

                fn arbitrary() -> $name {
                    $name
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize, i32 => AnyI32, i64 => AnyI64);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Test-case outcome and the case runner.
pub mod test_runner {
    use super::{Strategy, TestRng};

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert!` failed: the property is violated.
        Fail(String),
        /// A `prop_assume!` rejected the input: retry with fresh input.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
        /// Maximum rejected candidates before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Runs `test` against `config.cases` generated inputs, panicking on
    /// the first failing case. Deterministic: the input stream depends
    /// only on the strategy (fixed seed, no persistence).
    pub fn run<S, F>(config: &ProptestConfig, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(0x5EED_CAFE_F00D_D00D);
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < config.cases {
            let input = match strategy.generate(&mut rng) {
                Some(v) => v,
                None => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest gave up: {rejects} candidates rejected by \
                         filters with only {passed}/{} cases passed",
                        config.cases
                    );
                    continue;
                }
            };
            match test(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest gave up: {rejects} inputs rejected \
                         (last: {why}) with only {passed}/{} cases passed",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case {} of {} failed: {msg}",
                        passed + 1,
                        config.cases
                    )
                }
            }
        }
    }
}

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let strategy = ($($strat,)*);
                $crate::test_runner::run(&config, &strategy, |($($arg,)*)| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a property holds, failing the current case (not panicking
/// directly) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts two values differ, failing the current case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Rejects the current input (retried with a fresh one) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_compose() {
        let strat = (2usize..10).prop_flat_map(|n| {
            crate::collection::vec((0..n, 0.0f64..1.0), 1..20).prop_map(move |pairs| (n, pairs))
        });
        crate::test_runner::run(
            &ProptestConfig::with_cases(50),
            &(strat,),
            |((n, pairs),)| {
                prop_assert!((2..10).contains(&n));
                prop_assert!(!pairs.is_empty() && pairs.len() < 20);
                for (i, w) in pairs {
                    prop_assert!(i < n);
                    prop_assert!((0.0..1.0).contains(&w));
                }
                Ok(())
            },
        );
    }

    #[test]
    fn filter_map_rejections_are_retried() {
        let strat = (0u32..100).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x));
        crate::test_runner::run(&ProptestConfig::with_cases(64), &(strat,), |(x,)| {
            prop_assert_eq!(x % 2, 0);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_accepts_patterns((a, b) in (0usize..5, 0usize..5), flag in any::<bool>()) {
            prop_assume!(a + b > 0);
            prop_assert!(a < 5 && b < 5);
            let _ = flag;
        }

        #[test]
        fn option_of_produces_both_variants(xs in crate::collection::vec(crate::option::of(0u32..3), 64)) {
            prop_assert_eq!(xs.len(), 64);
            // With 64 draws at 3/4 Some-probability both variants show up
            // essentially always; just check values are in range.
            for x in xs.into_iter().flatten() {
                prop_assert!(x < 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::test_runner::run(&ProptestConfig::with_cases(16), &(0u32..10,), |(x,)| {
            prop_assert!(x < 5, "x = {x} escaped");
            Ok(())
        });
    }
}

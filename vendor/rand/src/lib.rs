//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! *subset* of the `rand` 0.8 API that symclust actually uses: the
//! [`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed, which is all the synthetic
//! dataset generators and sampling routines require. The streams differ from
//! upstream `rand`'s ChaCha-based `StdRng`, so absolute generated graphs
//! differ from a crates.io build, but every consumer in this workspace only
//! relies on determinism and statistical shape, not on exact streams.

/// The core random-number source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from a half-open range (integer or float).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32, i16, i8, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64 (Blackman & Vigna's recommended seeding).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0..2u32);
            assert!(u < 2);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}

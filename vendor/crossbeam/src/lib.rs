//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! This container has no access to crates.io, so the workspace vendors the
//! subset of the crossbeam 0.8 API that symclust uses:
//!
//! * [`thread::scope`] — scoped threads, implemented over
//!   `std::thread::scope` (stable since Rust 1.63), keeping crossbeam's
//!   closure shape `scope.spawn(|_| ...)` and `Result`-returning scope.
//! * [`channel`] — MPMC bounded/unbounded channels over `Mutex` +
//!   `Condvar`. Bounded senders block when the queue is full, which is the
//!   backpressure behaviour the pipeline engine relies on.

/// Scoped threads with the crossbeam 0.8 call shape.
pub mod thread {
    use std::any::Any;

    /// Error type of [`scope`]: the payload of a worker panic.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// A scope in which threads borrowing the environment can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself
        /// (crossbeam's signature), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&this)),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. All spawned threads
    /// are joined when the scope ends. Returns `Ok(result)` on normal
    /// completion (panics of explicitly-joined children surface through
    /// their `join()` results, as with crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

/// MPMC channels with blocking bounded sends (backpressure).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half. Clonable; the channel disconnects when every
    /// sender is dropped.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half. Clonable (MPMC); each message is delivered to
    /// exactly one receiver.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.chan.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available. Fails only
        /// when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).unwrap();
            }
        }

        /// Receives a message, blocking at most `timeout`. Used by pollers
        /// that must periodically check out-of-band state (e.g. a
        /// cancellation token) while waiting.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) =
                    self.chan.not_empty.wait_timeout(state, remaining).unwrap();
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Drains the channel into an iterator, ending on disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// A bounded channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    /// An unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = channel::bounded::<usize>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Queue full: a blocked send must complete once a slot frees up.
        let t = std::thread::spawn(move || tx.send(3).map(|_| ()).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(t.join().unwrap());
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_distributes_each_message_once() {
        let (tx, rx) = channel::bounded::<usize>(4);
        let rx2 = rx.clone();
        let consumer = |r: channel::Receiver<usize>| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = r.recv() {
                    got.push(v);
                }
                got
            })
        };
        let c1 = consumer(rx);
        let c2 = consumer(rx2);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = c1.join().unwrap();
        all.extend(c2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}

//! Clustering a citation network: the paper's Cora experiment in miniature.
//!
//! Generates the Cora stand-in (a citation-style directed graph with 70
//! planted research areas, 7.7% reciprocal links and 20% unlabeled papers),
//! runs all four symmetrizations through MLR-MCL and Metis, and reports the
//! micro-averaged best-match F-scores of §4.3 — reproducing the ordering of
//! the paper's Figure 5: Degree-discounted ≥ Bibliometric ≫ A+Aᵀ ≈ Random
//! walk.
//!
//! Run with: `cargo run --release --example citation_network`

use std::time::Instant;
use symclust::prelude::*;

fn main() {
    let dataset = cora_like();
    let truth = dataset.truth.as_ref().expect("cora_like has ground truth");
    println!(
        "cora_like: {} papers, {} citations, {} research areas ({}% unlabeled)",
        dataset.n_nodes(),
        dataset.n_edges(),
        truth.n_categories(),
        (100.0 * truth.unlabeled_fraction()).round()
    );

    let symmetrizers: Vec<(&str, Box<dyn Symmetrizer>)> = vec![
        ("Degree-discounted", Box::new(DegreeDiscounted::default())),
        ("Bibliometric", Box::new(Bibliometric::default())),
        ("A+A'", Box::new(PlusTranspose)),
        ("Random Walk", Box::new(RandomWalk::default())),
    ];

    println!(
        "\n{:<18} {:>10} | {:>9} {:>8} | {:>9} {:>8}",
        "symmetrization", "edges", "MCL F", "MCL k", "Metis F", "time(ms)"
    );
    for (name, sym_method) in symmetrizers {
        let sym = sym_method.symmetrize(&dataset.graph).expect("symmetrize");

        let mcl = MlrMcl::with_inflation(2.0).cluster(&sym).expect("mlr-mcl");
        let mcl_f = avg_f_score(mcl.assignments(), truth).avg_f;

        let start = Instant::now();
        let metis = MetisLike::with_k(truth.n_categories())
            .cluster(&sym)
            .expect("metis");
        let metis_ms = start.elapsed().as_millis();
        let metis_f = avg_f_score(metis.assignments(), truth).avg_f;

        println!(
            "{:<18} {:>10} | {:>9.2} {:>8} | {:>9.2} {:>8}",
            name,
            sym.n_edges(),
            mcl_f,
            mcl.n_clusters(),
            metis_f,
            metis_ms
        );
    }
    println!(
        "\nExpected shape (paper Figure 5): Degree-discounted best, Bibliometric\n\
         close behind, A+A' and Random Walk clearly worse — because citation\n\
         clusters are defined by shared references and shared citers, not by\n\
         papers citing each other."
    );
}

//! Quickstart: symmetrize and cluster the paper's Figure-1 graph.
//!
//! Demonstrates the two-stage framework on the idealized example from the
//! paper's introduction: nodes 4 and 5 never link to each other, yet they
//! form a natural cluster because they share all their in-links and
//! out-links. The `A + Aᵀ` symmetrization cannot see this; the
//! Degree-discounted similarity can.
//!
//! Run with: `cargo run --release --example quickstart`

use symclust::prelude::*;

fn main() {
    // The directed graph of Figure 1 (9 nodes, 16 edges).
    let g = figure1_graph();
    println!(
        "Figure-1 graph: {} nodes, {} directed edges",
        g.n_nodes(),
        g.n_edges()
    );
    println!("edge 4→5 exists: {}", g.has_edge(4, 5));
    println!("edge 5→4 exists: {}", g.has_edge(5, 4));

    // Stage 1: symmetrize. Compare the naive A+Aᵀ with the paper's
    // Degree-discounted similarity (Eq. 8, α = β = 0.5).
    let naive = PlusTranspose.symmetrize(&g).expect("symmetrize");
    let dd = DegreeDiscounted::default()
        .symmetrize(&g)
        .expect("symmetrize");
    println!("\nsimilarity weight between nodes 4 and 5:");
    println!("  A + A'            : {:.4}", naive.adjacency().get(4, 5));
    println!("  Degree-discounted : {:.4}", dd.adjacency().get(4, 5));

    // Stage 2: cluster the symmetrized graph with MLR-MCL.
    let clustering = MlrMcl::default().cluster(&dd).expect("cluster");
    println!(
        "\nMLR-MCL on the Degree-discounted graph found {} clusters:",
        clustering.n_clusters()
    );
    for (i, members) in clustering.clusters().iter().enumerate() {
        println!("  cluster {i}: {members:?}");
    }
    assert!(
        clustering.same_cluster(4, 5),
        "nodes 4 and 5 should share a cluster"
    );
    println!("\nnodes 4 and 5 share a cluster, as the paper argues they should.");
}

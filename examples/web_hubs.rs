//! Hub nodes and why Bibliometric symmetrization breaks on the web.
//!
//! Reproduces the paper's §3.4/§3.5 argument on a hub-heavy power-law graph
//! (the Wikipedia stand-in): the plain Bibliometric matrix `AAᵀ + AᵀA`
//! puts its largest weights on hub pairs and is nearly impossible to prune
//! well — a threshold high enough to keep it sparse strands half the graph
//! as singletons — while the Degree-discounted similarity demotes hubs and
//! prunes cleanly, keeping most nodes connected at a fraction of the edges.
//!
//! Run with: `cargo run --release --example web_hubs`

use symclust::core::{
    Bibliometric, BibliometricOptions, DegreeDiscounted, DegreeDiscountedOptions,
};
use symclust::prelude::*;
use symclust::sparse::ops::top_k_entries_upper;

fn main() {
    let dataset = symclust::datasets::wikipedia_like_scaled(4000);
    let g = &dataset.graph;
    println!(
        "wikipedia_like: {} pages, {} links",
        g.n_nodes(),
        g.n_edges()
    );
    let in_deg = g.in_degrees();
    let max_in = in_deg.iter().copied().max().unwrap_or(0);
    println!(
        "max in-degree {} vs mean {:.1} — hubs are present\n",
        max_in,
        in_deg.iter().sum::<usize>() as f64 / in_deg.len() as f64
    );

    // Select thresholds so both similarity graphs target the same average
    // degree (the paper's §5.3.1 recipe, aiming at typical cluster size).
    let target_degree = 60.0;
    let dd_sel = symclust::core::select_threshold(
        g,
        &DegreeDiscountedOptions::default(),
        target_degree,
        100,
        7,
    )
    .expect("threshold selection");
    let bib_opts = DegreeDiscountedOptions {
        alpha: symclust::core::DiscountExponent::Power(0.0),
        beta: symclust::core::DiscountExponent::Power(0.0),
        add_identity: true,
        ..Default::default()
    };
    let bib_sel =
        symclust::core::select_threshold(g, &bib_opts, target_degree, 100, 7).expect("selection");

    let bib = Bibliometric {
        options: BibliometricOptions {
            threshold: bib_sel.threshold,
            ..Default::default()
        },
    }
    .symmetrize(g)
    .expect("bibliometric");
    let dd = DegreeDiscounted {
        options: DegreeDiscountedOptions {
            threshold: dd_sel.threshold,
            ..Default::default()
        },
    }
    .symmetrize(g)
    .expect("degree-discounted");

    println!(
        "{:<18} {:>10} {:>12} {:>12}",
        "symmetrization", "edges", "singletons", "threshold"
    );
    for sym in [&bib, &dd] {
        println!(
            "{:<18} {:>10} {:>12} {:>12.4}",
            sym.method(),
            sym.n_edges(),
            sym.n_singletons(),
            sym.threshold()
        );
    }

    // Show whose edges carry the most weight (the paper's Table 5 point).
    let out_deg = g.out_degrees();
    for sym in [&bib, &dd] {
        let top = top_k_entries_upper(sym.adjacency(), 5);
        let mean_endpoint_degree: f64 = top
            .iter()
            .map(|&(u, v, _)| (in_deg[u] + out_deg[u] + in_deg[v] + out_deg[v]) as f64 / 2.0)
            .sum::<f64>()
            / top.len().max(1) as f64;
        println!(
            "\n{}: top-5 edges touch nodes of mean degree {:.0}",
            sym.method(),
            mean_endpoint_degree
        );
        for (u, v, w) in top {
            println!(
                "  {u:>5} -- {v:<5} weight {w:>10.3} (degrees {} and {})",
                in_deg[u] + out_deg[u],
                in_deg[v] + out_deg[v]
            );
        }
    }
    println!(
        "\nBibliometric's heaviest edges sit between hubs; Degree-discounted's\n\
         sit between specific, strongly-related low-degree pages."
    );
}

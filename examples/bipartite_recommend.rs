//! Bipartite co-clustering: the paper's future-work extension in action.
//!
//! A user × item purchase graph is bipartite; the degree-discounted
//! similarity projects it onto either side, discounting blockbuster items
//! (everyone buys them — they say little about taste) exactly the way hub
//! pages are discounted in the directed case. We synthesize taste
//! communities plus blockbusters, project, cluster with MLR-MCL, and
//! compare against the undiscounted co-occurrence projection.
//!
//! Run with: `cargo run --release --example bipartite_recommend`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symclust::core::bipartite::{
    bipartite_degree_discounted, BipartiteGraph, BipartiteOptions, BipartiteSide,
};
use symclust::core::DiscountExponent;
use symclust::prelude::*;

fn main() {
    // 6 taste communities of 50 users; each community has 30 niche items;
    // 10 blockbusters bought by everyone with probability 0.8.
    let (n_communities, users_per, items_per) = (6, 50, 30);
    let n_users = n_communities * users_per;
    let n_blockbusters = 10;
    let n_items = n_communities * items_per + n_blockbusters;
    let mut rng = StdRng::seed_from_u64(11);
    let mut edges = Vec::new();
    for c in 0..n_communities {
        for u in 0..users_per {
            let user = c * users_per + u;
            for i in 0..items_per {
                if rng.gen_bool(0.35) {
                    edges.push((user, c * items_per + i));
                }
            }
        }
    }
    for user in 0..n_users {
        for b in 0..n_blockbusters {
            if rng.gen_bool(0.8) {
                edges.push((user, n_communities * items_per + b));
            }
        }
    }
    let g = BipartiteGraph::from_edges(n_users, n_items, &edges).expect("valid edges");
    println!(
        "bipartite graph: {} users x {} items, {} purchases",
        g.n_left(),
        g.n_right(),
        g.n_edges()
    );

    for (name, own, shared) in [
        ("co-occurrence (no discount)", 0.0, 0.0),
        ("degree-discounted (α=β=0.5)", 0.5, 0.5),
    ] {
        let projection = bipartite_degree_discounted(
            &g,
            BipartiteSide::Left,
            &BipartiteOptions {
                own_discount: DiscountExponent::Power(own),
                shared_discount: DiscountExponent::Power(shared),
                threshold: 0.0,
            },
        )
        .expect("projection succeeds");
        let clustering = MlrMcl::with_inflation(2.0)
            .cluster(projection.graph())
            .expect("clustering succeeds");
        // Score: fraction of users whose cluster majority shares their
        // planted community.
        let clusters = clustering.clusters();
        let mut correct = 0usize;
        for members in &clusters {
            let mut counts = vec![0usize; n_communities];
            for &m in members {
                counts[m as usize / users_per] += 1;
            }
            correct += counts.iter().max().copied().unwrap_or(0);
        }
        println!(
            "{name:32} -> {} clusters, majority-purity {:.2}",
            clustering.n_clusters(),
            correct as f64 / n_users as f64
        );
    }
    println!(
        "\nBlockbusters connect everyone in the raw co-occurrence graph;\n\
         discounting them recovers the planted taste communities."
    );
}

//! Stage-2 freedom: any clusterer plugs into the framework (Figure 2).
//!
//! Fixes the symmetrization to Degree-discounted and compares every
//! clustering algorithm in the workspace — MLR-MCL, Metis-like,
//! Graclus-like, plain spectral — plus the directed BestWCut baseline of
//! Meila & Pentney, which skips symmetrization entirely. Reproduces the
//! paper's Figure 6 finding: symmetrize-then-cluster beats the specialized
//! directed spectral method on both quality and wall-clock.
//!
//! Run with: `cargo run --release --example compare_clusterers`

use std::time::Instant;
use symclust::cluster::{BestWCut, BestWCutOptions, SpectralClustering};
use symclust::prelude::*;

/// A labeled pipeline to time: (display name, deferred clustering run).
type Run<'a> = (&'a str, Box<dyn Fn() -> Clustering + 'a>);

fn main() {
    let dataset = symclust::datasets::cora_like_scaled(1500);
    let truth = dataset.truth.as_ref().expect("ground truth");
    let k = truth.n_categories();
    println!(
        "cora_like: {} nodes, {} edges, {} categories\n",
        dataset.n_nodes(),
        dataset.n_edges(),
        k
    );

    let sym = DegreeDiscounted::default()
        .symmetrize(&dataset.graph)
        .expect("symmetrize");

    println!(
        "{:<28} {:>6} {:>9} {:>10}",
        "algorithm", "k", "F", "time(ms)"
    );
    let runs: Vec<Run> = vec![
        (
            "DD + MLR-MCL",
            Box::new(|| MlrMcl::with_inflation(2.0).cluster(&sym).expect("mcl")),
        ),
        (
            "DD + Metis",
            Box::new(|| MetisLike::with_k(k).cluster(&sym).expect("metis")),
        ),
        (
            "DD + Graclus",
            Box::new(|| GraclusLike::with_k(k).cluster(&sym).expect("graclus")),
        ),
        (
            "DD + Spectral",
            Box::new(|| {
                SpectralClustering::with_k(k)
                    .cluster(&sym)
                    .expect("spectral")
            }),
        ),
        (
            "BestWCut (directed)",
            Box::new(|| {
                let mut opts = BestWCutOptions {
                    k,
                    ..Default::default()
                };
                opts.lanczos.max_subspace = k + 40;
                BestWCut { options: opts }
                    .cluster_digraph(&dataset.graph)
                    .expect("bestwcut")
            }),
        ),
    ];
    for (name, run) in runs {
        let start = Instant::now();
        let clustering = run();
        let elapsed = start.elapsed().as_millis();
        let f = avg_f_score(clustering.assignments(), truth).avg_f;
        println!(
            "{:<28} {:>6} {:>9.2} {:>10}",
            name,
            clustering.n_clusters(),
            f,
            elapsed
        );
    }
    println!(
        "\nAll symmetrization-based pipelines beat the directed spectral\n\
         baseline, and the combinatorial clusterers do it orders of\n\
         magnitude faster — the paper's Figure 6."
    );
}

//! Local community detection: extract one cluster without clustering the
//! whole graph.
//!
//! The paper's §2.1.1 credits Andersen, Chung & Lang with the one scalable
//! algorithm in the directed-cut line of work — local partitioning with
//! personalized PageRank. This example runs our PageRank-Nibble on the
//! Wikipedia stand-in: pick a seed page, pull out its community, and check
//! it against the planted ground truth — touching only the neighborhood of
//! the seed rather than all nodes.
//!
//! Run with: `cargo run --release --example local_communities`

use symclust::cluster::{pagerank_nibble, pagerank_nibble_directed, NibbleOptions};
use symclust::prelude::*;

fn main() {
    let dataset = symclust::datasets::wikipedia_like_scaled(4000);
    let truth = dataset.truth.as_ref().expect("ground truth");
    println!(
        "wikipedia_like: {} pages, {} links, {} categories\n",
        dataset.n_nodes(),
        dataset.n_edges(),
        truth.n_categories()
    );

    let node_cats = truth.node_categories();
    // Planted communities hold ~60 pages; match ε to the target volume
    // (ACL picks ε ≈ 1/vol(target)) and cap the sweep accordingly.
    let opts = NibbleOptions {
        epsilon: 3e-4,
        max_cluster_size: 200,
        ..Default::default()
    };
    // The paper's thesis holds locally too: PageRank-Nibble through the
    // Random-walk symmetrization optimizes the *directed cut*, which cannot
    // see shared-link communities; nibbling the Degree-discounted
    // similarity graph instead finds them.
    let dd = DegreeDiscounted::default()
        .symmetrize(&dataset.graph)
        .expect("symmetrize");
    // Seed from the middle of five different planted categories (seeds
    // must be labeled nodes for the precision metric to mean anything).
    let seeds: Vec<usize> = (0..5).map(|i| truth.members(i * 10)[5] as usize).collect();
    for (name, run) in [
        (
            "random-walk (directed-cut) nibble",
            Box::new(|seed: usize| {
                pagerank_nibble_directed(&dataset.graph, seed, &opts).expect("nibble")
            }) as Box<dyn Fn(usize) -> symclust::cluster::LocalCluster>,
        ),
        (
            "degree-discounted nibble",
            Box::new(|seed: usize| pagerank_nibble(dd.graph(), seed, &opts).expect("nibble")),
        ),
    ] {
        println!("--- {name} ---");
        let mut total_precision = 0.0;
        let mut runs = 0;
        for &seed in seeds.iter() {
            let cluster = run(seed);
            let seed_cats = &node_cats[seed];
            let hits = cluster
                .members
                .iter()
                .filter(|&&m| node_cats[m as usize].iter().any(|c| seed_cats.contains(c)))
                .count();
            let precision = if cluster.members.is_empty() {
                0.0
            } else {
                hits as f64 / cluster.members.len() as f64
            };
            println!(
                "  seed {seed:>5}: {:>4} members, conductance {:.3}, precision {:.2} ({} pushes)",
                cluster.members.len(),
                cluster.conductance,
                precision,
                cluster.pushes
            );
            if !seed_cats.is_empty() {
                total_precision += precision;
                runs += 1;
            }
        }
        if runs > 0 {
            println!(
                "  mean local precision: {:.2}",
                total_precision / runs as f64
            );
        }
    }
}

#![warn(missing_docs)]

//! # symclust
//!
//! A production-quality Rust reproduction of *"Symmetrizations for
//! Clustering Directed Graphs"* (Satuluri & Parthasarathy, EDBT 2011).
//!
//! The paper's two-stage framework: (1) **symmetrize** a directed graph into
//! a weighted undirected graph whose edge weights capture in-link and
//! out-link similarity, then (2) **cluster** the undirected graph with any
//! off-the-shelf algorithm.
//!
//! ```
//! use symclust::prelude::*;
//!
//! // The idealized graph of Figure 1: nodes 4 and 5 share all their
//! // in-links and out-links but never link to each other.
//! let g = figure1_graph();
//!
//! // Degree-discounted symmetrization (the paper's contribution, Eq. 8).
//! let sym = DegreeDiscounted::default().symmetrize(&g).unwrap();
//!
//! // Nodes 4 and 5 are now strongly connected in the undirected graph.
//! assert!(sym.adjacency().get(4, 5) > 0.0);
//!
//! // Cluster the symmetrized graph with MLR-MCL.
//! let clustering = MlrMcl::default().cluster(&sym).unwrap();
//! assert_eq!(clustering.cluster_of(4), clustering.cluster_of(5));
//! ```
//!
//! The workspace is organized as one crate per subsystem:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sparse`] | CSR matrices, SpGEMM, PageRank, Lanczos |
//! | [`graph`]  | directed/undirected graph types, statistics, generators, I/O |
//! | [`core`]   | the four symmetrizations + pruning (the paper's contribution) |
//! | [`cluster`]| MLR-MCL, Metis-like, Graclus-like, BestWCut |
//! | [`eval`]   | F-measure, normalized cuts, paired sign test |
//! | [`datasets`]| synthetic stand-ins for the paper's datasets |

pub mod pipeline;

pub use symclust_cluster as cluster;
pub use symclust_core as core;
pub use symclust_datasets as datasets;
pub use symclust_eval as eval;
pub use symclust_graph as graph;
pub use symclust_sparse as sparse;

/// Convenient glob import surface for applications.
pub mod prelude {
    pub use symclust_cluster::{
        BestWCut, ClusterAlgorithm, Clustering, GraclusLike, KMeansOptions, MetisLike, MlrMcl,
    };
    pub use symclust_core::{
        Bibliometric, DegreeDiscounted, PlusTranspose, RandomWalk, SymmetrizedGraph, Symmetrizer,
    };
    pub use symclust_datasets::{cora_like, flickr_like, livejournal_like, wikipedia_like};
    pub use symclust_eval::{avg_f_score, normalized_cut, sign_test};
    pub use symclust_graph::generators::figure1_graph;
    pub use symclust_graph::{DiGraph, GraphStats, UnGraph};
    pub use symclust_sparse::{CooMatrix, CsrMatrix};

    pub use crate::pipeline::{Pipeline, PipelineReport};
}

//! One-call pipeline: symmetrize → cluster → evaluate.
//!
//! The two-stage framework of the paper's Figure 2, packaged for
//! applications that want a single entry point with measurements included.

use std::time::Instant;
use symclust_cluster::{ClusterAlgorithm, Clustering};
use symclust_core::Symmetrizer;
use symclust_eval::{avg_f_score, modularity, normalized_cut};
use symclust_graph::{DiGraph, GroundTruth};

/// A configured symmetrize-then-cluster pipeline.
///
/// ```
/// use symclust::pipeline::Pipeline;
/// use symclust::prelude::*;
///
/// let g = figure1_graph();
/// let report = Pipeline::new(DegreeDiscounted::default(), MlrMcl::default())
///     .run(&g)
///     .unwrap();
/// assert!(report.clustering.same_cluster(4, 5));
/// assert!(report.modularity > 0.0);
/// ```
pub struct Pipeline<S, C> {
    symmetrizer: S,
    clusterer: C,
}

/// Everything a pipeline run produced and measured.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The clustering of the input graph's nodes.
    pub clustering: Clustering,
    /// Name of the symmetrization used.
    pub symmetrization: String,
    /// Name of the clustering algorithm used.
    pub algorithm: String,
    /// Undirected edges in the symmetrized graph.
    pub sym_edges: usize,
    /// Symmetrization wall time (seconds).
    pub symmetrize_secs: f64,
    /// Clustering wall time (seconds).
    pub cluster_secs: f64,
    /// Undirected normalized cut of the clustering on the symmetrized graph.
    pub normalized_cut: f64,
    /// Newman–Girvan modularity on the symmetrized graph.
    pub modularity: f64,
    /// Micro-averaged best-match F (percent), when ground truth was given.
    pub f_score: Option<f64>,
}

impl<S: Symmetrizer, C: ClusterAlgorithm> Pipeline<S, C> {
    /// Builds a pipeline from a symmetrizer and a clusterer.
    pub fn new(symmetrizer: S, clusterer: C) -> Self {
        Pipeline {
            symmetrizer,
            clusterer,
        }
    }

    /// Runs the pipeline without ground truth.
    pub fn run(&self, g: &DiGraph) -> Result<PipelineReport, Box<dyn std::error::Error>> {
        self.run_inner(g, None)
    }

    /// Runs the pipeline and scores the clustering against ground truth.
    pub fn run_with_truth(
        &self,
        g: &DiGraph,
        truth: &GroundTruth,
    ) -> Result<PipelineReport, Box<dyn std::error::Error>> {
        self.run_inner(g, Some(truth))
    }

    fn run_inner(
        &self,
        g: &DiGraph,
        truth: Option<&GroundTruth>,
    ) -> Result<PipelineReport, Box<dyn std::error::Error>> {
        let sym = self.symmetrizer.symmetrize(g)?;
        let start = Instant::now();
        let clustering = self.clusterer.cluster_ungraph(sym.graph())?;
        let cluster_secs = start.elapsed().as_secs_f64();
        let f_score = truth.map(|t| avg_f_score(clustering.assignments(), t).avg_f);
        Ok(PipelineReport {
            symmetrization: sym.method().to_string(),
            algorithm: self.clusterer.name(),
            sym_edges: sym.n_edges(),
            symmetrize_secs: sym.elapsed().as_secs_f64(),
            cluster_secs,
            normalized_cut: normalized_cut(sym.graph(), clustering.assignments()),
            modularity: modularity(sym.graph(), clustering.assignments()),
            f_score,
            clustering,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_cluster::{MetisLike, MlrMcl};
    use symclust_core::{DegreeDiscounted, PlusTranspose};
    use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};

    fn planted() -> symclust_graph::generators::GeneratedGraph {
        shared_link_dsbm(&SharedLinkDsbmConfig {
            n_nodes: 400,
            n_clusters: 8,
            seed: 31,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn pipeline_produces_full_report() {
        let g = planted();
        let report = Pipeline::new(DegreeDiscounted::default(), MetisLike::with_k(8))
            .run_with_truth(&g.graph, &g.truth)
            .unwrap();
        assert_eq!(report.symmetrization, "Degree-discounted");
        assert_eq!(report.algorithm, "Metis");
        assert_eq!(report.clustering.n_clusters(), 8);
        assert!(report.f_score.unwrap() > 40.0);
        assert!(report.sym_edges > 0);
        assert!(report.normalized_cut >= 0.0);
        assert!(report.modularity > 0.0);
        assert!(report.symmetrize_secs >= 0.0 && report.cluster_secs >= 0.0);
    }

    #[test]
    fn pipeline_without_truth_skips_f() {
        let g = planted();
        let report = Pipeline::new(PlusTranspose, MlrMcl::default())
            .run(&g.graph)
            .unwrap();
        assert!(report.f_score.is_none());
        assert_eq!(report.clustering.n_nodes(), 400);
    }

    #[test]
    fn better_symmetrization_gives_better_internal_quality() {
        let g = planted();
        let dd = Pipeline::new(DegreeDiscounted::default(), MetisLike::with_k(8))
            .run_with_truth(&g.graph, &g.truth)
            .unwrap();
        let pt = Pipeline::new(PlusTranspose, MetisLike::with_k(8))
            .run_with_truth(&g.graph, &g.truth)
            .unwrap();
        assert!(dd.f_score.unwrap() > pt.f_score.unwrap());
    }
}

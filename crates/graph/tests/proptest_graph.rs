//! Property-based tests for the graph substrate and generators.

use proptest::prelude::*;
use symclust_graph::generators::{
    kronecker_graph, shared_link_dsbm, KroneckerConfig, SharedLinkDsbmConfig,
};
use symclust_graph::stats::{
    connected_components, percent_symmetric_links, weakly_connected_components, DegreeHistogram,
};
use symclust_graph::{io, DiGraph, GroundTruth, UnGraph};

fn digraph(max_n: usize, max_edges: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_edges)
            .prop_map(move |edges| DiGraph::from_edges(n, &edges).expect("in-bounds edges"))
    })
}

proptest! {
    #[test]
    fn reverse_is_involution(g in digraph(30, 150)) {
        let rr = g.reverse().reverse();
        prop_assert_eq!(rr.adjacency(), g.adjacency());
    }

    #[test]
    fn reverse_swaps_degrees(g in digraph(30, 150)) {
        let r = g.reverse();
        prop_assert_eq!(g.in_degrees(), r.out_degrees());
        prop_assert_eq!(g.out_degrees(), r.in_degrees());
    }

    #[test]
    fn percent_symmetric_is_bounded_and_reverse_invariant(g in digraph(30, 150)) {
        let p = percent_symmetric_links(&g);
        prop_assert!((0.0..=100.0 + 1e-9).contains(&p));
        let pr = percent_symmetric_links(&g.reverse());
        prop_assert!((p - pr).abs() < 1e-9);
    }

    #[test]
    fn edge_list_roundtrip(g in digraph(25, 100)) {
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        // The strategy can emit self-loops, which the strict default
        // loader rejects; roundtrip under the permissive policy.
        let g2 = io::read_edge_list_with(buf.as_slice(), &io::EdgeListOptions::permissive()).unwrap();
        // Node count may shrink if trailing nodes are isolated; compare
        // edge sets instead.
        let edges_a: Vec<_> = g.edges().collect();
        let edges_b: Vec<_> = g2.edges().collect();
        prop_assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn degree_histogram_counts_everything(degrees in proptest::collection::vec(0usize..5000, 0..200)) {
        let h = DegreeHistogram::from_degrees(&degrees);
        let total: usize = h.n_zero + h.bins.iter().sum::<usize>();
        prop_assert_eq!(total, degrees.len());
    }

    #[test]
    fn components_partition_the_graph(g in digraph(40, 100)) {
        let (labels, count) = weakly_connected_components(&g);
        prop_assert_eq!(labels.len(), g.n_nodes());
        let max = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        prop_assert_eq!(max, count);
        // Every edge joins nodes in the same component.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(labels[u], labels[v as usize]);
        }
    }

    #[test]
    fn induced_subgraph_edges_subset(edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80)) {
        let g = UnGraph::from_edges(20, &edges).unwrap();
        let nodes: Vec<u32> = (0..20).filter(|i| i % 2 == 0).map(|i| i as u32).collect();
        let sub = g.induced_subgraph(&nodes);
        prop_assert_eq!(sub.n_nodes(), nodes.len());
        for (u, v, w) in sub.adjacency().iter() {
            let (gu, gv) = (nodes[u] as usize, nodes[v as usize] as usize);
            prop_assert_eq!(g.weight(gu, gv), w);
        }
        let (_, sub_comp) = connected_components(&sub);
        prop_assert!(sub_comp >= 1 || nodes.is_empty());
    }

    #[test]
    fn ground_truth_node_categories_consistent(
        labels in proptest::collection::vec(proptest::option::of(0u32..6), 2..50),
    ) {
        prop_assume!(labels.iter().any(Option::is_some));
        let gt = GroundTruth::from_labels(&labels).unwrap();
        let idx = gt.node_categories();
        // Each labeled node appears in exactly the categories that list it.
        for (c, members) in gt.categories().iter().enumerate() {
            for &m in members {
                prop_assert!(idx[m as usize].contains(&(c as u32)));
            }
        }
        let listed: usize = gt.categories().iter().map(Vec::len).sum();
        let from_index: usize = idx.iter().map(Vec::len).sum();
        prop_assert_eq!(listed, from_index);
    }

    #[test]
    fn dsbm_respects_node_budget(seed in 0u64..50) {
        let cfg = SharedLinkDsbmConfig {
            n_nodes: 200,
            n_clusters: 8,
            seed,
            ..Default::default()
        };
        let g = shared_link_dsbm(&cfg).unwrap();
        prop_assert_eq!(g.graph.n_nodes(), 200);
        prop_assert_eq!(g.planted.len(), 200);
        // No self-loops.
        for (u, v, _) in g.graph.edges() {
            prop_assert!(u != v as usize);
        }
        prop_assert!(g.truth.n_categories() <= 8);
    }

    #[test]
    fn kronecker_within_budget(seed in 0u64..30) {
        let cfg = KroneckerConfig {
            levels: 7,
            n_edges: 400,
            seed,
            ..Default::default()
        };
        let g = kronecker_graph(&cfg).unwrap();
        prop_assert_eq!(g.n_nodes(), 128);
        prop_assert!(g.n_edges() <= 400);
    }
}

//! Ground-truth category assignments for external cluster evaluation.
//!
//! Mirrors the paper's setup (§4.1): categories may overlap (a Wikipedia
//! page belongs to multiple categories), and a substantial fraction of nodes
//! may carry no label at all (35% in Wikipedia, 20% in Cora).

use crate::{GraphError, Result};

/// Possibly-overlapping ground-truth categories over `n` nodes.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    n_nodes: usize,
    /// Member node ids per category, each list sorted ascending.
    categories: Vec<Vec<u32>>,
    /// Optional category names (parallel to `categories`).
    names: Option<Vec<String>>,
}

impl GroundTruth {
    /// Builds from category membership lists. Lists are sorted and
    /// deduplicated; empty categories are rejected.
    pub fn new(n_nodes: usize, mut categories: Vec<Vec<u32>>) -> Result<Self> {
        for (i, cat) in categories.iter_mut().enumerate() {
            cat.sort_unstable();
            cat.dedup();
            let Some(&last) = cat.last() else {
                return Err(GraphError::Invalid(format!("category {i} is empty")));
            };
            if last as usize >= n_nodes {
                return Err(GraphError::Invalid(format!(
                    "category {i} references node {last} >= n_nodes {n_nodes}"
                )));
            }
        }
        Ok(GroundTruth {
            n_nodes,
            categories,
            names: None,
        })
    }

    /// Builds from a per-node label vector (`None` = unlabeled). Produces
    /// one category per distinct label value.
    pub fn from_labels(labels: &[Option<u32>]) -> Result<Self> {
        let max_label = labels.iter().flatten().copied().max();
        let n_cats = max_label.map_or(0, |m| m as usize + 1);
        let mut categories = vec![Vec::new(); n_cats];
        for (node, l) in labels.iter().enumerate() {
            if let Some(l) = l {
                categories[*l as usize].push(node as u32);
            }
        }
        categories.retain(|c| !c.is_empty());
        GroundTruth::new(labels.len(), categories)
    }

    /// Attaches category names.
    pub fn with_names(mut self, names: Vec<String>) -> Result<Self> {
        if names.len() != self.categories.len() {
            return Err(GraphError::Invalid(format!(
                "{} names for {} categories",
                names.len(),
                self.categories.len()
            )));
        }
        self.names = Some(names);
        Ok(self)
    }

    /// Number of nodes the assignment covers.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.categories.len()
    }

    /// Member nodes of category `c`, sorted ascending.
    pub fn members(&self, c: usize) -> &[u32] {
        &self.categories[c]
    }

    /// All categories.
    pub fn categories(&self) -> &[Vec<u32>] {
        &self.categories
    }

    /// Name of category `c` (or its index as a string).
    pub fn name(&self, c: usize) -> String {
        match &self.names {
            Some(n) => n[c].clone(),
            None => c.to_string(),
        }
    }

    /// Inverted index: for each node, the categories containing it.
    pub fn node_categories(&self) -> Vec<Vec<u32>> {
        let mut idx = vec![Vec::new(); self.n_nodes];
        for (c, members) in self.categories.iter().enumerate() {
            for &m in members {
                idx[m as usize].push(c as u32);
            }
        }
        idx
    }

    /// Number of nodes with at least one category.
    pub fn n_labeled(&self) -> usize {
        let mut seen = vec![false; self.n_nodes];
        for members in &self.categories {
            for &m in members {
                seen[m as usize] = true;
            }
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Fraction of nodes with no category, as in Table 1's footnotes.
    pub fn unlabeled_fraction(&self) -> f64 {
        if self.n_nodes == 0 {
            return 0.0;
        }
        1.0 - self.n_labeled() as f64 / self.n_nodes as f64
    }

    /// Drops categories with fewer than `min_size` members (the paper
    /// removes Wikipedia categories with ≤ 20 pages).
    pub fn filter_min_size(&self, min_size: usize) -> GroundTruth {
        let mut categories = Vec::new();
        let mut names = self.names.as_ref().map(|_| Vec::new());
        for (i, cat) in self.categories.iter().enumerate() {
            if cat.len() >= min_size {
                categories.push(cat.clone());
                if let (Some(ns), Some(orig)) = (&mut names, &self.names) {
                    ns.push(orig[i].clone());
                }
            }
        }
        GroundTruth {
            n_nodes: self.n_nodes,
            categories,
            names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let gt = GroundTruth::new(5, vec![vec![3, 1, 3], vec![4]]).unwrap();
        assert_eq!(gt.members(0), &[1, 3]);
        assert_eq!(gt.n_categories(), 2);
    }

    #[test]
    fn rejects_empty_or_out_of_bounds() {
        assert!(GroundTruth::new(5, vec![vec![]]).is_err());
        assert!(GroundTruth::new(3, vec![vec![5]]).is_err());
    }

    #[test]
    fn from_labels_groups_by_value() {
        let labels = vec![Some(0), Some(1), None, Some(0)];
        let gt = GroundTruth::from_labels(&labels).unwrap();
        assert_eq!(gt.n_categories(), 2);
        assert_eq!(gt.members(0), &[0, 3]);
        assert_eq!(gt.members(1), &[1]);
        assert_eq!(gt.n_labeled(), 3);
        assert!((gt.unlabeled_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overlapping_membership_allowed() {
        let gt = GroundTruth::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let idx = gt.node_categories();
        assert_eq!(idx[1], vec![0, 1]);
        assert_eq!(gt.n_labeled(), 3);
    }

    #[test]
    fn filter_min_size_drops_small_categories() {
        let gt = GroundTruth::new(6, vec![vec![0], vec![1, 2, 3], vec![4, 5]])
            .unwrap()
            .with_names(vec!["tiny".into(), "big".into(), "mid".into()])
            .unwrap();
        let f = gt.filter_min_size(2);
        assert_eq!(f.n_categories(), 2);
        assert_eq!(f.name(0), "big");
        assert_eq!(f.name(1), "mid");
    }

    #[test]
    fn names_validation() {
        let gt = GroundTruth::new(2, vec![vec![0], vec![1]]).unwrap();
        assert!(gt.clone().with_names(vec!["a".into()]).is_err());
        assert_eq!(gt.name(1), "1");
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::new(0, vec![]).unwrap();
        assert_eq!(gt.n_labeled(), 0);
        assert_eq!(gt.unlabeled_fraction(), 0.0);
    }
}

#![warn(missing_docs)]

//! Graph substrate for the `symclust` workspace.
//!
//! Provides the directed and undirected graph types consumed by the
//! symmetrization framework, along with:
//!
//! * [`DiGraph`] / [`UnGraph`] — CSR-backed graph types with optional node
//!   labels,
//! * [`GroundTruth`] — possibly-overlapping category assignments used for
//!   F-score evaluation (§4.3 of the paper),
//! * [`stats`] — degree statistics, reciprocity (percentage of symmetric
//!   links, Table 1), log-binned degree histograms (Figure 4), connected
//!   components,
//! * [`generators`] — synthetic directed graphs with planted ground truth:
//!   the shared-link DSBM used as stand-in for the paper's datasets, a
//!   stochastic Kronecker generator (paper ref \[14\]), power-law samplers,
//!   and the idealized Figure-1 graph,
//! * [`io`] — plain-text edge-list reading and writing.

pub mod digraph;
pub mod generators;
pub mod ground_truth;
pub mod io;
pub mod stats;
pub mod ungraph;

pub use digraph::DiGraph;
pub use ground_truth::GroundTruth;
pub use stats::{percent_symmetric_links, DegreeHistogram, GraphStats};
pub use ungraph::UnGraph;

/// Error type for graph construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// Underlying sparse-matrix error.
    Sparse(symclust_sparse::SparseError),
    /// Malformed input (parse errors, inconsistent sizes, ...).
    Invalid(String),
    /// An edge-list line carried an edge the loader rejects (non-finite or
    /// negative weight, self-loop, duplicate). `line` is 1-based.
    BadEdge {
        /// 1-based line number of the offending edge.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// I/O failure while reading or writing graph files.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Sparse(e) => write!(f, "sparse error: {e}"),
            GraphError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
            GraphError::BadEdge { line, reason } => {
                write!(f, "bad edge at line {line}: {reason}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<symclust_sparse::SparseError> for GraphError {
    fn from(e: symclust_sparse::SparseError) -> Self {
        GraphError::Sparse(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

//! Directed graph backed by a CSR out-adjacency matrix.

use crate::{GraphError, Result};
use symclust_sparse::{ops, CooMatrix, CsrMatrix};

/// A weighted directed graph.
///
/// Nodes are `0..n`. The adjacency matrix `A` stores `A[i][j] = w` for each
/// directed edge `i → j` of weight `w` (row = source). Optional string
/// labels support the qualitative experiments (Table 5, case studies).
///
/// ```
/// use symclust_graph::DiGraph;
/// let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// assert!(g.has_edge(0, 1) && !g.has_edge(1, 0));
/// assert_eq!(g.out_degrees(), vec![1, 1, 0]);
/// assert_eq!(g.in_degrees(), vec![0, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct DiGraph {
    adj: CsrMatrix,
    labels: Option<Vec<String>>,
}

impl DiGraph {
    /// Wraps a square adjacency matrix as a directed graph.
    pub fn from_adjacency(adj: CsrMatrix) -> Result<Self> {
        if adj.n_rows() != adj.n_cols() {
            return Err(GraphError::Invalid(format!(
                "adjacency matrix must be square, got {}x{}",
                adj.n_rows(),
                adj.n_cols()
            )));
        }
        Ok(DiGraph { adj, labels: None })
    }

    /// Builds a graph with `n` nodes from unweighted edges (weight 1.0 each;
    /// duplicate edges accumulate weight).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len());
        for &(u, v) in edges {
            coo.push(u, v, 1.0)?;
        }
        DiGraph::from_adjacency(coo.to_csr())
    }

    /// Builds a graph with `n` nodes from weighted edges.
    pub fn from_weighted_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len());
        for &(u, v, w) in edges {
            coo.push(u, v, w)?;
        }
        DiGraph::from_adjacency(coo.to_csr())
    }

    /// Attaches human-readable node labels (length must equal node count).
    pub fn with_labels(mut self, labels: Vec<String>) -> Result<Self> {
        if labels.len() != self.n_nodes() {
            return Err(GraphError::Invalid(format!(
                "{} labels for {} nodes",
                labels.len(),
                self.n_nodes()
            )));
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.adj.n_rows()
    }

    /// Number of stored directed edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// The out-adjacency matrix (row = source node).
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Consumes the graph, returning its adjacency matrix.
    pub fn into_adjacency(self) -> CsrMatrix {
        self.adj
    }

    /// Node labels, if attached.
    pub fn labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    /// Label of a node, or its index rendered as a string.
    pub fn label(&self, node: usize) -> String {
        match &self.labels {
            Some(l) => l[node].clone(),
            None => node.to_string(),
        }
    }

    /// Out-degree (number of out-edges) per node.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.adj.row_counts()
    }

    /// In-degree (number of in-edges) per node.
    pub fn in_degrees(&self) -> Vec<usize> {
        self.adj.col_counts()
    }

    /// Weighted out-degree (sum of out-edge weights) per node.
    pub fn weighted_out_degrees(&self) -> Vec<f64> {
        self.adj.row_sums()
    }

    /// Weighted in-degree (sum of in-edge weights) per node.
    pub fn weighted_in_degrees(&self) -> Vec<f64> {
        self.adj.col_sums()
    }

    /// Out-neighbors of `node` with edge weights.
    pub fn out_neighbors(&self, node: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.adj.row_iter(node)
    }

    /// True if the directed edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u, v) != 0.0
    }

    /// The transpose graph (all edges reversed). Labels are preserved.
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            adj: ops::transpose(&self.adj),
            labels: self.labels.clone(),
        }
    }

    /// Iterates over all edges as `(source, target, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, u32, f64)> + '_ {
        self.adj.iter()
    }

    /// Cost predictor for similarity-based symmetrizations: Σᵢ dᵢ², where
    /// dᵢ is the total (in + out) degree of node i (paper §3.6).
    pub fn similarity_flops(&self) -> u128 {
        let out = self.out_degrees();
        let inn = self.in_degrees();
        out.iter()
            .zip(&inn)
            .map(|(&o, &i)| {
                let d = (o + i) as u128;
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_basic() {
        let g = triangle();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn duplicate_edges_accumulate_weight() {
        let g = DiGraph::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.adjacency().get(0, 1), 2.0);
    }

    #[test]
    fn weighted_edges() {
        let g = DiGraph::from_weighted_edges(2, &[(0, 1, 2.5), (1, 0, 0.5)]).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 2.5);
        assert_eq!(g.weighted_out_degrees(), vec![2.5, 0.5]);
        assert_eq!(g.weighted_in_degrees(), vec![0.5, 2.5]);
    }

    #[test]
    fn degrees() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (3, 2)]).unwrap();
        assert_eq!(g.out_degrees(), vec![2, 1, 0, 1]);
        assert_eq!(g.in_degrees(), vec![0, 1, 3, 0]);
    }

    #[test]
    fn reverse_flips_edges_and_keeps_labels() {
        let g = triangle()
            .with_labels(vec!["a".into(), "b".into(), "c".into()])
            .unwrap();
        let r = g.reverse();
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(0, 1));
        assert_eq!(r.label(0), "a");
    }

    #[test]
    fn labels_validation() {
        assert!(triangle().with_labels(vec!["a".into()]).is_err());
        let g = triangle();
        assert_eq!(g.label(2), "2");
    }

    #[test]
    fn rejects_non_square_adjacency() {
        let rect = CsrMatrix::zeros(2, 3);
        assert!(DiGraph::from_adjacency(rect).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_edges() {
        assert!(DiGraph::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn similarity_flops_counts_squared_degrees() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        // degrees (in+out): node0: 1, node1: 2, node2: 1 -> 1 + 4 + 1 = 6
        assert_eq!(g.similarity_flops(), 6);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(0, 1, 1.0)));
    }

    #[test]
    fn out_neighbors_iteration() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let nbrs: Vec<u32> = g.out_neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![1, 2]);
    }
}

//! Power-law samplers used to make the synthetic graphs "modern large-scale
//! power-law networks" in the paper's sense: a heavy-tailed degree
//! distribution in which hub nodes co-exist with low-degree nodes.

use rand::Rng;

/// Continuous Pareto (power-law) distribution with density
/// `f(x) ∝ x^{-alpha}` for `x >= x_min`.
#[derive(Debug, Clone, Copy)]
pub struct PowerLaw {
    /// Tail exponent; must be > 1 for a proper distribution.
    pub alpha: f64,
    /// Minimum value.
    pub x_min: f64,
}

impl PowerLaw {
    /// Creates a sampler, panicking on invalid parameters (programmer
    /// error: these are compile-time-chosen constants in practice).
    pub fn new(alpha: f64, x_min: f64) -> Self {
        assert!(alpha > 1.0, "power-law exponent must exceed 1");
        assert!(x_min > 0.0, "x_min must be positive");
        PowerLaw { alpha, x_min }
    }

    /// Draws one sample by inverse-CDF transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min * u.powf(-1.0 / (self.alpha - 1.0))
    }

    /// Draws one sample, truncated to `max`.
    pub fn sample_capped<R: Rng + ?Sized>(&self, rng: &mut R, max: f64) -> f64 {
        self.sample(rng).min(max)
    }
}

/// Draws an integer Pareto sample in `[min, max]` with exponent `alpha`.
pub fn pareto_sample<R: Rng + ?Sized>(rng: &mut R, alpha: f64, min: usize, max: usize) -> usize {
    debug_assert!(min >= 1 && max >= min);
    let pl = PowerLaw::new(alpha, min as f64);
    (pl.sample_capped(rng, max as f64).floor() as usize).clamp(min, max)
}

/// Unnormalized Zipf weights `w[i] = (i + 1)^{-s}` for ranked selection.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_x_min() {
        let mut rng = StdRng::seed_from_u64(7);
        let pl = PowerLaw::new(2.5, 3.0);
        for _ in 0..1000 {
            assert!(pl.sample(&mut rng) >= 3.0);
        }
    }

    #[test]
    fn capped_sampling_respects_max() {
        let mut rng = StdRng::seed_from_u64(7);
        let pl = PowerLaw::new(1.5, 1.0);
        for _ in 0..1000 {
            assert!(pl.sample_capped(&mut rng, 10.0) <= 10.0);
        }
    }

    #[test]
    fn mean_approximates_theory() {
        // For alpha > 2, E[X] = x_min * (alpha - 1) / (alpha - 2).
        let mut rng = StdRng::seed_from_u64(99);
        let pl = PowerLaw::new(3.0, 1.0);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| pl.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn heavy_tail_produces_hubs() {
        // With alpha close to 2 we should see samples far above the median.
        let mut rng = StdRng::seed_from_u64(1);
        let pl = PowerLaw::new(2.0, 1.0);
        let samples: Vec<f64> = (0..10_000).map(|_| pl.sample(&mut rng)).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 100.0, "max sample {max} not hub-like");
    }

    #[test]
    fn integer_pareto_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = pareto_sample(&mut rng, 2.2, 2, 50);
            assert!((2..=50).contains(&v));
        }
    }

    #[test]
    fn zipf_weights_decreasing() {
        let w = zipf_weights(5, 1.0);
        assert_eq!(w.len(), 5);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_alpha_below_one() {
        PowerLaw::new(0.9, 1.0);
    }
}

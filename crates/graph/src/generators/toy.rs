//! Small deterministic graphs used throughout tests, examples and docs.

use crate::DiGraph;

/// The idealized graph of the paper's **Figure 1**.
///
/// Nodes 4 and 5 form a natural cluster even though they do not link to one
/// another: they point to the same nodes (6, 7, 8) and are pointed to by the
/// same nodes (1, 2, 3). Node 0 plays the "genus page" role from the
/// Guzmania case study (§5.7): it points at both 4 and 5 and is pointed back
/// at by both.
///
/// A low-directed-normalized-cut objective scores the cluster `{4, 5}`
/// poorly (a random walk leaves it in one step with high probability), while
/// in-/out-link-similarity symmetrizations connect 4 and 5 strongly.
pub fn figure1_graph() -> DiGraph {
    let edges = [
        // common in-link sources
        (1, 4),
        (1, 5),
        (2, 4),
        (2, 5),
        (3, 4),
        (3, 5),
        // common out-link targets
        (4, 6),
        (4, 7),
        (4, 8),
        (5, 6),
        (5, 7),
        (5, 8),
        // the "genus" node: mutual links with both cluster members
        (0, 4),
        (0, 5),
        (4, 0),
        (5, 0),
    ];
    DiGraph::from_edges(9, &edges).expect("static edge list is valid")
}

/// A labeled miniature of the Wikipedia **Guzmania** case study (§5.7,
/// Figure 10): plant-species pages that never link to one another but share
/// all their in-links and out-links, plus unrelated filler pages.
///
/// Layout: nodes 0..n_species are species pages; then "Guzmania" (genus),
/// "Poales" (order), "Ecuador", "Bromeliaceae"; then a hub ("Plant") that
/// everything links to; then a few unrelated pages forming a chain.
pub fn guzmania_graph(n_species: usize) -> DiGraph {
    assert!(n_species >= 2, "need at least two species");
    let genus = n_species;
    let poales = n_species + 1;
    let ecuador = n_species + 2;
    let brome = n_species + 3;
    let hub = n_species + 4;
    let filler0 = n_species + 5;
    let n = n_species + 8;
    let mut edges = Vec::new();
    for s in 0..n_species {
        // Every species points at its genus, order, country, family and the
        // generic hub; the genus points back at every species.
        for &t in &[genus, poales, ecuador, brome, hub] {
            edges.push((s, t));
        }
        edges.push((genus, s));
    }
    // Taxonomy backbone.
    edges.push((genus, brome));
    edges.push((brome, poales));
    edges.push((poales, hub));
    edges.push((ecuador, hub));
    // Unrelated filler chain that also cites the hub.
    for f in filler0..n - 1 {
        edges.push((f, f + 1));
        edges.push((f, hub));
    }
    edges.push((n - 1, hub));
    let mut labels: Vec<String> = (0..n_species)
        .map(|i| format!("Guzmania sp. {i}"))
        .collect();
    labels.extend(
        ["Guzmania", "Poales", "Ecuador", "Bromeliaceae", "Plant"]
            .iter()
            .map(|s| s.to_string()),
    );
    for i in 0..3 {
        labels.push(format!("Unrelated {i}"));
    }
    DiGraph::from_edges(n, &edges)
        .expect("static edge list is valid")
        .with_labels(labels)
        .expect("label count matches")
}

/// Two directed cliques of size `k` joined by a single edge; the classic
/// well-separated-clusters sanity check. Nodes `0..k` form clique A,
/// `k..2k` clique B, with one bridge edge `k-1 → k`.
pub fn two_cliques(k: usize) -> DiGraph {
    assert!(k >= 2);
    let mut edges = Vec::new();
    for base in [0, k] {
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((base + i, base + j));
                }
            }
        }
    }
    edges.push((k - 1, k));
    DiGraph::from_edges(2 * k, &edges).expect("static edge list is valid")
}

/// Directed cycle on `n` nodes.
pub fn cycle_graph(n: usize) -> DiGraph {
    assert!(n >= 2);
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    DiGraph::from_edges(n, &edges).expect("static edge list is valid")
}

/// Star: nodes `1..n` all point at node 0.
pub fn star_graph(n: usize) -> DiGraph {
    assert!(n >= 2);
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i, 0)).collect();
    DiGraph::from_edges(n, &edges).expect("static edge list is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::percent_symmetric_links;

    #[test]
    fn figure1_shape() {
        let g = figure1_graph();
        assert_eq!(g.n_nodes(), 9);
        assert_eq!(g.n_edges(), 16);
        // The defining property: 4 and 5 do NOT link to each other...
        assert!(!g.has_edge(4, 5));
        assert!(!g.has_edge(5, 4));
        // ...but share in-links and out-links.
        for s in 1..=3 {
            assert!(g.has_edge(s, 4) && g.has_edge(s, 5));
        }
        for t in 6..=8 {
            assert!(g.has_edge(4, t) && g.has_edge(5, t));
        }
        // Mutual link with the genus node.
        assert!(g.has_edge(0, 4) && g.has_edge(4, 0));
    }

    #[test]
    fn guzmania_species_share_links_but_not_each_other() {
        let g = guzmania_graph(5);
        assert_eq!(g.label(0), "Guzmania sp. 0");
        assert_eq!(g.label(5), "Guzmania");
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert!(!g.has_edge(a, b), "species {a} links species {b}");
                }
            }
            // Every species has a mutual link with the genus.
            assert!(g.has_edge(a, 5) && g.has_edge(5, a));
        }
    }

    #[test]
    fn two_cliques_shape() {
        let g = two_cliques(3);
        assert_eq!(g.n_nodes(), 6);
        assert_eq!(g.n_edges(), 2 * 6 + 1);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        // Cliques are fully reciprocal except for the bridge edge.
        let ps = percent_symmetric_links(&g);
        assert!(ps > 90.0 && ps < 100.0);
    }

    #[test]
    fn cycle_and_star() {
        let c = cycle_graph(5);
        assert_eq!(c.n_edges(), 5);
        assert!(c.has_edge(4, 0));
        let s = star_graph(4);
        assert_eq!(s.n_edges(), 3);
        assert_eq!(s.in_degrees()[0], 3);
    }
}

//! Shared-link directed stochastic block model (DSBM).
//!
//! The planted clusters follow the paper's central insight (§1, Figure 1):
//! a directed cluster is a set of nodes that **share in-links and
//! out-links** — they point at a common set of *signature targets* and are
//! pointed at by a common set of *signature sources* — while possibly never
//! linking to one another. The generator superimposes:
//!
//! 1. **Signature structure**: each cluster draws a small set of signature
//!    target/source nodes from the whole graph; members link to/from them
//!    with probability `p_signature`.
//! 2. **Intra-cluster links** with probability `p_intra` (citation-style
//!    graphs have some; competitor-website-style clusters have none).
//! 3. **Power-law noise**: every node emits a Pareto-distributed number of
//!    uniformly random out-edges.
//! 4. **Hubs**: a few designated nodes that a large fraction of the graph
//!    points to and that point back at a large random set — these are what
//!    break Bibliometric symmetrization on real power-law graphs (§3.4).
//! 5. **Reciprocity**: each generated edge gains a reverse edge with
//!    probability `p_reciprocal`, matching a target percentage of symmetric
//!    links (Table 1).
//!
//! Ground truth is the planted cluster assignment, with configurable
//! overlapping membership and unlabeled fraction (the paper's Wikipedia
//! truth has both).

use crate::generators::powerlaw::pareto_sample;
use crate::{DiGraph, GroundTruth, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`shared_link_dsbm`].
#[derive(Debug, Clone)]
pub struct SharedLinkDsbmConfig {
    /// Total node count.
    pub n_nodes: usize,
    /// Number of planted clusters.
    pub n_clusters: usize,
    /// Signature target nodes drawn per cluster.
    pub signature_out: usize,
    /// Signature source nodes drawn per cluster.
    pub signature_in: usize,
    /// Probability that a member links to each signature target (and that
    /// each signature source links to the member).
    pub p_signature: f64,
    /// Probability of a directed edge between two members of the same
    /// cluster.
    pub p_intra: f64,
    /// Mean of the Pareto-distributed random out-edge count per node.
    pub noise_out_mean: usize,
    /// Pareto exponent for the noise out-degree (smaller = heavier tail).
    pub noise_exponent: f64,
    /// Number of global hub nodes.
    pub n_hubs: usize,
    /// Probability that an ordinary node points at each hub.
    pub p_to_hub: f64,
    /// Number of random out-edges each hub emits.
    pub hub_out_degree: usize,
    /// Probability that each generated edge gains its reverse edge.
    pub p_reciprocal: f64,
    /// Fraction of labeled nodes that receive a second (overlapping)
    /// category.
    pub overlap_fraction: f64,
    /// Fraction of nodes carrying no ground-truth label.
    pub unlabeled_fraction: f64,
    /// RNG seed; identical configs generate identical graphs.
    pub seed: u64,
}

impl Default for SharedLinkDsbmConfig {
    fn default() -> Self {
        SharedLinkDsbmConfig {
            n_nodes: 1000,
            n_clusters: 20,
            signature_out: 6,
            signature_in: 6,
            p_signature: 0.7,
            p_intra: 0.02,
            noise_out_mean: 3,
            noise_exponent: 2.2,
            n_hubs: 5,
            p_to_hub: 0.3,
            hub_out_degree: 100,
            p_reciprocal: 0.1,
            overlap_fraction: 0.0,
            unlabeled_fraction: 0.0,
            seed: 42,
        }
    }
}

impl SharedLinkDsbmConfig {
    /// Converts a target "percentage of symmetric links" `s` (0–100, as in
    /// Table 1) into the per-edge reciprocation probability `q` that
    /// produces it in expectation: `s/100 = 2q / (1 + q)`.
    pub fn reciprocal_prob_for_percent_symmetric(percent: f64) -> f64 {
        let s = (percent / 100.0).clamp(0.0, 1.0);
        if s >= 2.0 {
            return 1.0;
        }
        (s / (2.0 - s)).clamp(0.0, 1.0)
    }
}

/// A generated graph together with its planted ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedGraph {
    /// The directed graph.
    pub graph: DiGraph,
    /// Planted categories (possibly overlapping, possibly partial).
    pub truth: GroundTruth,
    /// Planted base cluster per node, before overlap/unlabeling edits. Used
    /// by tests that need the complete assignment.
    pub planted: Vec<u32>,
}

/// Generates a shared-link DSBM graph. See the module docs for the model.
pub fn shared_link_dsbm(cfg: &SharedLinkDsbmConfig) -> Result<GeneratedGraph> {
    assert!(cfg.n_clusters >= 1, "need at least one cluster");
    assert!(
        cfg.n_nodes >= cfg.n_clusters,
        "need at least one node per cluster"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_nodes;
    let k = cfg.n_clusters;

    // Contiguous, nearly-balanced planted clusters. Hubs are the last
    // `n_hubs` node ids and belong to no cluster.
    let n_clustered = n.saturating_sub(cfg.n_hubs);
    let mut planted = vec![u32::MAX; n];
    let base = n_clustered / k;
    let rem = n_clustered % k;
    let mut next = 0usize;
    let mut cluster_ranges = Vec::with_capacity(k);
    for c in 0..k {
        let size = base + usize::from(c < rem);
        cluster_ranges.push((next, next + size));
        planted[next..next + size].fill(c as u32);
        next += size;
    }
    let hubs: Vec<usize> = (n_clustered..n).collect();

    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    let push = |edges: &mut HashSet<(u32, u32)>, u: usize, v: usize| {
        if u != v {
            edges.insert((u as u32, v as u32));
        }
    };

    // 1. Signature structure.
    for &(lo, hi) in &cluster_ranges {
        if lo == hi {
            continue;
        }
        let sig_out: Vec<usize> = (0..cfg.signature_out)
            .map(|_| rng.gen_range(0..n))
            .collect();
        let sig_in: Vec<usize> = (0..cfg.signature_in).map(|_| rng.gen_range(0..n)).collect();
        for member in lo..hi {
            for &t in &sig_out {
                if rng.gen_bool(cfg.p_signature) {
                    push(&mut edges, member, t);
                }
            }
            for &s in &sig_in {
                if rng.gen_bool(cfg.p_signature) {
                    push(&mut edges, s, member);
                }
            }
        }
        // 2. Intra-cluster links.
        if cfg.p_intra > 0.0 {
            for u in lo..hi {
                for v in lo..hi {
                    if u != v && rng.gen_bool(cfg.p_intra) {
                        push(&mut edges, u, v);
                    }
                }
            }
        }
    }

    // 3. Power-law noise out-edges.
    if cfg.noise_out_mean > 0 {
        for u in 0..n_clustered {
            let d = pareto_sample(&mut rng, cfg.noise_exponent, 1, cfg.noise_out_mean * 20);
            // Rescale so the mean is roughly noise_out_mean: the Pareto mean
            // with x_min = 1 is (a-1)/(a-2); divide it out.
            let mean_factor = (cfg.noise_exponent - 1.0) / (cfg.noise_exponent - 2.0).max(0.1);
            let d = ((d as f64) * cfg.noise_out_mean as f64 / mean_factor).round() as usize;
            for _ in 0..d {
                push(&mut edges, u, rng.gen_range(0..n));
            }
        }
    }

    // 4. Hubs.
    for &h in &hubs {
        for u in 0..n_clustered {
            if rng.gen_bool(cfg.p_to_hub) {
                push(&mut edges, u, h);
            }
        }
        for _ in 0..cfg.hub_out_degree {
            push(&mut edges, h, rng.gen_range(0..n));
        }
    }

    // 5. Reciprocity.
    if cfg.p_reciprocal > 0.0 {
        // Sort so RNG consumption order is independent of HashSet iteration
        // order; otherwise identical seeds produce different graphs.
        let mut snapshot: Vec<(u32, u32)> = edges.iter().copied().collect();
        snapshot.sort_unstable();
        for (u, v) in snapshot {
            if rng.gen_bool(cfg.p_reciprocal) {
                edges.insert((v, u));
            }
        }
    }

    let edge_list: Vec<(usize, usize)> = edges
        .into_iter()
        .map(|(u, v)| (u as usize, v as usize))
        .collect();
    let graph = DiGraph::from_edges(n, &edge_list)?;

    // Ground truth: base assignment, then overlaps, then unlabeling.
    let mut categories: Vec<Vec<u32>> = cluster_ranges
        .iter()
        .map(|&(lo, hi)| (lo as u32..hi as u32).collect())
        .collect();
    let labeled: Vec<u32> = (0..n_clustered as u32).collect();
    if cfg.overlap_fraction > 0.0 && k > 1 {
        let n_overlap = (labeled.len() as f64 * cfg.overlap_fraction) as usize;
        let mut pool = labeled.clone();
        pool.shuffle(&mut rng);
        for &node in pool.iter().take(n_overlap) {
            let own = planted[node as usize] as usize;
            let mut other = rng.gen_range(0..k);
            if other == own {
                other = (other + 1) % k;
            }
            categories[other].push(node);
        }
    }
    if cfg.unlabeled_fraction > 0.0 {
        let n_unlabeled = (n as f64 * cfg.unlabeled_fraction) as usize;
        let mut pool: Vec<u32> = (0..n as u32).collect();
        pool.shuffle(&mut rng);
        let drop: HashSet<u32> = pool.into_iter().take(n_unlabeled).collect();
        for cat in &mut categories {
            cat.retain(|m| !drop.contains(m));
        }
    }
    categories.retain(|c| !c.is_empty());
    let truth = GroundTruth::new(n, categories)?;

    Ok(GeneratedGraph {
        graph,
        truth,
        planted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::percent_symmetric_links;

    fn small_cfg() -> SharedLinkDsbmConfig {
        SharedLinkDsbmConfig {
            n_nodes: 300,
            n_clusters: 10,
            n_hubs: 3,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = shared_link_dsbm(&small_cfg()).unwrap();
        let b = shared_link_dsbm(&small_cfg()).unwrap();
        assert_eq!(a.graph.n_edges(), b.graph.n_edges());
        assert_eq!(a.graph.adjacency(), b.graph.adjacency());
    }

    #[test]
    fn different_seeds_differ() {
        let a = shared_link_dsbm(&small_cfg()).unwrap();
        let mut cfg = small_cfg();
        cfg.seed = 8;
        let b = shared_link_dsbm(&cfg).unwrap();
        assert_ne!(a.graph.adjacency(), b.graph.adjacency());
    }

    #[test]
    fn planted_clusters_cover_non_hub_nodes() {
        let g = shared_link_dsbm(&small_cfg()).unwrap();
        let clustered = 300 - 3;
        for node in 0..clustered {
            assert_ne!(g.planted[node], u32::MAX);
        }
        for node in clustered..300 {
            assert_eq!(g.planted[node], u32::MAX);
        }
        assert_eq!(g.truth.n_categories(), 10);
    }

    #[test]
    fn hubs_have_high_in_degree() {
        let g = shared_link_dsbm(&small_cfg()).unwrap();
        let in_deg = g.graph.in_degrees();
        let hub_min = (297..300).map(|h| in_deg[h]).min().unwrap();
        let mean_in: f64 = in_deg[..297].iter().sum::<usize>() as f64 / 297.0;
        assert!(
            hub_min as f64 > 5.0 * mean_in,
            "hub in-degree {hub_min} vs mean {mean_in}"
        );
    }

    #[test]
    fn reciprocity_tracks_target() {
        for target in [10.0, 40.0, 70.0] {
            let q = SharedLinkDsbmConfig::reciprocal_prob_for_percent_symmetric(target);
            let cfg = SharedLinkDsbmConfig {
                n_nodes: 2000,
                n_clusters: 20,
                p_reciprocal: q,
                seed: 3,
                ..Default::default()
            };
            let g = shared_link_dsbm(&cfg).unwrap();
            let got = percent_symmetric_links(&g.graph);
            assert!(
                (got - target).abs() < 8.0,
                "target {target}%, got {got}% (q = {q})"
            );
        }
    }

    #[test]
    fn overlap_and_unlabeled_fractions_apply() {
        let cfg = SharedLinkDsbmConfig {
            overlap_fraction: 0.2,
            unlabeled_fraction: 0.3,
            ..small_cfg()
        };
        let g = shared_link_dsbm(&cfg).unwrap();
        let unl = g.truth.unlabeled_fraction();
        assert!(
            (unl - 0.3).abs() < 0.05,
            "unlabeled fraction {unl} far from 0.3"
        );
        // Some node must belong to two categories.
        let multi = g
            .truth
            .node_categories()
            .iter()
            .filter(|cats| cats.len() > 1)
            .count();
        assert!(multi > 0, "no overlapping memberships generated");
    }

    #[test]
    fn members_share_signature_outlinks() {
        // With high p_signature and no noise, two members of the same
        // cluster share most of their out-links.
        let cfg = SharedLinkDsbmConfig {
            n_nodes: 200,
            n_clusters: 5,
            p_signature: 1.0,
            p_intra: 0.0,
            noise_out_mean: 0,
            n_hubs: 0,
            p_reciprocal: 0.0,
            signature_in: 0,
            signature_out: 5,
            seed: 11,
            ..Default::default()
        };
        let g = shared_link_dsbm(&cfg).unwrap();
        let a = g.graph.adjacency();
        // Nodes 0 and 1 are in cluster 0: identical out-neighborhoods.
        let n0: Vec<u32> = a.row_indices(0).to_vec();
        let n1: Vec<u32> = a.row_indices(1).to_vec();
        let shared = n0.iter().filter(|x| n1.contains(x)).count();
        assert!(shared >= 4, "members share only {shared} out-links");
        // And they do not link to each other (pure Figure-1 structure is
        // possible but signature targets may accidentally hit members, so
        // only check they share links rather than full absence).
    }

    #[test]
    fn zero_noise_graph_is_small() {
        let cfg = SharedLinkDsbmConfig {
            n_nodes: 100,
            n_clusters: 4,
            noise_out_mean: 0,
            n_hubs: 0,
            p_intra: 0.0,
            p_reciprocal: 0.0,
            ..Default::default()
        };
        let g = shared_link_dsbm(&cfg).unwrap();
        // Only signature edges: at most (sig_out + sig_in) * n.
        assert!(g.graph.n_edges() <= 100 * 12);
        assert!(g.graph.n_edges() > 0);
    }

    #[test]
    fn reciprocal_prob_inversion() {
        // s = 2q/(1+q) must invert correctly.
        for q in [0.0, 0.1, 0.5, 1.0] {
            let s = 100.0 * 2.0 * q / (1.0 + q);
            let q2 = SharedLinkDsbmConfig::reciprocal_prob_for_percent_symmetric(s);
            assert!((q - q2).abs() < 1e-9, "q={q}, recovered {q2}");
        }
    }
}

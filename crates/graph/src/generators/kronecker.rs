//! Stochastic Kronecker graph generator (Leskovec et al., JMLR 2010 — the
//! paper's reference \[14\]).
//!
//! The paper's conclusion singles out Kronecker graphs as "realistic
//! directed networks" that unfortunately lack ground-truth clusters; we
//! provide the generator both for fidelity to the paper's discussion and as
//! a structurally realistic timing workload.
//!
//! Edges are sampled by recursive quadrant descent: each of the requested
//! edges picks one cell of the `2^k x 2^k` probability matrix
//! `P = Θ ⊗ Θ ⊗ ... ⊗ Θ` by descending `k` levels, choosing a quadrant at
//! each level with probability proportional to the initiator entry.

use crate::{DiGraph, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`kronecker_graph`].
#[derive(Debug, Clone)]
pub struct KroneckerConfig {
    /// The 2x2 initiator matrix `[[a, b], [c, d]]`, entries in (0, 1].
    /// The classic "realistic" choice is roughly `[[0.9, 0.5], [0.5, 0.1]]`.
    pub initiator: [[f64; 2]; 2],
    /// Number of Kronecker levels; the graph has `2^levels` nodes.
    pub levels: u32,
    /// Number of distinct edges to sample.
    pub n_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KroneckerConfig {
    fn default() -> Self {
        KroneckerConfig {
            initiator: [[0.9, 0.5], [0.5, 0.1]],
            levels: 10,
            n_edges: 10_000,
            seed: 42,
        }
    }
}

/// Generates a stochastic Kronecker graph.
pub fn kronecker_graph(cfg: &KroneckerConfig) -> Result<DiGraph> {
    assert!(cfg.levels >= 1 && cfg.levels < 32, "levels out of range");
    let n = 1usize << cfg.levels;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let t = &cfg.initiator;
    let total: f64 = t[0][0] + t[0][1] + t[1][0] + t[1][1];
    assert!(total > 0.0, "initiator must have positive mass");

    let mut edges: HashSet<(u32, u32)> = HashSet::with_capacity(cfg.n_edges * 2);
    // Cap attempts: duplicate samples are common in dense corners, so allow
    // a generous retry budget before accepting fewer edges.
    let max_attempts = cfg.n_edges.saturating_mul(20).max(1000);
    let mut attempts = 0usize;
    while edges.len() < cfg.n_edges && attempts < max_attempts {
        attempts += 1;
        let (mut row, mut col) = (0usize, 0usize);
        for _ in 0..cfg.levels {
            let r: f64 = rng.gen_range(0.0..total);
            let (qr, qc) = if r < t[0][0] {
                (0, 0)
            } else if r < t[0][0] + t[0][1] {
                (0, 1)
            } else if r < t[0][0] + t[0][1] + t[1][0] {
                (1, 0)
            } else {
                (1, 1)
            };
            row = (row << 1) | qr;
            col = (col << 1) | qc;
        }
        if row != col {
            edges.insert((row as u32, col as u32));
        }
    }
    let edge_list: Vec<(usize, usize)> = edges
        .into_iter()
        .map(|(u, v)| (u as usize, v as usize))
        .collect();
    DiGraph::from_edges(n, &edge_list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let cfg = KroneckerConfig {
            levels: 8,
            n_edges: 2000,
            ..Default::default()
        };
        let g = kronecker_graph(&cfg).unwrap();
        assert_eq!(g.n_nodes(), 256);
        assert!(g.n_edges() > 1500, "got {} edges", g.n_edges());
        assert!(g.n_edges() <= 2000);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = KroneckerConfig {
            levels: 7,
            n_edges: 500,
            seed: 9,
            ..Default::default()
        };
        let a = kronecker_graph(&cfg).unwrap();
        let b = kronecker_graph(&cfg).unwrap();
        assert_eq!(a.adjacency(), b.adjacency());
    }

    #[test]
    fn core_nodes_attract_more_edges() {
        // With a core-periphery initiator, low-id nodes have higher degree.
        let cfg = KroneckerConfig {
            levels: 9,
            n_edges: 8000,
            seed: 4,
            ..Default::default()
        };
        let g = kronecker_graph(&cfg).unwrap();
        let deg = g.out_degrees();
        let n = deg.len();
        let head: usize = deg[..n / 8].iter().sum();
        let tail: usize = deg[7 * n / 8..].iter().sum();
        assert!(
            head > 4 * tail.max(1),
            "head degree {head} not dominant over tail {tail}"
        );
    }

    #[test]
    fn no_self_loops() {
        let g = kronecker_graph(&KroneckerConfig {
            levels: 6,
            n_edges: 500,
            ..Default::default()
        })
        .unwrap();
        for (u, v, _) in g.edges() {
            assert_ne!(u, v as usize);
        }
    }
}

//! Synthetic directed-graph generators with planted ground truth.
//!
//! The paper's conclusion laments that "we are aware of no synthetic graph
//! generators for producing realistic directed graphs with known ground
//! truth clusters". This module provides one — the **shared-link DSBM**
//! ([`dsbm`]) — whose planted clusters are defined the way the paper argues
//! real directed clusters are: members *share in-links and out-links*
//! (Figure 1, the Guzmania case study) rather than linking to each other.
//! It also provides a stochastic Kronecker generator (the paper's ref \[14\]),
//! power-law degree samplers, and small deterministic toy graphs used in
//! tests and examples.

pub mod dsbm;
pub mod kronecker;
pub mod powerlaw;
pub mod toy;

pub use dsbm::{shared_link_dsbm, GeneratedGraph, SharedLinkDsbmConfig};
pub use kronecker::{kronecker_graph, KroneckerConfig};
pub use powerlaw::{pareto_sample, zipf_weights, PowerLaw};
pub use toy::{cycle_graph, figure1_graph, guzmania_graph, star_graph, two_cliques};

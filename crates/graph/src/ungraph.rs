//! Undirected weighted graph backed by a symmetric CSR adjacency matrix.
//!
//! Every symmetrization produces an [`UnGraph`]; every stage-2 clustering
//! algorithm consumes one.

use crate::{GraphError, Result};
use symclust_sparse::{CooMatrix, CsrMatrix};

/// A weighted undirected graph.
///
/// The adjacency matrix is stored in full symmetric form (both `(u, v)` and
/// `(v, u)` entries), which lets clustering algorithms stream neighbor lists
/// straight off CSR rows. Self-loops are permitted (some clusterers add
/// them); construction checks symmetry.
#[derive(Debug, Clone)]
pub struct UnGraph {
    adj: CsrMatrix,
    labels: Option<Vec<String>>,
}

impl UnGraph {
    /// Wraps a symmetric adjacency matrix.
    ///
    /// # Errors
    /// Rejects non-square or (numerically) asymmetric matrices.
    pub fn from_adjacency(adj: CsrMatrix) -> Result<Self> {
        if adj.n_rows() != adj.n_cols() {
            return Err(GraphError::Invalid(format!(
                "adjacency matrix must be square, got {}x{}",
                adj.n_rows(),
                adj.n_cols()
            )));
        }
        if !adj.is_symmetric(1e-9) {
            return Err(GraphError::Invalid(
                "adjacency matrix is not symmetric".to_string(),
            ));
        }
        Ok(UnGraph { adj, labels: None })
    }

    /// Wraps a matrix that is symmetric by construction, skipping the check
    /// in release builds. Symmetrizations use this fast path.
    pub fn from_symmetric_unchecked(adj: CsrMatrix) -> Self {
        debug_assert!(
            adj.n_rows() == adj.n_cols() && adj.is_symmetric(1e-9),
            "from_symmetric_unchecked got an asymmetric matrix"
        );
        UnGraph { adj, labels: None }
    }

    /// Builds from undirected unweighted edges; each `(u, v)` inserts both
    /// directions with weight 1.0.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2);
        for &(u, v) in edges {
            coo.push(u, v, 1.0)?;
            if u != v {
                coo.push(v, u, 1.0)?;
            }
        }
        Ok(UnGraph {
            adj: coo.to_csr(),
            labels: None,
        })
    }

    /// Builds from undirected weighted edges.
    pub fn from_weighted_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2);
        for &(u, v, w) in edges {
            coo.push(u, v, w)?;
            if u != v {
                coo.push(v, u, w)?;
            }
        }
        Ok(UnGraph {
            adj: coo.to_csr(),
            labels: None,
        })
    }

    /// Attaches node labels.
    pub fn with_labels(mut self, labels: Vec<String>) -> Result<Self> {
        if labels.len() != self.n_nodes() {
            return Err(GraphError::Invalid(format!(
                "{} labels for {} nodes",
                labels.len(),
                self.n_nodes()
            )));
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.adj.n_rows()
    }

    /// Number of undirected edges (off-diagonal stored entries / 2 plus
    /// self-loops).
    pub fn n_edges(&self) -> usize {
        let mut diag = 0usize;
        for r in 0..self.adj.n_rows() {
            if self.adj.get(r, r) != 0.0 {
                diag += 1;
            }
        }
        (self.adj.nnz() - diag) / 2 + diag
    }

    /// The symmetric adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Consumes the graph, returning its adjacency matrix.
    pub fn into_adjacency(self) -> CsrMatrix {
        self.adj
    }

    /// Node labels, if attached.
    pub fn labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    /// Label of a node, or its index rendered as a string.
    pub fn label(&self, node: usize) -> String {
        match &self.labels {
            Some(l) => l[node].clone(),
            None => node.to_string(),
        }
    }

    /// Weighted degree (sum of incident edge weights; self-loops counted
    /// once) per node.
    pub fn weighted_degrees(&self) -> Vec<f64> {
        self.adj.row_sums()
    }

    /// Unweighted degree (neighbor count) per node.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.row_counts()
    }

    /// Neighbors of `node` with edge weights.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.adj.row_iter(node)
    }

    /// Edge weight between `u` and `v` (0.0 if absent).
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        self.adj.get(u, v)
    }

    /// Total edge weight: Σ w(u, v) over undirected edges.
    pub fn total_weight(&self) -> f64 {
        let mut diag = 0.0;
        for r in 0..self.adj.n_rows() {
            diag += self.adj.get(r, r);
        }
        (self.adj.values().iter().sum::<f64>() - diag) / 2.0 + diag
    }

    /// Number of nodes with no incident edges.
    pub fn n_singletons(&self) -> usize {
        (0..self.n_nodes())
            .filter(|&r| self.adj.row_nnz(r) == 0)
            .count()
    }

    /// The subgraph induced by `nodes` (which must be sorted and unique);
    /// node `i` of the result corresponds to `nodes[i]`. Labels are not
    /// carried over.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> UnGraph {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes not sorted");
        let mut local = vec![u32::MAX; self.n_nodes()];
        for (i, &v) in nodes.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut coo = CooMatrix::new(nodes.len(), nodes.len());
        for &v in nodes {
            for (nb, w) in self.neighbors(v as usize) {
                let lu = local[v as usize];
                let lv = local[nb as usize];
                if lv != u32::MAX {
                    coo.push(lu as usize, lv as usize, w)
                        .expect("indices in range by construction");
                }
            }
        }
        UnGraph::from_symmetric_unchecked(coo.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> UnGraph {
        UnGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn from_edges_inserts_both_directions() {
        let g = path();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.weight(0, 1), 1.0);
        assert_eq!(g.weight(1, 0), 1.0);
    }

    #[test]
    fn self_loop_counts_once() {
        let g = UnGraph::from_edges(2, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.weight(0, 0), 1.0);
        assert_eq!(g.total_weight(), 2.0);
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let m = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        assert!(UnGraph::from_adjacency(m).is_err());
    }

    #[test]
    fn accepts_symmetric_matrix() {
        let m = CsrMatrix::from_dense(&[vec![0.0, 2.0], vec![2.0, 0.0]]);
        let g = UnGraph::from_adjacency(m).unwrap();
        assert_eq!(g.weight(0, 1), 2.0);
    }

    #[test]
    fn weighted_degrees_sum_incident() {
        let g = UnGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        assert_eq!(g.weighted_degrees(), vec![2.0, 5.0, 3.0]);
        assert_eq!(g.degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn total_weight_sums_edges_once() {
        let g = UnGraph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        assert_eq!(g.total_weight(), 5.0);
    }

    #[test]
    fn singleton_count() {
        let g = UnGraph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(g.n_singletons(), 2);
    }

    #[test]
    fn labels_roundtrip() {
        let g = path()
            .with_labels(vec!["x".into(), "y".into(), "z".into()])
            .unwrap();
        assert_eq!(g.label(1), "y");
        assert!(path().with_labels(vec![]).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(UnGraph::from_adjacency(CsrMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g =
            UnGraph::from_weighted_edges(5, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0), (3, 4, 5.0)])
                .unwrap();
        let sub = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.weight(0, 1), 3.0); // old edge 1-2
        assert_eq!(sub.weight(0, 2), 0.0); // 1-4 was not an edge
        assert_eq!(sub.weight(1, 2), 0.0); // 2-4 was not an edge
        assert_eq!(sub.n_edges(), 1);
    }

    #[test]
    fn induced_subgraph_preserves_self_loops() {
        let g = UnGraph::from_weighted_edges(3, &[(0, 0, 7.0), (0, 1, 1.0)]).unwrap();
        let sub = g.induced_subgraph(&[0, 2]);
        assert_eq!(sub.weight(0, 0), 7.0);
        assert_eq!(sub.degrees()[1], 0);
    }
}

//! Plain-text edge-list I/O.
//!
//! Format: one `source target [weight]` triple per line, whitespace
//! separated; lines starting with `#` or `%` are comments. Node ids are
//! non-negative integers; the node count is `max id + 1` unless given.

use crate::{DiGraph, GraphError, Result};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Validation policy for edge-list loading.
///
/// Non-finite and negative weights are always rejected — they corrupt every
/// downstream similarity computation. Self-loops and duplicate edges are
/// rejected by default (a duplicated line usually signals a corrupted file,
/// and a silently accumulated weight is hard to diagnose) but can be opted
/// back in for formats that legitimately carry them.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeListOptions {
    /// Accept `u u` self-loop edges. Default false.
    pub allow_self_loops: bool,
    /// Accept repeated `(u, v)` pairs, accumulating their weights.
    /// Default false.
    pub allow_duplicates: bool,
}

impl EdgeListOptions {
    /// Accepts self-loops and duplicate edges (weights accumulate).
    pub fn permissive() -> Self {
        EdgeListOptions {
            allow_self_loops: true,
            allow_duplicates: true,
        }
    }
}

/// Reads a directed edge list from any reader with default (strict)
/// validation; see [`EdgeListOptions`].
pub fn read_edge_list<R: Read>(reader: R) -> Result<DiGraph> {
    read_edge_list_with(reader, &EdgeListOptions::default())
}

/// Reads a directed edge list from any reader under the given validation
/// policy.
pub fn read_edge_list_with<R: Read>(reader: R, opts: &EdgeListOptions) -> Result<DiGraph> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_node = 0usize;
    let mut first_seen: HashMap<(usize, usize), usize> = HashMap::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let lineno = lineno + 1;
        let mut parts = trimmed.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| GraphError::Invalid(format!("line {lineno}: missing source")))?
            .parse()
            .map_err(|e| GraphError::Invalid(format!("line {lineno}: bad source: {e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| GraphError::Invalid(format!("line {lineno}: missing target")))?
            .parse()
            .map_err(|e| GraphError::Invalid(format!("line {lineno}: bad target: {e}")))?;
        // Node ids become u32 CSR column indices downstream; an id at or
        // above u32::MAX would wrap silently in the matrix layer, so
        // reject it here with the offending line.
        const MAX_NODE_ID: usize = u32::MAX as usize - 1;
        for (what, id) in [("source", u), ("target", v)] {
            if id > MAX_NODE_ID {
                return Err(GraphError::BadEdge {
                    line: lineno,
                    reason: format!(
                        "{what} node id {id} exceeds the u32 node-index limit ({MAX_NODE_ID})"
                    ),
                });
            }
        }
        let w: f64 = match parts.next() {
            Some(s) => s
                .parse()
                .map_err(|e| GraphError::Invalid(format!("line {lineno}: bad weight: {e}")))?,
            None => 1.0,
        };
        if !w.is_finite() {
            return Err(GraphError::BadEdge {
                line: lineno,
                reason: format!("non-finite weight {w} on edge {u} -> {v}"),
            });
        }
        if w < 0.0 {
            return Err(GraphError::BadEdge {
                line: lineno,
                reason: format!("negative weight {w} on edge {u} -> {v}"),
            });
        }
        if u == v && !opts.allow_self_loops {
            return Err(GraphError::BadEdge {
                line: lineno,
                reason: format!("self-loop on node {u}"),
            });
        }
        if !opts.allow_duplicates {
            if let Some(&first) = first_seen.get(&(u, v)) {
                return Err(GraphError::BadEdge {
                    line: lineno,
                    reason: format!("duplicate edge {u} -> {v} (first seen at line {first})"),
                });
            }
            first_seen.insert((u, v), lineno);
        }
        max_node = max_node.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() { 0 } else { max_node + 1 };
    DiGraph::from_weighted_edges(n, &edges)
}

/// Reads a directed edge list from a file with default (strict) validation.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Reads a directed edge list from a file under the given validation policy.
pub fn read_edge_list_file_with<P: AsRef<Path>>(
    path: P,
    opts: &EdgeListOptions,
) -> Result<DiGraph> {
    read_edge_list_with(std::fs::File::open(path)?, opts)
}

/// Writes a directed graph as an edge list. Weights equal to 1.0 are
/// omitted to keep files compact.
pub fn write_edge_list<W: Write>(g: &DiGraph, writer: W) -> Result<()> {
    let mut buf = BufWriter::new(writer);
    writeln!(buf, "# symclust edge list: {} nodes", g.n_nodes())?;
    for (u, v, w) in g.edges() {
        if w == 1.0 {
            writeln!(buf, "{u} {v}")?;
        } else {
            writeln!(buf, "{u} {v} {w}")?;
        }
    }
    buf.flush()?;
    Ok(())
}

/// Writes a directed graph to a file.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_basic_edge_list() {
        let input = "# comment\n0 1\n1 2 2.5\n% another comment\n\n2 0\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.adjacency().get(1, 2), 2.5);
        assert_eq!(g.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn read_empty_input() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn read_rejects_malformed_lines() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 notaweight\n".as_bytes()).is_err());
    }

    fn bad_edge_line(err: GraphError) -> usize {
        match err {
            GraphError::BadEdge { line, .. } => line,
            other => panic!("expected BadEdge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_finite_weights_with_line_number() {
        for bad in ["nan", "inf", "-inf"] {
            let input = format!("0 1\n1 2 {bad}\n");
            let line = bad_edge_line(read_edge_list(input.as_bytes()).unwrap_err());
            assert_eq!(line, 2, "weight {bad}");
        }
        // Non-finite weights are rejected even under the permissive policy.
        let err = read_edge_list_with("0 1 nan\n".as_bytes(), &EdgeListOptions::permissive())
            .unwrap_err();
        assert_eq!(bad_edge_line(err), 1);
    }

    #[test]
    fn rejects_negative_weights_with_line_number() {
        let err = read_edge_list("# header\n0 1\n2 0 -3.5\n".as_bytes()).unwrap_err();
        assert_eq!(bad_edge_line(err), 3);
        let err =
            read_edge_list_with("0 1 -1\n".as_bytes(), &EdgeListOptions::permissive()).unwrap_err();
        assert_eq!(bad_edge_line(err), 1);
    }

    #[test]
    fn rejects_out_of_range_node_ids_with_line_number() {
        // Node ids must fit u32 CSR column indices; anything at or above
        // u32::MAX would wrap in the matrix layer.
        let huge = u32::MAX as u64;
        for (input, line) in [
            (format!("0 1\n{huge} 2\n"), 2),
            (format!("# header\n0 1\n1 {}\n", u64::MAX), 3),
        ] {
            let err = read_edge_list(input.as_bytes()).unwrap_err();
            assert_eq!(bad_edge_line(err), line, "input {input:?}");
        }
        // The permissive policy does not relax the id bound.
        let err = read_edge_list_with(
            format!("{huge} 0\n").as_bytes(),
            &EdgeListOptions::permissive(),
        )
        .unwrap_err();
        match err {
            GraphError::BadEdge { line, ref reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("node id"), "reason: {reason}");
                assert!(reason.contains("limit"), "reason: {reason}");
            }
            other => panic!("expected BadEdge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_self_loops_by_default_but_allows_opt_in() {
        let input = "0 1\n2 2\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        assert_eq!(bad_edge_line(err), 2);
        let opts = EdgeListOptions {
            allow_self_loops: true,
            ..Default::default()
        };
        let g = read_edge_list_with(input.as_bytes(), &opts).unwrap();
        assert_eq!(g.adjacency().get(2, 2), 1.0);
    }

    #[test]
    fn rejects_duplicate_edges_by_default_but_accumulates_on_opt_in() {
        let input = "0 1 2.0\n1 2\n0 1 3.0\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            GraphError::BadEdge { line, ref reason } => {
                assert_eq!(line, 3);
                assert!(
                    reason.contains("line 1"),
                    "reason should name the first occurrence: {reason}"
                );
            }
            other => panic!("expected BadEdge, got {other:?}"),
        }
        let opts = EdgeListOptions {
            allow_duplicates: true,
            ..Default::default()
        };
        let g = read_edge_list_with(input.as_bytes(), &opts).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 5.0);
    }

    #[test]
    fn bad_edge_error_message_names_the_line() {
        let err = read_edge_list("0 0\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("self-loop"), "{msg}");
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = DiGraph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 3.5), (3, 0, 1.0)]).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(g2.n_nodes(), 4);
        assert_eq!(g2.adjacency(), g.adjacency());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("symclust_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.adjacency(), g.adjacency());
        std::fs::remove_file(&path).ok();
    }
}

//! Plain-text edge-list I/O.
//!
//! Format: one `source target [weight]` triple per line, whitespace
//! separated; lines starting with `#` or `%` are comments. Node ids are
//! non-negative integers; the node count is `max id + 1` unless given.

use crate::{DiGraph, GraphError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a directed edge list from any reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<DiGraph> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_node = 0usize;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| GraphError::Invalid(format!("line {}: missing source", lineno + 1)))?
            .parse()
            .map_err(|e| GraphError::Invalid(format!("line {}: bad source: {e}", lineno + 1)))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| GraphError::Invalid(format!("line {}: missing target", lineno + 1)))?
            .parse()
            .map_err(|e| GraphError::Invalid(format!("line {}: bad target: {e}", lineno + 1)))?;
        let w: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|e| {
                GraphError::Invalid(format!("line {}: bad weight: {e}", lineno + 1))
            })?,
            None => 1.0,
        };
        max_node = max_node.max(u).max(v);
        edges.push((u, v, w));
    }
    let n = if edges.is_empty() { 0 } else { max_node + 1 };
    DiGraph::from_weighted_edges(n, &edges)
}

/// Reads a directed edge list from a file.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a directed graph as an edge list. Weights equal to 1.0 are
/// omitted to keep files compact.
pub fn write_edge_list<W: Write>(g: &DiGraph, writer: W) -> Result<()> {
    let mut buf = BufWriter::new(writer);
    writeln!(buf, "# symclust edge list: {} nodes", g.n_nodes())?;
    for (u, v, w) in g.edges() {
        if w == 1.0 {
            writeln!(buf, "{u} {v}")?;
        } else {
            writeln!(buf, "{u} {v} {w}")?;
        }
    }
    buf.flush()?;
    Ok(())
}

/// Writes a directed graph to a file.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_basic_edge_list() {
        let input = "# comment\n0 1\n1 2 2.5\n% another comment\n\n2 0\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.adjacency().get(1, 2), 2.5);
        assert_eq!(g.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn read_empty_input() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn read_rejects_malformed_lines() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b\n".as_bytes()).is_err());
        assert!(read_edge_list("0 1 notaweight\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = DiGraph::from_weighted_edges(4, &[(0, 1, 1.0), (1, 2, 3.5), (3, 0, 1.0)]).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(g2.n_nodes(), 4);
        assert_eq!(g2.adjacency(), g.adjacency());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("symclust_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.adjacency(), g.adjacency());
        std::fs::remove_file(&path).ok();
    }
}

//! Graph statistics: reciprocity, degree distributions, components.
//!
//! Backs Table 1 (dataset statistics), Figure 4 (degree distributions of
//! symmetrized graphs), and the structural sanity checks in the experiment
//! harness.

use crate::{DiGraph, UnGraph};
use symclust_sparse::ops::transpose;

/// Summary statistics of a directed graph (Table 1 row).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub n_nodes: usize,
    /// Directed edge count.
    pub n_edges: usize,
    /// Percentage (0–100) of edges whose reverse edge also exists.
    pub percent_symmetric: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean total degree (in + out).
    pub mean_degree: f64,
}

impl GraphStats {
    /// Computes statistics for a directed graph.
    pub fn of(g: &DiGraph) -> GraphStats {
        let inn = g.in_degrees();
        let out = g.out_degrees();
        GraphStats {
            n_nodes: g.n_nodes(),
            n_edges: g.n_edges(),
            percent_symmetric: percent_symmetric_links(g),
            max_in_degree: inn.iter().copied().max().unwrap_or(0),
            max_out_degree: out.iter().copied().max().unwrap_or(0),
            mean_degree: if g.n_nodes() == 0 {
                0.0
            } else {
                2.0 * g.n_edges() as f64 / g.n_nodes() as f64
            },
        }
    }
}

/// Percentage (0–100) of directed edges `u → v` for which `v → u` also
/// exists. This is the "percentage of symmetric links" column of Table 1.
pub fn percent_symmetric_links(g: &DiGraph) -> f64 {
    let a = g.adjacency();
    if a.nnz() == 0 {
        return 0.0;
    }
    let t = transpose(a);
    let mut symmetric = 0usize;
    for row in 0..a.n_rows() {
        let fwd = a.row_indices(row);
        let bwd = t.row_indices(row);
        // Count intersection of sorted index lists.
        let (mut i, mut j) = (0usize, 0usize);
        while i < fwd.len() && j < bwd.len() {
            match fwd[i].cmp(&bwd[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    symmetric += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    100.0 * symmetric as f64 / a.nnz() as f64
}

/// Log-binned degree histogram (Figure 4). Bin `i` covers degrees in
/// `[2^i, 2^(i+1))`; bin 0 additionally includes degree 0 counts in
/// `n_zero`.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeHistogram {
    /// Nodes with degree 0 (singletons after pruning).
    pub n_zero: usize,
    /// `bins[i]` = number of nodes with degree in `[2^i, 2^{i+1})`.
    pub bins: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram from a degree sequence.
    pub fn from_degrees(degrees: &[usize]) -> DegreeHistogram {
        let mut n_zero = 0usize;
        let mut bins: Vec<usize> = Vec::new();
        for &d in degrees {
            if d == 0 {
                n_zero += 1;
                continue;
            }
            let bin = usize::BITS as usize - 1 - d.leading_zeros() as usize;
            if bin >= bins.len() {
                bins.resize(bin + 1, 0);
            }
            bins[bin] += 1;
        }
        DegreeHistogram { n_zero, bins }
    }

    /// Builds the histogram of an undirected graph's degrees.
    pub fn of_ungraph(g: &UnGraph) -> DegreeHistogram {
        DegreeHistogram::from_degrees(&g.degrees())
    }

    /// Inclusive lower bound of bin `i`.
    pub fn bin_lower(i: usize) -> usize {
        1usize << i
    }

    /// Fraction of nodes whose degree falls in `[lo, hi]`.
    pub fn fraction_in_range(degrees: &[usize], lo: usize, hi: usize) -> f64 {
        if degrees.is_empty() {
            return 0.0;
        }
        degrees.iter().filter(|&&d| d >= lo && d <= hi).count() as f64 / degrees.len() as f64
    }
}

/// Weakly connected components of a directed graph via union–find.
/// Returns `(component_id_per_node, component_count)`.
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    let n = g.n_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.edges() {
        uf.union(u, v as usize);
    }
    uf.into_component_labels()
}

/// Connected components of an undirected graph.
pub fn connected_components(g: &UnGraph) -> (Vec<u32>, usize) {
    let n = g.n_nodes();
    let mut uf = UnionFind::new(n);
    for (u, v, _) in g.adjacency().iter() {
        uf.union(u, v as usize);
    }
    uf.into_component_labels()
}

/// Union–find with path halving and union by size.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `x` with path halving.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let grandparent = self.parent[self.parent[x] as usize];
            self.parent[x] = grandparent;
            x = grandparent as usize;
        }
        x
    }

    /// Unions the sets containing `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        true
    }

    /// Converts to dense component labels `0..count`.
    pub fn into_component_labels(mut self) -> (Vec<u32>, usize) {
        let n = self.parent.len();
        let mut labels = vec![u32::MAX; n];
        let mut count = 0u32;
        for x in 0..n {
            let root = self.find(x);
            if labels[root] == u32::MAX {
                labels[root] = count;
                count += 1;
            }
            labels[x] = labels[root];
        }
        (labels, count as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_symmetric_counts_bidirectional_pairs() {
        // 0<->1 symmetric, 1->2 one-way: 2 of 3 edges have a reverse.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        assert!((percent_symmetric_links(&g) - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percent_symmetric_extremes() {
        let none = DiGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(percent_symmetric_links(&none), 0.0);
        let all = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(percent_symmetric_links(&all), 100.0);
        let empty = DiGraph::from_edges(2, &[]).unwrap();
        assert_eq!(percent_symmetric_links(&empty), 0.0);
    }

    #[test]
    fn graph_stats_table1_row() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2), (0, 3)]).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.n_nodes, 4);
        assert_eq!(s.n_edges, 4);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.percent_symmetric - 50.0).abs() < 1e-9);
        assert!((s.mean_degree - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degree_histogram_log_bins() {
        // degrees: 0, 1, 2, 3, 4, 8
        let h = DegreeHistogram::from_degrees(&[0, 1, 2, 3, 4, 8]);
        assert_eq!(h.n_zero, 1);
        assert_eq!(h.bins, vec![1, 2, 1, 1]); // [1,2): 1; [2,4): 2,3; [4,8): 4; [8,16): 8
        assert_eq!(DegreeHistogram::bin_lower(3), 8);
    }

    #[test]
    fn fraction_in_range() {
        let degs = vec![10, 60, 100, 250, 3];
        let f = DegreeHistogram::fraction_in_range(&degs, 50, 200);
        assert!((f - 0.4).abs() < 1e-12);
        assert_eq!(DegreeHistogram::fraction_in_range(&[], 0, 10), 0.0);
    }

    #[test]
    fn weakly_connected_components_found() {
        // 0->1, 2->3 : two components, node 4 isolated.
        let g = DiGraph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
    }

    #[test]
    fn undirected_components() {
        let g = UnGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[3], labels[0]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }
}

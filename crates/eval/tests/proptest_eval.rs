//! Property-based tests for the evaluation suite.

use proptest::prelude::*;
use symclust_eval::signtest::{ln_binomial_tail_half, ln_choose};
use symclust_eval::{adjusted_rand_index, avg_f_score, normalized_cut, sign_test};
use symclust_graph::{GroundTruth, UnGraph};

/// Strategy: ground truth + a clustering over the same n nodes.
fn truth_and_clustering(max_n: usize) -> impl Strategy<Value = (GroundTruth, Vec<u32>)> {
    (4..max_n).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(proptest::option::of(0u32..5), n);
        let assignment = proptest::collection::vec(0u32..6, n);
        (labels, assignment).prop_filter_map("needs at least one label", |(labels, assignment)| {
            if labels.iter().any(Option::is_some) {
                let truth = GroundTruth::from_labels(&labels).ok()?;
                // Densify assignment ids.
                Some((truth, assignment))
            } else {
                None
            }
        })
    })
}

fn densify(raw: &[u32]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    raw.iter()
        .map(|&x| {
            let next = map.len() as u32;
            *map.entry(x).or_insert(next)
        })
        .collect()
}

proptest! {
    #[test]
    fn f_score_is_bounded((truth, raw) in truth_and_clustering(40)) {
        let assignment = densify(&raw);
        let report = avg_f_score(&assignment, &truth);
        prop_assert!(report.avg_f >= 0.0);
        prop_assert!(report.avg_f <= 100.0 + 1e-9);
        for &f in &report.per_cluster_f {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        }
    }

    #[test]
    fn perfect_clustering_of_partition_scores_100(n_cats in 2usize..6, per_cat in 2usize..6) {
        // Build a disjoint complete ground truth and the identical clustering.
        let n = n_cats * per_cat;
        let labels: Vec<Option<u32>> = (0..n).map(|i| Some((i / per_cat) as u32)).collect();
        let truth = GroundTruth::from_labels(&labels).unwrap();
        let assignment: Vec<u32> = (0..n).map(|i| (i / per_cat) as u32).collect();
        let report = avg_f_score(&assignment, &truth);
        prop_assert!((report.avg_f - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merging_clusters_cannot_beat_exact_match(n_cats in 2usize..5, per_cat in 2usize..5) {
        let n = n_cats * per_cat;
        let labels: Vec<Option<u32>> = (0..n).map(|i| Some((i / per_cat) as u32)).collect();
        let truth = GroundTruth::from_labels(&labels).unwrap();
        let exact: Vec<u32> = (0..n).map(|i| (i / per_cat) as u32).collect();
        let merged: Vec<u32> = vec![0; n];
        let f_exact = avg_f_score(&exact, &truth).avg_f;
        let f_merged = avg_f_score(&merged, &truth).avg_f;
        prop_assert!(f_exact >= f_merged);
    }

    #[test]
    fn ari_symmetric_and_bounded(a in proptest::collection::vec(0u32..5, 4..40)) {
        let b: Vec<u32> = a.iter().map(|&x| (x + 1) % 3).collect();
        let ab = adjusted_rand_index(&a, &b);
        let ba = adjusted_rand_index(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab <= 1.0 + 1e-12);
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sign_test_p_in_unit_interval(
        a in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let r = sign_test(&a, &b);
        prop_assert!(r.p >= 0.0 && r.p <= 1.0 + 1e-12);
        prop_assert!(r.log10_p <= 1e-12);
        prop_assert_eq!(r.n_improved + r.n_degraded, a.len());
    }

    #[test]
    fn sign_test_antisymmetry(
        a in proptest::collection::vec(any::<bool>(), 2..100),
        b in proptest::collection::vec(any::<bool>(), 2..100),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let ab = sign_test(a, b);
        let ba = sign_test(b, a);
        prop_assert_eq!(ab.n_improved, ba.n_degraded);
        prop_assert_eq!(ab.n_degraded, ba.n_improved);
        // One-sided p-values: P(X <= d) + P(X <= i) >= 1 when i + d = n.
        if ab.n_improved + ab.n_degraded > 0 {
            prop_assert!(ab.p + ba.p >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn ln_choose_is_symmetric(n in 1usize..300, k in 0usize..300) {
        prop_assume!(k <= n);
        let a = ln_choose(n, k);
        let b = ln_choose(n, n - k);
        prop_assert!((a - b).abs() < 1e-6);
        prop_assert!(a >= -1e-9);
    }

    #[test]
    fn binomial_tail_monotone_in_k(n in 1usize..200, k in 0usize..200) {
        prop_assume!(k < n);
        let lo = ln_binomial_tail_half(n, k);
        let hi = ln_binomial_tail_half(n, k + 1);
        prop_assert!(hi >= lo - 1e-12);
        prop_assert!(ln_binomial_tail_half(n, n) < 1e-9); // P = 1 at k = n
    }

    #[test]
    fn ncut_nonnegative_and_zero_for_single_cluster(
        edges in proptest::collection::vec((0usize..15, 0usize..15), 1..60),
    ) {
        let g = UnGraph::from_edges(15, &edges).unwrap();
        let single = vec![0u32; 15];
        prop_assert!(normalized_cut(&g, &single).abs() < 1e-12);
        let split: Vec<u32> = (0..15).map(|i| (i % 3) as u32).collect();
        prop_assert!(normalized_cut(&g, &split) >= -1e-12);
    }
}

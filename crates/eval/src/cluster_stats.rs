//! Internal (ground-truth-free) clustering quality measures.
//!
//! The paper's §5.4 explains Degree-discounted's speed advantage by "much
//! lower normalized cuts ... indicating the presence of well-separated
//! clusters"; these helpers quantify that kind of structural claim:
//! Newman–Girvan modularity, per-cluster conductance, and cluster-size
//! distribution summaries (the paper repeatedly appeals to the 50–200
//! "natural community size" of Leskovec et al. \[15\]).

use symclust_graph::UnGraph;

/// Newman–Girvan modularity of a hard clustering on a weighted undirected
/// graph: `Q = Σ_c (l_c/m − (d_c/2m)²)` with `l_c` the internal edge
/// weight, `d_c` the total degree of cluster `c`, and `m` the total edge
/// weight.
pub fn modularity(g: &UnGraph, assignments: &[u32]) -> f64 {
    assert_eq!(assignments.len(), g.n_nodes());
    let k = assignments
        .iter()
        .map(|&a| a as usize + 1)
        .max()
        .unwrap_or(0);
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let degrees = g.weighted_degrees();
    let mut internal = vec![0.0f64; k]; // undirected internal weight
    let mut degree_sum = vec![0.0f64; k];
    for (v, &a) in assignments.iter().enumerate() {
        degree_sum[a as usize] += degrees[v];
    }
    for (u, v, w) in g.adjacency().iter() {
        let v = v as usize;
        if assignments[u] == assignments[v] && u <= v {
            internal[assignments[u] as usize] += w;
        }
    }
    (0..k)
        .map(|c| internal[c] / m - (degree_sum[c] / (2.0 * m)).powi(2))
        .sum()
}

/// Conductance `cut(c) / min(vol(c), vol(V∖c))` of every cluster.
/// Clusters with zero volume report 0.
pub fn per_cluster_conductance(g: &UnGraph, assignments: &[u32]) -> Vec<f64> {
    assert_eq!(assignments.len(), g.n_nodes());
    let k = assignments
        .iter()
        .map(|&a| a as usize + 1)
        .max()
        .unwrap_or(0);
    let degrees = g.weighted_degrees();
    let total_vol: f64 = degrees.iter().sum();
    let mut vol = vec![0.0f64; k];
    let mut internal = vec![0.0f64; k]; // ordered-pair internal weight
    for (v, &a) in assignments.iter().enumerate() {
        vol[a as usize] += degrees[v];
    }
    for (u, v, w) in g.adjacency().iter() {
        if assignments[u] == assignments[v as usize] {
            internal[assignments[u] as usize] += w;
        }
    }
    (0..k)
        .map(|c| {
            let cut = vol[c] - internal[c];
            let denom = vol[c].min(total_vol - vol[c]);
            if denom <= 0.0 {
                0.0
            } else {
                cut / denom
            }
        })
        .collect()
}

/// Summary of a clustering's size distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeSummary {
    /// Number of clusters.
    pub n_clusters: usize,
    /// Smallest cluster.
    pub min: usize,
    /// Median cluster size.
    pub median: usize,
    /// Largest cluster.
    pub max: usize,
    /// Mean cluster size.
    pub mean: f64,
    /// Number of singleton clusters.
    pub n_singletons: usize,
    /// Fraction of clusters with size in the "natural community" range
    /// 50–200 of Leskovec et al. (paper ref \[15\]).
    pub frac_natural_size: f64,
}

/// Computes the size summary of a clustering.
pub fn size_summary(assignments: &[u32]) -> SizeSummary {
    let k = assignments
        .iter()
        .map(|&a| a as usize + 1)
        .max()
        .unwrap_or(0);
    let mut sizes = vec![0usize; k];
    for &a in assignments {
        sizes[a as usize] += 1;
    }
    sizes.sort_unstable();
    let n_clusters = sizes.len();
    if n_clusters == 0 {
        return SizeSummary {
            n_clusters: 0,
            min: 0,
            median: 0,
            max: 0,
            mean: 0.0,
            n_singletons: 0,
            frac_natural_size: 0.0,
        };
    }
    SizeSummary {
        n_clusters,
        min: sizes[0],
        median: sizes[n_clusters / 2],
        max: sizes[n_clusters - 1],
        mean: assignments.len() as f64 / n_clusters as f64,
        n_singletons: sizes.iter().filter(|&&s| s == 1).count(),
        frac_natural_size: sizes.iter().filter(|&&s| (50..=200).contains(&s)).count() as f64
            / n_clusters as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> UnGraph {
        UnGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]).unwrap()
    }

    #[test]
    fn modularity_of_good_split_is_high() {
        let g = two_triangles();
        let good = modularity(&g, &[0, 0, 0, 1, 1, 1]);
        let bad = modularity(&g, &[0, 1, 0, 1, 0, 1]);
        let trivial = modularity(&g, &[0; 6]);
        assert!(good > bad, "good {good} <= bad {bad}");
        assert!(good > 0.3);
        // Single cluster has modularity 0 by definition.
        assert!(trivial.abs() < 1e-12);
    }

    #[test]
    fn modularity_hand_computed() {
        // Two disjoint edges: perfect split Q = Σ (1/2 - (1/2)²) = 0.5.
        let g = UnGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let q = modularity(&g, &[0, 0, 1, 1]);
        assert!((q - 0.5).abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn conductance_per_cluster() {
        let g = two_triangles();
        let phi = per_cluster_conductance(&g, &[0, 0, 0, 1, 1, 1]);
        // Each triangle: vol 7, cut 1 → 1/7.
        assert_eq!(phi.len(), 2);
        for p in phi {
            assert!((p - 1.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conductance_of_whole_graph_cluster_is_zero() {
        let g = two_triangles();
        let phi = per_cluster_conductance(&g, &[0; 6]);
        assert_eq!(phi, vec![0.0]);
    }

    #[test]
    fn size_summary_basics() {
        let s = size_summary(&[0, 0, 0, 1, 2, 2]);
        assert_eq!(s.n_clusters, 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.median, 2);
        assert_eq!(s.n_singletons, 1);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.frac_natural_size, 0.0);
    }

    #[test]
    fn size_summary_natural_range() {
        // One cluster of 100 (natural) and one of 10.
        let mut a = vec![0u32; 100];
        a.extend(vec![1u32; 10]);
        let s = size_summary(&a);
        assert!((s.frac_natural_size - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_assignments() {
        let s = size_summary(&[]);
        assert_eq!(s.n_clusters, 0);
        let g = UnGraph::from_edges(0, &[]).unwrap();
        assert_eq!(modularity(&g, &[]), 0.0);
        assert!(per_cluster_conductance(&g, &[]).is_empty());
    }
}

//! Normalized cuts of clusterings, undirected (Eq. 1) and directed (Eq. 3).

use symclust_graph::{DiGraph, UnGraph};
use symclust_sparse::{pagerank, PageRankOptions};

/// Undirected normalized cut of a clustering: `Σ_c cut(c) / vol(c)`
/// (Eq. 1 of the paper summed over clusters; `vol` is the weighted-degree
/// sum). Clusters with zero volume contribute nothing.
pub fn normalized_cut(g: &UnGraph, assignments: &[u32]) -> f64 {
    assert_eq!(assignments.len(), g.n_nodes());
    let k = assignments
        .iter()
        .map(|&a| a as usize + 1)
        .max()
        .unwrap_or(0);
    let degrees = g.weighted_degrees();
    let mut vol = vec![0.0f64; k];
    let mut internal = vec![0.0f64; k];
    for (v, &a) in assignments.iter().enumerate() {
        vol[a as usize] += degrees[v];
    }
    for (u, v, w) in g.adjacency().iter() {
        if assignments[u] == assignments[v as usize] {
            internal[assignments[u] as usize] += w;
        }
    }
    (0..k)
        .filter(|&c| vol[c] > 0.0)
        .map(|c| (vol[c] - internal[c]) / vol[c])
        .sum()
}

/// Directed normalized cut, k-way generalization of Eq. 3:
/// `Σ_c (flow(c → c̄) + flow(c̄ → c)) / (2·π(c))`, where flows are
/// stationary one-step probabilities `π(i)P(i, j)`.
///
/// For a 2-clustering on a graph whose stationary distribution satisfies
/// `πP = π` exactly, this equals Eq. 3's `NCut_dir(S)` (outflow and inflow
/// of `S` coincide under stationarity) and therefore also equals the
/// undirected normalized cut of the Random-walk symmetrization — Gleich's
/// identity, verified in `tests/theory.rs`.
pub fn directed_normalized_cut(g: &DiGraph, assignments: &[u32], teleport: f64) -> f64 {
    assert_eq!(assignments.len(), g.n_nodes());
    let k = assignments
        .iter()
        .map(|&a| a as usize + 1)
        .max()
        .unwrap_or(0);
    let pi = pagerank(
        g.adjacency(),
        &PageRankOptions {
            teleport,
            ..Default::default()
        },
    )
    .expect("pagerank converges on any graph with teleport > 0")
    .pi;
    let out_deg = g.weighted_out_degrees();
    let mut mass = vec![0.0f64; k];
    for (v, &a) in assignments.iter().enumerate() {
        mass[a as usize] += pi[v];
    }
    // Cross-cluster stationary flow π(i)·P(i,j) per source/target cluster.
    let mut outflow = vec![0.0f64; k];
    let mut inflow = vec![0.0f64; k];
    for (u, v, w) in g.edges() {
        let (cu, cv) = (assignments[u] as usize, assignments[v as usize] as usize);
        if cu != cv && out_deg[u] > 0.0 {
            let flow = pi[u] * w / out_deg[u];
            outflow[cu] += flow;
            inflow[cv] += flow;
        }
    }
    (0..k)
        .filter(|&c| mass[c] > 0.0)
        .map(|c| (outflow[c] + inflow[c]) / (2.0 * mass[c]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::{figure1_graph, two_cliques};

    #[test]
    fn undirected_ncut_hand_computed() {
        // Two triangles + bridge, perfect split: vol 7 each, cut 1.
        let g = UnGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let ncut = normalized_cut(&g, &[0, 0, 0, 1, 1, 1]);
        assert!((ncut - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_ncut_zero_for_single_cluster() {
        let g = UnGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(normalized_cut(&g, &[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn undirected_ncut_worse_for_bad_split() {
        let g = UnGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let good = normalized_cut(&g, &[0, 0, 0, 1, 1, 1]);
        let bad = normalized_cut(&g, &[0, 1, 0, 1, 0, 1]);
        assert!(good < bad);
    }

    #[test]
    fn directed_ncut_prefers_clique_split() {
        let g = two_cliques(5);
        let good: Vec<u32> = (0..10).map(|i| u32::from(i >= 5)).collect();
        let bad: Vec<u32> = (0..10).map(|i| (i % 2) as u32).collect();
        let ng = directed_normalized_cut(&g, &good, 0.05);
        let nb = directed_normalized_cut(&g, &bad, 0.05);
        assert!(ng < nb, "good {ng} >= bad {nb}");
    }

    #[test]
    fn directed_ncut_high_for_shared_link_cluster() {
        // The paper's key observation (§2.1.1): the natural cluster {4, 5}
        // of Figure 1 has HIGH directed NCut — a random walk always leaves
        // it in one step — even though it is a perfectly meaningful cluster.
        let g = figure1_graph();
        let mut assignment = vec![0u32; 9];
        assignment[4] = 1;
        assignment[5] = 1;
        let ncut = directed_normalized_cut(&g, &assignment, 0.05);
        // The {4,5} cluster term alone is near its maximum of 1 (every
        // walk step exits), so total exceeds 0.9 comfortably.
        assert!(ncut > 0.9, "ncut = {ncut}");
    }

    #[test]
    fn directed_ncut_zero_single_cluster() {
        let g = two_cliques(3);
        let ncut = directed_normalized_cut(&g, &[0; 6], 0.05);
        assert!(ncut.abs() < 1e-12);
    }
}

#![warn(missing_docs)]

//! # symclust-eval — clustering evaluation
//!
//! Implements the paper's evaluation methodology:
//!
//! * [`avg_f_score`] — the micro-averaged best-match F-measure against
//!   (possibly overlapping, possibly partial) ground-truth categories
//!   (§4.3),
//! * [`normalized_cut`] / [`directed_normalized_cut`] — the undirected NCut
//!   (Eq. 1) and the random-walk directed NCut (Eq. 3) of a clustering,
//! * [`sign_test`] — the paired binomial sign test used to establish
//!   statistical significance (§5.6), with log-domain p-values so results
//!   like `1e-22767` are representable,
//! * [`adjusted_rand_index`] — a standard partition-agreement score used by
//!   the integration tests to verify planted-cluster recovery.

pub mod cluster_stats;
pub mod fscore;
pub mod ncut;
pub mod rand_index;
pub mod signtest;

pub use cluster_stats::{modularity, per_cluster_conductance, size_summary, SizeSummary};
pub use fscore::{avg_f_score, correctly_clustered, FScoreReport};
pub use ncut::{directed_normalized_cut, normalized_cut};
pub use rand_index::adjusted_rand_index;
pub use signtest::{sign_test, SignTestResult};

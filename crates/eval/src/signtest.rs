//! Paired binomial sign test (§5.6 of the paper).
//!
//! "We count the number of graph nodes that were correctly clustered in one
//! clustering but not in the other clustering [...] The probability of the
//! obtained counts (or more extreme counts) arising from the null
//! hypothesis, calculated using the binomial distribution with p = 0.5,
//! gives us the final p-value."
//!
//! The paper reports p-values as extreme as 1e-22767, far below `f64`
//! underflow, so the tail probability is computed entirely in log space
//! with a Lanczos `ln Γ` and log-sum-exp accumulation.

/// Result of a paired sign test comparing clustering A against B.
#[derive(Debug, Clone, Copy)]
pub struct SignTestResult {
    /// Nodes correct under A but not under B.
    pub n_improved: usize,
    /// Nodes correct under B but not under A.
    pub n_degraded: usize,
    /// One-sided p-value for "A is better than B", in log₁₀ (e.g. −312
    /// means p = 1e-312). 0.0 when no discordant pairs exist.
    pub log10_p: f64,
    /// The p-value as an `f64` (0.0 when it underflows).
    pub p: f64,
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (Numerical Recipes
/// coefficients; absolute error < 2e-10 over the domain used here).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument");
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// `ln C(n, k)` via `ln Γ`.
pub fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n);
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Natural-log of the lower binomial tail `P(X ≤ k)` for `X ~ Bin(n, 1/2)`.
pub fn ln_binomial_tail_half(n: usize, k: usize) -> f64 {
    assert!(k <= n);
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    // log-sum-exp over i = 0..=k of ln C(n, i), anchored at the largest
    // term (i = k, since terms grow monotonically up to n/2 and k ≤ n/2 in
    // the use below; for safety anchor at the true maximum).
    let mut max_term = f64::NEG_INFINITY;
    let mut terms = Vec::with_capacity(k + 1);
    for i in 0..=k {
        let t = ln_choose(n, i);
        terms.push(t);
        if t > max_term {
            max_term = t;
        }
    }
    let sum: f64 = terms.iter().map(|t| (t - max_term).exp()).sum();
    ln_half_n + max_term + sum.ln()
}

/// One-sided paired sign test: given per-node correctness indicators for
/// clusterings A and B over the same nodes, tests the null hypothesis that
/// A is no better than B. Small p-values mean A's improvement over B is
/// unlikely to be chance.
pub fn sign_test(correct_a: &[bool], correct_b: &[bool]) -> SignTestResult {
    assert_eq!(
        correct_a.len(),
        correct_b.len(),
        "paired test needs equal-length indicators"
    );
    let mut n_improved = 0usize;
    let mut n_degraded = 0usize;
    for (&a, &b) in correct_a.iter().zip(correct_b) {
        match (a, b) {
            (true, false) => n_improved += 1,
            (false, true) => n_degraded += 1,
            _ => {}
        }
    }
    let n = n_improved + n_degraded;
    if n == 0 {
        return SignTestResult {
            n_improved,
            n_degraded,
            log10_p: 0.0,
            p: 1.0,
        };
    }
    // P(X ≤ n_degraded) under Bin(n, 1/2): probability that B would win at
    // least as often as observed if the methods were equivalent.
    let ln_p = ln_binomial_tail_half(n, n_degraded).min(0.0);
    let log10_p = ln_p / std::f64::consts::LN_10;
    SignTestResult {
        n_improved,
        n_degraded,
        log10_p,
        p: ln_p.exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        for (n, fact) in [
            (1.0, 1.0f64),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ] {
            assert!((ln_gamma(n) - fact.ln()).abs() < 1e-9, "ln_gamma({n})");
        }
    }

    #[test]
    fn ln_choose_matches_pascal() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-9);
        assert!((ln_choose(10, 5) - 252.0f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn binomial_tail_small_cases() {
        // n=4, k=1: P = (C(4,0)+C(4,1))/16 = 5/16.
        let p = ln_binomial_tail_half(4, 1).exp();
        assert!((p - 5.0 / 16.0).abs() < 1e-10);
        // Whole distribution sums to 1.
        let p = ln_binomial_tail_half(10, 10).exp();
        assert!((p - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sign_test_balanced_is_insignificant() {
        let a = vec![true, false, true, false];
        let b = vec![false, true, false, true];
        let r = sign_test(&a, &b);
        assert_eq!(r.n_improved, 2);
        assert_eq!(r.n_degraded, 2);
        // P(X ≤ 2 | n=4) = 11/16.
        assert!((r.p - 11.0 / 16.0).abs() < 1e-10);
    }

    #[test]
    fn sign_test_strong_improvement_is_significant() {
        // 100 improvements, 0 degradations: p = 2^-100 ≈ 7.9e-31.
        let a = vec![true; 100];
        let b = vec![false; 100];
        let r = sign_test(&a, &b);
        assert_eq!(r.n_improved, 100);
        assert_eq!(r.n_degraded, 0);
        assert!((r.log10_p - (-100.0 * 2.0f64.log10())).abs() < 1e-6);
    }

    #[test]
    fn sign_test_handles_paper_scale_counts() {
        // Counts large enough that the p-value underflows f64 (the paper
        // reports 1e-22767): log10_p must stay finite.
        let mut a = vec![true; 80_000];
        let mut b = vec![false; 80_000];
        // 10k concordant pairs mixed in.
        a.extend(vec![true; 10_000]);
        b.extend(vec![true; 10_000]);
        let r = sign_test(&a, &b);
        assert_eq!(r.n_improved, 80_000);
        assert!(r.log10_p < -20_000.0, "log10 p = {}", r.log10_p);
        assert!(r.log10_p.is_finite());
        assert_eq!(r.p, 0.0); // underflow is expected and documented
    }

    #[test]
    fn sign_test_no_discordant_pairs() {
        let a = vec![true, true];
        let r = sign_test(&a, &a);
        assert_eq!(r.p, 1.0);
        assert_eq!(r.log10_p, 0.0);
    }

    #[test]
    fn sign_test_degradation_gives_large_p() {
        // A worse than B: p close to 1.
        let a = vec![false; 50];
        let b = vec![true; 50];
        let r = sign_test(&a, &b);
        assert!(r.p > 0.999);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn sign_test_length_mismatch_panics() {
        sign_test(&[true], &[true, false]);
    }
}

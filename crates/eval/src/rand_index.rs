//! Adjusted Rand index between two hard partitions.
//!
//! Not used in the paper's tables (the paper's truth is overlapping, so it
//! uses best-match F), but invaluable for this reproduction's integration
//! tests: the DSBM generator emits a complete planted partition, and ARI
//! against it is a stringent recovery check.

use std::collections::HashMap;

/// Computes the adjusted Rand index between two cluster assignments over
/// the same nodes. 1.0 = identical partitions, ~0.0 = chance agreement.
pub fn adjusted_rand_index(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions must cover the same nodes");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    // Contingency table.
    let mut table: HashMap<(u32, u32), u64> = HashMap::new();
    let mut row_sums: HashMap<u32, u64> = HashMap::new();
    let mut col_sums: HashMap<u32, u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *table.entry((x, y)).or_insert(0) += 1;
        *row_sums.entry(x).or_insert(0) += 1;
        *col_sums.entry(y).or_insert(0) += 1;
    }
    fn choose2(x: u64) -> f64 {
        (x as f64) * (x as f64 - 1.0) / 2.0
    }
    let sum_cells: f64 = table.values().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = row_sums.values().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = col_sums.values().map(|&v| choose2(v)).sum();
    let total_pairs = choose2(n as u64);
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0; // degenerate: both partitions trivial
    }
    (sum_cells - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Renaming labels does not matter.
        let b = vec![5, 5, 9, 9, 7, 7];
        assert!((adjusted_rand_index(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // Crossed partition of 4 nodes: ARI is negative or near zero.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari <= 0.01, "ari = {ari}");
    }

    #[test]
    fn partial_agreement_in_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "ari = {ari}");
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(adjusted_rand_index(&[], &[]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[3]), 1.0);
        // Both trivial single-cluster partitions.
        assert_eq!(adjusted_rand_index(&[0, 0, 0], &[1, 1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn mismatched_lengths_panic() {
        adjusted_rand_index(&[0], &[0, 1]);
    }
}

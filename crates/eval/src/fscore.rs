//! Micro-averaged best-match F-measure (§4.3 of the paper).
//!
//! Each output cluster `Cᵢ` is matched to the ground-truth category `Gⱼ`
//! maximizing `F(Cᵢ, Gⱼ)`, the harmonic mean of
//! `Prec = |Cᵢ∩Gⱼ| / |Cᵢ|` and `Rec = |Cᵢ∩Gⱼ| / |Gⱼ|`. The clustering's
//! score is the cluster-size-weighted average of the per-cluster maxima.
//! Note that unlabeled nodes count in `|Cᵢ|` (they depress precision), as
//! in the paper where 35% of Wikipedia nodes have no category.

use symclust_graph::GroundTruth;

/// Detailed result of an F-score evaluation.
#[derive(Debug, Clone)]
pub struct FScoreReport {
    /// Micro-averaged F, as a percentage in `[0, 100]` (the paper reports
    /// e.g. 36.62 for Cora).
    pub avg_f: f64,
    /// Best-match F per cluster (fraction in `[0, 1]`).
    pub per_cluster_f: Vec<f64>,
    /// Index of the best-match category per cluster (`None` when the
    /// cluster intersects no category).
    pub best_match: Vec<Option<u32>>,
    /// Number of clusters evaluated.
    pub n_clusters: usize,
}

/// Computes the micro-averaged best-match F-score of a clustering
/// (`assignments[node] = cluster id`, ids dense in `0..k`) against ground
/// truth. Returns percentages per the paper's convention.
///
/// ```
/// use symclust_eval::avg_f_score;
/// use symclust_graph::GroundTruth;
/// let truth = GroundTruth::new(4, vec![vec![0, 1], vec![2, 3]]).unwrap();
/// let perfect = avg_f_score(&[0, 0, 1, 1], &truth);
/// assert!((perfect.avg_f - 100.0).abs() < 1e-9);
/// ```
pub fn avg_f_score(assignments: &[u32], truth: &GroundTruth) -> FScoreReport {
    assert_eq!(
        assignments.len(),
        truth.n_nodes(),
        "assignment covers {} nodes but ground truth has {}",
        assignments.len(),
        truth.n_nodes()
    );
    let k = assignments
        .iter()
        .map(|&a| a as usize + 1)
        .max()
        .unwrap_or(0);
    let mut cluster_sizes = vec![0usize; k];
    for &a in assignments {
        cluster_sizes[a as usize] += 1;
    }
    let node_cats = truth.node_categories();
    let cat_sizes: Vec<usize> = truth.categories().iter().map(Vec::len).collect();

    // Overlap counting: for each cluster, accumulate per-category overlap
    // using a sparse map (clusters touch few categories).
    let mut overlaps: Vec<std::collections::HashMap<u32, usize>> =
        vec![std::collections::HashMap::new(); k];
    for (node, &a) in assignments.iter().enumerate() {
        for &cat in &node_cats[node] {
            *overlaps[a as usize].entry(cat).or_insert(0) += 1;
        }
    }

    let mut per_cluster_f = vec![0.0f64; k];
    let mut best_match = vec![None; k];
    let mut weighted_sum = 0.0f64;
    let mut total_size = 0usize;
    for c in 0..k {
        let size = cluster_sizes[c];
        total_size += size;
        let mut best_f = 0.0f64;
        let mut best_cat = None;
        for (&cat, &ov) in &overlaps[c] {
            // F = 2·ov / (|C| + |G|)  (harmonic mean of prec and rec).
            let f = 2.0 * ov as f64 / (size + cat_sizes[cat as usize]) as f64;
            if f > best_f {
                best_f = f;
                best_cat = Some(cat);
            }
        }
        per_cluster_f[c] = best_f;
        best_match[c] = best_cat;
        weighted_sum += size as f64 * best_f;
    }
    let avg_f = if total_size > 0 {
        100.0 * weighted_sum / total_size as f64
    } else {
        0.0
    };
    FScoreReport {
        avg_f,
        per_cluster_f,
        best_match,
        n_clusters: k,
    }
}

/// Per-node correctness indicator used by the paired sign test (§5.6): a
/// node counts as correctly clustered when its cluster's best-match
/// category contains it.
pub fn correctly_clustered(assignments: &[u32], truth: &GroundTruth) -> Vec<bool> {
    let report = avg_f_score(assignments, truth);
    let node_cats = truth.node_categories();
    assignments
        .iter()
        .enumerate()
        .map(|(node, &a)| match report.best_match[a as usize] {
            Some(cat) => node_cats[node].contains(&cat),
            None => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_two_cats() -> GroundTruth {
        // Categories: {0,1,2}, {3,4,5}; node 6 unlabeled.
        GroundTruth::new(7, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap()
    }

    #[test]
    fn perfect_clustering_on_labeled_nodes() {
        let truth = GroundTruth::new(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let report = avg_f_score(&[0, 0, 0, 1, 1, 1], &truth);
        assert!((report.avg_f - 100.0).abs() < 1e-9);
        assert_eq!(report.best_match, vec![Some(0), Some(1)]);
    }

    #[test]
    fn unlabeled_nodes_depress_precision() {
        let truth = truth_two_cats();
        // Node 6 (unlabeled) joins cluster 0: |C0| = 4, overlap = 3.
        let report = avg_f_score(&[0, 0, 0, 1, 1, 1, 0], &truth);
        let f0 = 2.0 * 3.0 / (4.0 + 3.0);
        let f1 = 1.0;
        let expected = 100.0 * (4.0 * f0 + 3.0 * f1) / 7.0;
        assert!((report.avg_f - expected).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_recall_dominated() {
        let truth = truth_two_cats();
        let report = avg_f_score(&[0; 7], &truth);
        // One cluster of 7, best match either category: F = 2·3/(7+3) = 0.6.
        assert!((report.per_cluster_f[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_f_matches_paper_definitions() {
        // C0 = {0,1,3}: vs G0 ov=2 → F = 2·2/(3+3) = 2/3;
        //               vs G1 ov=1 → F = 2/6 = 1/3. Best 2/3.
        // C1 = {2,4,5}: vs G0 ov=1 → 1/3; vs G1 ov=2 → 2/3.
        let truth = GroundTruth::new(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let report = avg_f_score(&[0, 0, 1, 0, 1, 1], &truth);
        assert!((report.per_cluster_f[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.per_cluster_f[1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.avg_f - 100.0 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_categories_use_best() {
        // Node 1 belongs to both categories.
        let truth = GroundTruth::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        let report = avg_f_score(&[0, 0, 1], &truth);
        // C0 = {0,1} = G0 exactly → F 1. C1 = {2}: vs G1 ov 1 → 2/(1+2).
        assert!((report.per_cluster_f[0] - 1.0).abs() < 1e-12);
        assert!((report.per_cluster_f[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_unlabeled_scores_zero() {
        let truth = GroundTruth::new(3, vec![vec![0]]).unwrap();
        let report = avg_f_score(&[0, 0, 0], &truth);
        assert!(report.avg_f > 0.0);
        // Clustering of only-unlabeled nodes:
        let truth2 = GroundTruth::new(3, vec![vec![2]]).unwrap();
        let report2 = avg_f_score(&[0, 0, 1], &truth2);
        assert_eq!(report2.best_match[0], None);
        assert_eq!(report2.per_cluster_f[0], 0.0);
    }

    #[test]
    fn correctly_clustered_flags() {
        let truth = truth_two_cats();
        let flags = correctly_clustered(&[0, 0, 0, 1, 1, 1, 0], &truth);
        // Nodes 0-5 are in clusters matching their categories; node 6 has
        // no label → incorrect by definition.
        assert_eq!(flags, vec![true, true, true, true, true, true, false]);
        // A node placed in the wrong cluster is flagged false.
        let flags = correctly_clustered(&[0, 0, 1, 0, 1, 1, 0], &truth);
        assert!(!flags[2]);
        assert!(!flags[3]);
        assert!(flags[0] && flags[4]);
    }

    #[test]
    #[should_panic(expected = "assignment covers")]
    fn mismatched_lengths_panic() {
        let truth = truth_two_cats();
        avg_f_score(&[0, 1], &truth);
    }

    #[test]
    fn more_clusters_than_needed_reduces_recall() {
        let truth = GroundTruth::new(4, vec![vec![0, 1, 2, 3]]).unwrap();
        let whole = avg_f_score(&[0, 0, 0, 0], &truth);
        let split = avg_f_score(&[0, 0, 1, 1], &truth);
        assert!(whole.avg_f > split.avg_f);
    }
}

//! Property tests for the per-row adaptive accumulators.
//!
//! The contract under test (DESIGN.md §16): the dense epoch-stamped
//! accumulator, the sorted sparse accumulator and any adaptive mix of the
//! two produce **bit-identical** output for the general Gustavson kernel
//! and the fused multi-term SYRK kernel, across thresholds, diagonal
//! dropping, crossover settings, thread counts and the budget-degraded
//! fallback — and the `rows_dense` / `rows_sparse` counters are a
//! deterministic function of the input and the crossover alone.
//!
//! Inputs come from the same hand-rolled 64-bit LCG as the other sparse
//! property tests so every run exercises byte-for-byte the same matrices.
//! The generator skews row widths heavily (hubs + near-empty rows) so the
//! adaptive path genuinely splits between strategies instead of
//! degenerating to all-dense or all-sparse.

use symclust_obs::MetricsRegistry;
use symclust_sparse::ops::transpose;
use symclust_sparse::spgemm::metric_names;
use symclust_sparse::{
    spgemm_budgeted, spgemm_observed, spgemm_syrk_sum_budgeted, spgemm_syrk_sum_observed,
    AccumStrategy, CsrMatrix, SpgemmOptions, SyrkTerm,
};

/// Minimal deterministic generator: Knuth's 64-bit LCG constants.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// Width-skewed random matrix: ~1/8 of rows are hubs keeping about half
/// of all columns, the rest keep ~1/32 — so the Σ nnz width estimate
/// lands on both sides of any reasonable crossover. Values are small
/// multiples of 0.125, some negative, so thresholds and the `v != 0.0`
/// emission filter both bite.
fn skewed_matrix(n_rows: usize, n_cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = Lcg(seed);
    let mut rows = vec![vec![0.0f64; n_cols]; n_rows];
    for row in rows.iter_mut() {
        let keep_mod = if rng.next().is_multiple_of(8) { 2 } else { 32 };
        for v in row.iter_mut() {
            let r = rng.next();
            if r.is_multiple_of(keep_mod) {
                let mag = ((r >> 32) % 8 + 1) as f64 * 0.125;
                *v = if r.is_multiple_of(3) { -mag } else { mag };
            }
        }
    }
    CsrMatrix::from_dense(&rows)
}

const SEEDS: [u64; 4] = [
    0x243F6A8885A308D3,
    0x9E3779B97F4A7C15,
    0xB7E151628AED2A6A,
    0x452821E638D01377,
];

const CROSSOVERS: [usize; 4] = [1, 16, 64, 100_000];

fn opts(accum: AccumStrategy, crossover: Option<usize>) -> SpgemmOptions {
    SpgemmOptions {
        accum,
        accum_crossover: crossover,
        ..Default::default()
    }
}

#[test]
fn general_kernel_strategies_are_bitwise_identical() {
    for &seed in &SEEDS {
        let a = skewed_matrix(72, 64, seed);
        let b = skewed_matrix(64, 56, seed ^ 0xDEADBEEF);
        let dense = spgemm_observed(&a, &b, &opts(AccumStrategy::Dense, None), None, None).unwrap();
        let sparse =
            spgemm_observed(&a, &b, &opts(AccumStrategy::Sparse, None), None, None).unwrap();
        assert_eq!(dense, sparse, "seed {seed:#x}");
        for crossover in CROSSOVERS {
            let adaptive = spgemm_observed(
                &a,
                &b,
                &opts(AccumStrategy::Adaptive, Some(crossover)),
                None,
                None,
            )
            .unwrap();
            assert_eq!(dense, adaptive, "seed {seed:#x} crossover {crossover}");
        }
    }
}

#[test]
fn threshold_and_drop_diagonal_are_strategy_independent() {
    for &seed in &SEEDS[..2] {
        let a = skewed_matrix(64, 64, seed);
        let at = transpose(&a);
        for threshold in [0.0, 0.25, 1.5] {
            for drop_diagonal in [false, true] {
                let run = |accum, crossover| {
                    let o = SpgemmOptions {
                        threshold,
                        drop_diagonal,
                        accum,
                        accum_crossover: crossover,
                        ..Default::default()
                    };
                    spgemm_observed(&a, &at, &o, None, None).unwrap()
                };
                let dense = run(AccumStrategy::Dense, None);
                assert_eq!(
                    dense,
                    run(AccumStrategy::Sparse, None),
                    "seed {seed:#x} threshold {threshold} drop {drop_diagonal}"
                );
                assert_eq!(dense, run(AccumStrategy::Adaptive, Some(16)));
            }
        }
    }
}

#[test]
fn fused_syrk_sum_strategies_are_bitwise_identical() {
    for &seed in &SEEDS {
        let x = skewed_matrix(56, 48, seed);
        let y = skewed_matrix(56, 40, seed ^ 0xA5A5A5A5);
        let (xt, yt) = (transpose(&x), transpose(&y));
        let terms = [SyrkTerm { x: &x, xt: &xt }, SyrkTerm { x: &y, xt: &yt }];
        for threshold in [0.0, 0.5] {
            let run = |accum, crossover| {
                let o = SpgemmOptions {
                    threshold,
                    drop_diagonal: true,
                    accum,
                    accum_crossover: crossover,
                    ..Default::default()
                };
                spgemm_syrk_sum_observed(&terms, &o, None, None).unwrap()
            };
            let dense = run(AccumStrategy::Dense, None);
            assert_eq!(
                dense,
                run(AccumStrategy::Sparse, None),
                "seed {seed:#x} threshold {threshold}"
            );
            for crossover in CROSSOVERS {
                assert_eq!(dense, run(AccumStrategy::Adaptive, Some(crossover)));
            }
        }
    }
}

#[test]
fn strategies_match_across_thread_counts() {
    let a = skewed_matrix(160, 160, SEEDS[0]);
    let reference = spgemm_observed(
        &a,
        &a,
        &SpgemmOptions {
            n_threads: 1,
            ..Default::default()
        },
        None,
        None,
    )
    .unwrap();
    for accum in [
        AccumStrategy::Dense,
        AccumStrategy::Sparse,
        AccumStrategy::Adaptive,
    ] {
        for n_threads in [1, 2, 4] {
            let o = SpgemmOptions {
                accum,
                accum_crossover: Some(32),
                n_threads,
                ..Default::default()
            };
            let c = spgemm_observed(&a, &a, &o, None, None).unwrap();
            assert_eq!(reference, c, "{} x {n_threads} threads", accum.name());
        }
    }
}

#[test]
fn budget_degraded_paths_are_strategy_independent() {
    let a = skewed_matrix(56, 56, SEEDS[1]);
    let at = transpose(&a);
    let budget = 200;
    let general_run = |accum| {
        let r = spgemm_budgeted(&a, &at, &opts(accum, Some(16)), budget, None, None).unwrap();
        assert!(r.degraded, "budget {budget} should force degradation");
        r.matrix
    };
    let dense = general_run(AccumStrategy::Dense);
    assert_eq!(dense, general_run(AccumStrategy::Sparse));
    assert_eq!(dense, general_run(AccumStrategy::Adaptive));

    let terms = [SyrkTerm { x: &a, xt: &at }];
    let syrk_run = |accum| {
        let r =
            spgemm_syrk_sum_budgeted(&terms, &opts(accum, Some(16)), budget, None, None).unwrap();
        assert!(r.degraded);
        r.matrix
    };
    let sdense = syrk_run(AccumStrategy::Dense);
    assert_eq!(sdense, syrk_run(AccumStrategy::Sparse));
    assert_eq!(sdense, syrk_run(AccumStrategy::Adaptive));
}

#[test]
fn row_strategy_counters_are_deterministic_and_exhaustive() {
    for &seed in &SEEDS[..2] {
        let a = skewed_matrix(96, 96, seed);
        let count = |n_threads| {
            let m = MetricsRegistry::new();
            let o = SpgemmOptions {
                accum: AccumStrategy::Adaptive,
                accum_crossover: Some(64),
                n_threads,
                ..Default::default()
            };
            spgemm_observed(&a, &a, &o, None, Some(&m)).unwrap();
            let snap = m.snapshot();
            (
                snap.counter(metric_names::ROWS_DENSE).unwrap_or(0),
                snap.counter(metric_names::ROWS_SPARSE).unwrap_or(0),
                snap.counter(metric_names::ROWS).unwrap_or(0),
            )
        };
        let (d, s, rows) = count(1);
        assert_eq!(
            d + s,
            rows,
            "seed {seed:#x}: every row must pick a strategy"
        );
        assert!(d > 0 && s > 0, "seed {seed:#x}: width skew must split rows");
        assert_eq!(
            (d, s, rows),
            count(4),
            "seed {seed:#x}: thread-dependent mix"
        );
    }
}

#[test]
fn forced_strategies_count_all_rows_on_one_side() {
    let a = skewed_matrix(48, 48, SEEDS[2]);
    for (accum, expect_dense) in [(AccumStrategy::Dense, true), (AccumStrategy::Sparse, false)] {
        let m = MetricsRegistry::new();
        spgemm_observed(&a, &a, &opts(accum, None), None, Some(&m)).unwrap();
        let snap = m.snapshot();
        let d = snap.counter(metric_names::ROWS_DENSE).unwrap_or(0);
        let s = snap.counter(metric_names::ROWS_SPARSE).unwrap_or(0);
        let rows = snap.counter(metric_names::ROWS).unwrap_or(0);
        if expect_dense {
            assert_eq!((d, s), (rows, 0));
        } else {
            assert_eq!((d, s), (0, rows));
        }
    }
}

//! Property tests for the CSR structural validators (DESIGN.md §13).
//!
//! Two directions, both seeded and shrinkable:
//!
//! * **soundness** — `validate`/`validate_graph`/`validate_symmetric`
//!   accept the outputs of every kernel that promises well-formed CSR:
//!   transpose, diagonal scaling, SpGEMM, and the mirrored SYRK kernels;
//! * **completeness** — `validate_parts` rejects seeded corruptions of
//!   otherwise-valid raw arrays (non-monotone indptr, unsorted or
//!   duplicate columns, NaN values) and names the violated invariant, and
//!   post-construction value corruption is caught by `validate()`.
//!
//! The corruption tests probe `validate_parts` on raw slices rather than
//! a corrupted `CsrMatrix`, because the unchecked constructor
//! `debug_assert`s validity — in a debug test build you cannot even hold
//! a malformed matrix, which is itself the first line of defense.

use proptest::prelude::*;
use symclust_sparse::{
    ops, spgemm, spgemm_syrk, validate_parts, CooMatrix, CsrMatrix, SpgemmOptions,
};

/// Random sparse matrix with signed values (Laplacian-like inputs).
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(r, c)| {
        proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                CooMatrix::from_triplets(r, c, triplets)
                    .expect("in-bounds triplets")
                    .to_csr()
            },
        )
    })
}

/// Random square matrix with non-negative values (graph-like inputs).
fn graph_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, 0.25f64..10.0), 1..max_nnz).prop_map(
            move |triplets| {
                CooMatrix::from_triplets(n, n, triplets)
                    .expect("in-bounds triplets")
                    .to_csr()
            },
        )
    })
}

proptest! {
    #[test]
    fn transpose_output_validates(m in sparse_matrix(30, 120)) {
        prop_assert!(ops::transpose(&m).validate().is_ok());
    }

    #[test]
    fn diag_scaled_output_validates(m in graph_matrix(25, 100), scale in 0.25f64..4.0) {
        let mut scaled = m;
        let diag = vec![scale; scaled.n_rows()];
        ops::scale_rows(&mut scaled, &diag).expect("diag length matches");
        prop_assert!(scaled.validate().is_ok());
        prop_assert!(scaled.validate_graph().is_ok());
    }

    #[test]
    fn spgemm_output_validates(a in graph_matrix(18, 70)) {
        let t = ops::transpose(&a);
        let c = spgemm(&a, &t).expect("compatible shapes");
        prop_assert!(c.validate().is_ok());
        prop_assert!(c.validate_graph().is_ok());
    }

    #[test]
    fn syrk_output_validates_as_exactly_symmetric(a in graph_matrix(18, 70)) {
        // X·Xᵀ through the upper-triangle + mirror kernel must satisfy the
        // strictest validator: structure, non-negativity (entries are sums
        // of products of non-negatives), and bitwise mirror equality.
        let c = spgemm_syrk(&a, &SpgemmOptions::default()).expect("syrk");
        prop_assert!(c.validate_symmetric().is_ok());
    }

    #[test]
    fn pruned_output_validates(m in graph_matrix(25, 100), threshold in 0.0f64..5.0) {
        let (pruned, _) = ops::prune(&m, threshold);
        prop_assert!(pruned.validate().is_ok());
    }

    #[test]
    fn validate_graph_rejects_injected_negative(m in graph_matrix(25, 100), pick in 0usize..10_000) {
        prop_assume!(m.nnz() > 0);
        let mut m = m;
        let at = pick % m.nnz();
        m.values_mut()[at] = -1.0;
        // Structure is still fine; the graph contract is not.
        prop_assert!(m.validate().is_ok());
        let err = m.validate_graph().expect_err("negative weight must be rejected");
        prop_assert!(err.to_string().contains("nonnegative"), "{err}");
    }

    #[test]
    fn validate_detects_injected_nan(m in graph_matrix(25, 100), pick in 0usize..10_000) {
        prop_assume!(m.nnz() > 0);
        let mut m = m;
        let at = pick % m.nnz();
        m.values_mut()[at] = f64::NAN;
        let err = m.validate().expect_err("NaN must be rejected");
        prop_assert!(err.to_string().contains("value"), "{err}");
    }

    #[test]
    fn validate_parts_rejects_nonmonotone_indptr(m in sparse_matrix(20, 80), pick in 0usize..10_000) {
        prop_assume!(m.n_rows() >= 2 && m.nnz() >= 1);
        let mut indptr = m.indptr().to_vec();
        // Pull one interior boundary above its successor.
        let row = 1 + pick % (m.n_rows() - 1);
        indptr[row] = indptr[row + 1] + 1;
        // Keep total length consistent so the monotonicity check is the
        // one that fires (not the cheaper length check).
        let (check, detail) =
            validate_parts(m.n_rows(), m.n_cols(), &indptr, m.indices(), m.values())
                .expect_err("corrupted indptr must be rejected");
        prop_assert!(check == "indptr", "check {check}: {detail}");
    }

    #[test]
    fn validate_parts_rejects_unsorted_or_duplicate_columns(m in sparse_matrix(20, 80), dup in any::<bool>()) {
        // Need one row with at least two entries to corrupt.
        let row = (0..m.n_rows()).find(|&r| {
            let (s, e) = (m.indptr()[r], m.indptr()[r + 1]);
            e - s >= 2
        });
        prop_assume!(row.is_some());
        let row = row.expect("checked above");
        let start = m.indptr()[row];
        let mut indices = m.indices().to_vec();
        if dup {
            indices[start + 1] = indices[start]; // duplicate
        } else {
            indices.swap(start, start + 1); // unsorted
        }
        let (check, detail) =
            validate_parts(m.n_rows(), m.n_cols(), m.indptr(), &indices, m.values())
                .expect_err("corrupted columns must be rejected");
        prop_assert!(check == "columns", "check {check}: {detail}");
    }

    #[test]
    fn validate_parts_rejects_out_of_bounds_column(m in sparse_matrix(20, 80), pick in 0usize..10_000) {
        prop_assume!(m.nnz() >= 1);
        let mut indices = m.indices().to_vec();
        let at = pick % indices.len();
        indices[at] = m.n_cols() as u32; // one past the end
        let (check, _) =
            validate_parts(m.n_rows(), m.n_cols(), m.indptr(), &indices, m.values())
                .expect_err("out-of-bounds column must be rejected");
        // Bumping a column can break sortedness before the bounds check
        // sees it; either way the corruption is caught and named.
        prop_assert!(check == "bounds" || check == "columns", "check {check}");
    }
}

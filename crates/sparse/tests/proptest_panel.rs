//! Property tests for the out-of-core 2D panel-partitioned SpGEMM path.
//!
//! The contract under test (DESIGN.md §17): for any panel size, any spill
//! byte budget and any thread count, the panel path produces output
//! **bit-identical** to the in-memory kernels — same matrix, same
//! deterministic work counters — and the `spgemm.panels` /
//! `spgemm.panel_spills` / `spgemm.spill_bytes` counters are a pure
//! function of the input, panel size and budget (never of scheduling).
//! Scratch files must be gone after every exit: success, worker panic,
//! and cancellation.
//!
//! Inputs come from the same hand-rolled 64-bit LCG as the other sparse
//! property tests so every run exercises byte-for-byte the same matrices.

use symclust_obs::MetricsRegistry;
use symclust_sparse::ops::transpose;
use symclust_sparse::spgemm::metric_names;
use symclust_sparse::{
    spgemm_observed, spgemm_syrk_sum_observed, CancelToken, CsrMatrix, PanelPlan, SparseError,
    SpgemmOptions, SyrkTerm,
};

/// Minimal deterministic generator: Knuth's 64-bit LCG constants.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// Width-skewed random matrix (hubs + near-empty rows) so tiles differ
/// wildly in size and the per-tile byte estimates land on both sides of
/// any budget under test. Values are signed multiples of 0.125 so
/// thresholds and the `v != 0.0` emission filter both bite.
fn skewed_matrix(n_rows: usize, n_cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = Lcg(seed);
    let mut rows = vec![vec![0.0f64; n_cols]; n_rows];
    for row in rows.iter_mut() {
        let keep_mod = if rng.next().is_multiple_of(8) { 2 } else { 32 };
        for v in row.iter_mut() {
            let r = rng.next();
            if r.is_multiple_of(keep_mod) {
                let mag = ((r >> 32) % 8 + 1) as f64 * 0.125;
                *v = if r.is_multiple_of(3) { -mag } else { mag };
            }
        }
    }
    CsrMatrix::from_dense(&rows)
}

const SEEDS: [u64; 3] = [0x243F6A8885A308D3, 0x9E3779B97F4A7C15, 0xB7E151628AED2A6A];

/// Panel-row sweep: single-row tiles, a prime that never divides the
/// dimensions, and a size bigger than most test matrices (one panel).
const PANEL_ROWS: [usize; 3] = [1, 7, 64];

/// Budget sweep: spill everything, spill nothing, and unset (in-memory
/// tiles but still the panel code path).
const BUDGETS: [Option<usize>; 3] = [Some(1), Some(100_000_000), None];

/// True in-memory baseline: pins the plan to disengaged so the reference
/// stays the classic kernels even when `SYMCLUST_PANEL_ROWS` is exported
/// (as the CI oom-matrix stage does).
fn baseline_opts() -> SpgemmOptions {
    SpgemmOptions {
        panel: PanelPlan::default(),
        ..Default::default()
    }
}

fn panel_opts(panel_rows: usize, budget: Option<usize>) -> SpgemmOptions {
    SpgemmOptions {
        panel: PanelPlan {
            panel_rows: Some(panel_rows),
            spill_dir: None,
            budget_bytes: budget,
        },
        ..Default::default()
    }
}

#[test]
fn general_kernel_panel_matches_in_memory_across_sizes_and_budgets() {
    for &seed in &SEEDS {
        let a = skewed_matrix(72, 64, seed);
        let b = skewed_matrix(64, 56, seed ^ 0xDEADBEEF);
        let reference = spgemm_observed(&a, &b, &baseline_opts(), None, None).unwrap();
        for panel_rows in PANEL_ROWS {
            for budget in BUDGETS {
                for n_threads in [1, 4] {
                    let mut o = panel_opts(panel_rows, budget);
                    o.n_threads = n_threads;
                    let c = spgemm_observed(&a, &b, &o, None, None).unwrap();
                    assert_eq!(
                        reference, c,
                        "seed {seed:#x} panel_rows {panel_rows} budget {budget:?} \
                         threads {n_threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn syrk_sum_panel_matches_in_memory_across_thresholds() {
    for &seed in &SEEDS[..2] {
        let x = skewed_matrix(56, 48, seed);
        let y = skewed_matrix(56, 40, seed ^ 0xA5A5A5A5);
        let (xt, yt) = (transpose(&x), transpose(&y));
        let terms = [SyrkTerm { x: &x, xt: &xt }, SyrkTerm { x: &y, xt: &yt }];
        for threshold in [0.0, 0.5] {
            for drop_diagonal in [false, true] {
                let mut base = baseline_opts();
                base.threshold = threshold;
                base.drop_diagonal = drop_diagonal;
                let reference = spgemm_syrk_sum_observed(&terms, &base, None, None).unwrap();
                for panel_rows in PANEL_ROWS {
                    for budget in [Some(1), None] {
                        let mut o = panel_opts(panel_rows, budget);
                        o.threshold = threshold;
                        o.drop_diagonal = drop_diagonal;
                        o.n_threads = 4;
                        let c = spgemm_syrk_sum_observed(&terms, &o, None, None).unwrap();
                        assert_eq!(
                            reference, c,
                            "seed {seed:#x} threshold {threshold} drop {drop_diagonal} \
                             panel_rows {panel_rows} budget {budget:?}"
                        );
                    }
                }
            }
        }
    }
}

/// The deterministic work counters (rows, flops, nnz, accumulator mix)
/// must not change when the multiply goes out of core, and the three
/// panel counters must be identical for serial and parallel runs of the
/// same configuration — the spill plan is decided before execution.
#[test]
fn work_and_panel_counters_are_scheduling_independent() {
    const WORK_KEYS: &[&str] = &[
        metric_names::ROWS,
        metric_names::FLOPS,
        metric_names::NNZ_INTERMEDIATE,
        metric_names::NNZ_FINAL,
        metric_names::THRESHOLD_DROPPED,
        metric_names::ROWS_DENSE,
        metric_names::ROWS_SPARSE,
    ];
    let a = skewed_matrix(96, 96, SEEDS[0]);
    let run = |opts: &SpgemmOptions| {
        let m = MetricsRegistry::new();
        spgemm_observed(&a, &a, opts, None, Some(&m)).unwrap();
        let snap = m.snapshot();
        let work: Vec<u64> = WORK_KEYS
            .iter()
            .map(|k| snap.counter(k).unwrap_or(0))
            .collect();
        let panel = (
            snap.counter(metric_names::PANELS).unwrap_or(0),
            snap.counter(metric_names::PANEL_SPILLS).unwrap_or(0),
            snap.counter(metric_names::SPILL_BYTES).unwrap_or(0),
        );
        (work, panel)
    };
    let (mem_work, mem_panel) = run(&baseline_opts());
    assert_eq!(mem_panel, (0, 0, 0), "in-memory run must report no tiles");
    for budget in [Some(1), None] {
        let mut serial = panel_opts(7, budget);
        serial.n_threads = 1;
        let mut parallel = panel_opts(7, budget);
        parallel.n_threads = 4;
        let (ser_work, ser_panel) = run(&serial);
        let (par_work, par_panel) = run(&parallel);
        assert_eq!(
            mem_work, ser_work,
            "budget {budget:?}: work counters changed"
        );
        assert_eq!(
            ser_work, par_work,
            "budget {budget:?}: thread-dependent work"
        );
        assert_eq!(
            ser_panel, par_panel,
            "budget {budget:?}: scheduling-dependent spill plan"
        );
        assert!(
            ser_panel.0 > 1,
            "budget {budget:?}: expected multiple tiles"
        );
        if budget == Some(1) {
            assert!(ser_panel.1 > 0, "1-byte budget must spill");
            assert_eq!(ser_panel.2 % 12, 0, "spill bytes are 12 per entry");
        } else {
            assert_eq!(
                (ser_panel.1, ser_panel.2),
                (0, 0),
                "unlimited budget must not spill"
            );
        }
    }
}

/// A unique scratch base for one test; `base` must be empty again after
/// the multiply exits, however it exits.
fn scratch_base(tag: &str) -> std::path::PathBuf {
    let base = std::env::temp_dir().join(format!(
        "symclust_proptest_panel_{}_{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).unwrap();
    base
}

fn assert_empty_and_remove(base: &std::path::Path, when: &str) {
    let leftovers: Vec<_> = std::fs::read_dir(base)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(
        leftovers.is_empty(),
        "scratch dirs leaked {when}: {leftovers:?}"
    );
    std::fs::remove_dir_all(base).ok();
}

fn spilling_opts(base: &std::path::Path, n_threads: usize) -> SpgemmOptions {
    SpgemmOptions {
        n_threads,
        panel: PanelPlan {
            panel_rows: Some(4),
            spill_dir: Some(base.to_path_buf()),
            budget_bytes: Some(1),
        },
        ..Default::default()
    }
}

#[test]
fn spill_files_are_removed_on_success() {
    let base = scratch_base("success");
    let a = skewed_matrix(64, 64, SEEDS[1]);
    for n_threads in [1, 4] {
        spgemm_observed(&a, &a, &spilling_opts(&base, n_threads), None, None).unwrap();
    }
    assert_empty_and_remove(&base, "after successful multiplies");
}

/// Cancellation cleanup for both execution shapes. The third cleanup leg
/// — a panicking tile kernel — cannot be provoked through the public API
/// (every constructor validates its input), so it is covered by the
/// `worker_panic_surfaces_and_cleans_up_scratch` unit test inside
/// `crates/sparse/src/panel.rs`, which injects the panic directly into
/// the tile runner.
#[test]
fn spill_files_are_removed_on_cancellation() {
    let base = scratch_base("cancel");
    let a = skewed_matrix(64, 64, SEEDS[2]);
    let token = CancelToken::new();
    token.cancel();
    for n_threads in [1, 4] {
        let r = spgemm_observed(&a, &a, &spilling_opts(&base, n_threads), Some(&token), None);
        assert_eq!(r, Err(SparseError::Cancelled), "{n_threads} threads");
    }
    assert_empty_and_remove(&base, "after cancelled multiplies");
}

//! Property tests for the symmetric (SYRK) kernel family and the
//! work-stealing parallel scheduler.
//!
//! Inputs come from a hand-rolled deterministic generator (a 64-bit LCG)
//! rather than `StdRng`/proptest, so every run — any machine, any thread
//! count — exercises byte-for-byte the same matrices. The generator is
//! biased towards *hub-heavy* structure (a few rows far denser than the
//! rest) because that skew is exactly what the work-stealing scheduler
//! and the upper-triangle kernel exist for.

use symclust_sparse::ops::transpose;
use symclust_sparse::{
    spgemm, spgemm_observed, spgemm_syrk_observed, spgemm_syrk_sum_observed, CsrMatrix,
    SpgemmOptions, SyrkTerm,
};

/// Minimal deterministic generator: Knuth's 64-bit LCG constants.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// Hub-heavy random matrix: a handful of rows get ~`hub_density`
/// expected fill, the rest stay sparse. Values are small positive
/// multiples of 0.125 so products are exact-ish but thresholds bite.
fn hub_matrix(n_rows: usize, n_cols: usize, seed: u64) -> CsrMatrix {
    let mut rng = Lcg(seed);
    let mut rows = vec![vec![0.0f64; n_cols]; n_rows];
    for (i, row) in rows.iter_mut().enumerate() {
        let is_hub = rng.next().is_multiple_of(10);
        // Hubs keep ~1/2 of columns, normal rows ~1/32.
        let keep_mod = if is_hub { 2 } else { 32 };
        for v in row.iter_mut() {
            let r = rng.next();
            if r.is_multiple_of(keep_mod) {
                *v = ((r >> 32) % 8 + 1) as f64 * 0.125;
            }
        }
        // Guarantee at least one very dense pseudo-hub deterministically.
        if i == 0 {
            for (j, v) in row.iter_mut().enumerate() {
                if j % 2 == 0 && *v == 0.0 {
                    *v = 0.5;
                }
            }
        }
    }
    CsrMatrix::from_dense(&rows)
}

const SEEDS: [u64; 4] = [
    0x243F6A8885A308D3,
    0x9E3779B97F4A7C15,
    0xB7E151628AED2A6A,
    0x452821E638D01377,
];

#[test]
fn syrk_equals_general_product_with_transpose() {
    for (case, &seed) in SEEDS.iter().enumerate() {
        let x = hub_matrix(80, 50, seed);
        let xt = transpose(&x);
        let general = spgemm(&x, &xt).unwrap();
        let syrk = spgemm_syrk_observed(&x, &xt, &SpgemmOptions::default(), None, None).unwrap();
        syrk.validate().unwrap();
        assert_eq!(general, syrk, "case {case}");
    }
}

#[test]
fn syrk_output_is_exactly_symmetric() {
    for &seed in &SEEDS {
        let x = hub_matrix(70, 70, seed);
        let xt = transpose(&x);
        let c = spgemm_syrk_observed(&x, &xt, &SpgemmOptions::default(), None, None).unwrap();
        assert_eq!(c, transpose(&c));
    }
}

#[test]
fn parallel_general_kernel_matches_serial_across_thread_counts() {
    for &seed in &SEEDS[..2] {
        let a = hub_matrix(200, 200, seed);
        let serial = spgemm(&a, &a).unwrap();
        for n_threads in [2, 3, 4, 8] {
            let opts = SpgemmOptions {
                n_threads,
                ..Default::default()
            };
            let parallel = spgemm_observed(&a, &a, &opts, None, None).unwrap();
            assert_eq!(serial, parallel, "seed {seed:#x} threads {n_threads}");
        }
    }
}

#[test]
fn parallel_syrk_matches_serial_across_thread_counts() {
    for &seed in &SEEDS[..2] {
        let x = hub_matrix(220, 140, seed);
        let xt = transpose(&x);
        let serial_opts = SpgemmOptions {
            n_threads: 1,
            ..Default::default()
        };
        let serial = spgemm_syrk_observed(&x, &xt, &serial_opts, None, None).unwrap();
        for n_threads in [2, 3, 4, 8] {
            let opts = SpgemmOptions {
                n_threads,
                ..Default::default()
            };
            let parallel = spgemm_syrk_observed(&x, &xt, &opts, None, None).unwrap();
            assert_eq!(serial, parallel, "seed {seed:#x} threads {n_threads}");
        }
    }
}

#[test]
fn threshold_and_drop_diagonal_match_general_kernel_on_hub_graphs() {
    for &seed in &SEEDS {
        let x = hub_matrix(64, 48, seed);
        let xt = transpose(&x);
        for threshold in [0.0, 0.5, 2.0] {
            for drop_diagonal in [false, true] {
                let opts = SpgemmOptions {
                    threshold,
                    drop_diagonal,
                    n_threads: 1,
                    ..Default::default()
                };
                let general = spgemm_observed(&x, &xt, &opts, None, None).unwrap();
                let syrk = spgemm_syrk_observed(&x, &xt, &opts, None, None).unwrap();
                assert_eq!(
                    general, syrk,
                    "seed {seed:#x} threshold {threshold} drop_diagonal {drop_diagonal}"
                );
            }
        }
    }
}

#[test]
fn fused_two_term_sum_matches_separate_products() {
    for &seed in &SEEDS[..2] {
        let x = hub_matrix(60, 40, seed);
        let y = hub_matrix(60, 35, seed ^ 0xFFFF_FFFF);
        let (xt, yt) = (transpose(&x), transpose(&y));
        let separate =
            symclust_sparse::ops::add(&spgemm(&x, &xt).unwrap(), &spgemm(&y, &yt).unwrap())
                .unwrap();
        for n_threads in [1, 4] {
            let opts = SpgemmOptions {
                n_threads,
                ..Default::default()
            };
            let fused = spgemm_syrk_sum_observed(
                &[SyrkTerm { x: &x, xt: &xt }, SyrkTerm { x: &y, xt: &yt }],
                &opts,
                None,
                None,
            )
            .unwrap();
            assert_eq!(separate, fused, "seed {seed:#x} threads {n_threads}");
        }
    }
}

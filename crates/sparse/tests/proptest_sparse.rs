//! Property-based tests for the sparse-matrix substrate.

use proptest::prelude::*;
use symclust_sparse::{ops, spgemm, spgemm_parallel, CooMatrix, CsrMatrix, SpgemmOptions};

/// Strategy: a random sparse matrix given as dimensions plus triplets.
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(r, c)| {
        proptest::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                CooMatrix::from_triplets(r, c, triplets)
                    .expect("in-bounds triplets")
                    .to_csr()
            },
        )
    })
}

fn square_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..max_dim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..max_nnz).prop_map(
            move |triplets| {
                CooMatrix::from_triplets(n, n, triplets)
                    .expect("in-bounds triplets")
                    .to_csr()
            },
        )
    })
}

fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
    let (n, k, m) = (a.n_rows(), a.n_cols(), b.n_cols());
    let da = a.to_dense();
    let db = b.to_dense();
    let mut out = vec![vec![0.0; m]; n];
    for i in 0..n {
        for l in 0..k {
            if da[i][l] != 0.0 {
                for j in 0..m {
                    out[i][j] += da[i][l] * db[l][j];
                }
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn coo_to_csr_is_well_formed(m in sparse_matrix(30, 120)) {
        prop_assert!(m.validate().is_ok());
    }

    #[test]
    fn transpose_is_involution(m in sparse_matrix(30, 120)) {
        let t = ops::transpose(&ops::transpose(&m));
        prop_assert_eq!(t, m);
    }

    #[test]
    fn transpose_preserves_entries(m in sparse_matrix(20, 80)) {
        let t = ops::transpose(&m);
        for (r, c, v) in m.iter() {
            prop_assert_eq!(t.get(c as usize, r), v);
        }
        prop_assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn spgemm_matches_dense_reference(a in square_matrix(16, 60), b in square_matrix(16, 60)) {
        // Force compatible dims by multiplying a with its own transpose when
        // shapes disagree.
        let (a, b) = if a.n_cols() == b.n_rows() { (a, b) } else {
            let t = ops::transpose(&a);
            (a, t)
        };
        let c = spgemm(&a, &b).unwrap();
        prop_assert!(c.validate().is_ok());
        let expected = dense_mul(&a, &b);
        for (i, exp_row) in expected.iter().enumerate() {
            for (j, &e) in exp_row.iter().enumerate() {
                prop_assert!((c.get(i, j) - e).abs() < 1e-9,
                    "mismatch at ({i},{j}): {} vs {}", c.get(i, j), e);
            }
        }
    }

    #[test]
    fn parallel_spgemm_matches_serial(a in square_matrix(24, 150)) {
        let b = ops::transpose(&a);
        let serial = spgemm(&a, &b).unwrap();
        let opts = SpgemmOptions { n_threads: 3, ..Default::default() };
        let parallel = spgemm_parallel(&a, &b, &opts).unwrap();
        prop_assert_eq!(serial.indptr(), parallel.indptr());
        prop_assert_eq!(serial.indices(), parallel.indices());
        for (x, y) in serial.values().iter().zip(parallel.values()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn aat_is_symmetric_psd_diag(a in square_matrix(20, 100)) {
        let t = ops::transpose(&a);
        let b = spgemm(&a, &t).unwrap();
        prop_assert!(b.is_symmetric(1e-9));
        // Diagonal of A·Aᵀ is a sum of squares.
        for i in 0..b.n_rows() {
            prop_assert!(b.get(i, i) >= -1e-12);
        }
    }

    #[test]
    fn add_is_commutative(a in square_matrix(20, 80)) {
        let b = ops::transpose(&a);
        let ab = ops::add(&a, &b).unwrap();
        let ba = ops::add(&b, &a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn prune_is_monotone_in_threshold(m in sparse_matrix(25, 120), t1 in 0.0f64..5.0, t2 in 0.0f64..5.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let (p_lo, _) = ops::prune(&m, lo);
        let (p_hi, _) = ops::prune(&m, hi);
        prop_assert!(p_hi.nnz() <= p_lo.nnz());
        // Every surviving entry passes the threshold.
        for (_, _, v) in p_hi.iter() {
            prop_assert!(v.abs() >= hi);
        }
    }

    #[test]
    fn row_normalize_rows_sum_to_one_or_zero(m in sparse_matrix(25, 120)) {
        // Use absolute values so row sums cannot cancel to zero.
        let mut abs = m.clone();
        for v in abs.values_mut() { *v = v.abs(); }
        let p = ops::row_normalize(&abs);
        for row in 0..p.n_rows() {
            let s: f64 = p.row_values(row).iter().sum();
            prop_assert!(s.abs() < 1e-12 || (s - 1.0).abs() < 1e-9, "row {row} sums to {s}");
        }
    }

    #[test]
    fn mul_vec_matches_dense(m in sparse_matrix(20, 80), x in proptest::collection::vec(-5.0f64..5.0, 1..20)) {
        // Resize x to match.
        let mut x = x;
        x.resize(m.n_cols(), 1.0);
        let y = m.mul_vec(&x).unwrap();
        let dense = m.to_dense();
        for i in 0..m.n_rows() {
            let expected: f64 = dense[i].iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert!((y[i] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn top_k_keeps_largest(m in sparse_matrix(20, 100), k in 1usize..8) {
        let t = ops::top_k_per_row(&m, k);
        prop_assert!(t.validate().is_ok());
        for row in 0..m.n_rows() {
            prop_assert!(t.row_nnz(row) <= k);
            prop_assert!(t.row_nnz(row) <= m.row_nnz(row));
            // The minimum kept magnitude >= max dropped magnitude.
            if t.row_nnz(row) < m.row_nnz(row) {
                let kept_min = t.row_values(row).iter().map(|v| v.abs()).fold(f64::MAX, f64::min);
                let kept_cols: Vec<u32> = t.row_indices(row).to_vec();
                let dropped_max = m.row_iter(row)
                    .filter(|(c, _)| !kept_cols.contains(c))
                    .map(|(_, v)| v.abs())
                    .fold(0.0f64, f64::max);
                prop_assert!(kept_min >= dropped_max - 1e-12);
            }
        }
    }
}

#![warn(missing_docs)]

//! Sparse linear-algebra substrate for the `symclust` workspace.
//!
//! This crate provides everything the symmetrization framework of
//! *"Symmetrizations for Clustering Directed Graphs"* (EDBT 2011) needs from
//! a linear-algebra library, built from scratch:
//!
//! * [`CsrMatrix`] — compressed sparse row matrices with checked invariants,
//! * [`CooMatrix`] — a triplet builder that deduplicates on conversion,
//! * Gustavson-style sparse matrix–matrix multiplication ([`spgemm`]),
//!   including a thresholded variant that prunes on the fly and a
//!   crossbeam-parallel variant scheduled by work-stealing over row blocks,
//!   with per-row adaptive accumulation ([`AccumStrategy`]): wide rows use
//!   an epoch-stamped dense scratch accumulator, narrow rows a sorted
//!   sparse gather, bit-identical either way,
//! * a symmetric SYRK kernel family ([`spgemm_syrk`]) computing `X·Xᵀ`
//!   (and fused sums of such products) upper-triangle-only with an O(nnz)
//!   mirror pass — the hot path of the Bibliometric and Degree-discounted
//!   symmetrizations,
//! * diagonal scaling, transposition, element-wise combination and pruning,
//! * [`pagerank`] — power iteration for the stationary distribution of a
//!   random walk with teleportation (used by the Random-walk symmetrization
//!   and by BestWCut),
//! * [`lanczos`] — a symmetric Lanczos eigensolver with full
//!   reorthogonalization plus an implicit-QL tridiagonal eigensolver (used by
//!   the spectral clustering baseline).
//!
//! The matrix types use `u32` column indices and `f64` values; graphs of up
//! to ~4 billion vertices are representable, far beyond what the in-memory
//! algorithms here will be asked to handle.

pub mod accum;
pub mod cancel;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod error;
pub mod lanczos;
pub mod ops;
pub mod pagerank;
pub mod panel;
mod sched;
pub mod spgemm;
mod spill;
pub mod syrk;

pub use accum::{accum_from_env, AccumStrategy, DEFAULT_ACCUM_CROSSOVER};
pub use cancel::CancelToken;
pub use coo::CooMatrix;
pub use csr::{validate_parts, CsrMatrix};
pub use error::SparseError;
pub use lanczos::{
    lanczos_smallest, lanczos_smallest_cancellable, tridiagonal_eigen, LanczosOptions,
    LanczosResult,
};
pub use pagerank::{
    pagerank, pagerank_cancellable, stationary_distribution, PageRankOptions, PageRankResult,
};
pub use panel::{PanelPlan, DEFAULT_PANEL_ROWS};
pub use spgemm::{
    spgemm, spgemm_budgeted, spgemm_cancellable, spgemm_nnz_upper_bound, spgemm_observed,
    spgemm_parallel, spgemm_thresholded, threads_from_env, BudgetedSpgemm, SpgemmOptions,
};
pub use syrk::{
    spgemm_syrk, spgemm_syrk_observed, spgemm_syrk_sum_budgeted, spgemm_syrk_sum_observed, SyrkTerm,
};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;

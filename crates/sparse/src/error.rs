//! Error type shared by all sparse-matrix operations.

use std::fmt;

/// Errors raised by sparse-matrix construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Dimensions of the left-hand operand.
        lhs: (usize, usize),
        /// Dimensions of the right-hand operand (or expected shape).
        rhs: (usize, usize),
    },
    /// The CSR structure is malformed (indptr not monotone, column index out
    /// of bounds, unsorted or duplicate columns within a row, ...).
    InvalidStructure(String),
    /// A numeric routine failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the iterative routine.
        what: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside its documented domain.
    InvalidArgument(String),
    /// The operation was cancelled (explicitly or by deadline) via a
    /// [`CancelToken`](crate::cancel::CancelToken); any partial output was
    /// discarded.
    Cancelled,
    /// A parallel kernel worker thread panicked. The panic is caught at the
    /// thread boundary and surfaced as an error (carrying the panic
    /// message) so callers — notably the engine's per-stage retry policy —
    /// can handle it like any other stage failure instead of unwinding
    /// through the whole process.
    WorkerPanic(String),
    /// A spill-file I/O operation failed while the out-of-core panel path
    /// was writing or reading intermediate partial products. The message
    /// carries the operation, the path, and the underlying OS error text
    /// (an owned `String` so the error stays `Clone + PartialEq + Eq`).
    Io(String),
    /// A matrix that was *already constructed* (and therefore passed the
    /// construction-time checks, or was built through an unchecked fast
    /// path) violates an invariant it is supposed to uphold. Raised by the
    /// [`CsrMatrix::validate`](crate::CsrMatrix::validate) family at
    /// SpGEMM/symmetrize/prune boundaries — under `debug_assertions` and
    /// the engine's `--paranoid` mode — to catch kernel bugs and memory
    /// corruption before they poison downstream clustering results.
    Corrupted {
        /// The invariant that failed: `"indptr"`, `"columns"`, `"bounds"`,
        /// `"value"`, `"nonnegative"`, or `"symmetry"`.
        check: &'static str,
        /// Where and how it failed, with row/column coordinates.
        detail: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::NoConvergence { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
            SparseError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SparseError::Cancelled => write!(f, "operation cancelled"),
            SparseError::WorkerPanic(msg) => write!(f, "kernel worker panicked: {msg}"),
            SparseError::Io(msg) => write!(f, "spill I/O error: {msg}"),
            SparseError::Corrupted { check, detail } => {
                write!(f, "corrupted matrix ({check} invariant): {detail}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = SparseError::DimensionMismatch {
            op: "spgemm",
            lhs: (3, 4),
            rhs: (5, 6),
        };
        let s = e.to_string();
        assert!(s.contains("spgemm"));
        assert!(s.contains("3x4"));
        assert!(s.contains("5x6"));

        let e = SparseError::NoConvergence {
            what: "pagerank",
            iterations: 100,
        };
        assert!(e.to_string().contains("pagerank"));
        assert!(e.to_string().contains("100"));

        let e = SparseError::InvalidStructure("bad indptr".into());
        assert!(e.to_string().contains("bad indptr"));

        let e = SparseError::InvalidArgument("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));

        let e = SparseError::Corrupted {
            check: "value",
            detail: "row 3 col 7 is NaN".into(),
        };
        let s = e.to_string();
        assert!(s.contains("corrupted"));
        assert!(s.contains("value"));
        assert!(s.contains("row 3 col 7"));

        let e = SparseError::Io("write /tmp/t0.bin: disk full".into());
        let s = e.to_string();
        assert!(s.contains("spill I/O"));
        assert!(s.contains("disk full"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&SparseError::InvalidArgument("x".into()));
    }
}

//! Coordinate-format (triplet) builder for sparse matrices.
//!
//! Graph loaders and generators push `(row, col, value)` triplets in any
//! order, possibly with duplicates; [`CooMatrix::to_csr`] sorts, merges
//! duplicates by summation, and produces a well-formed [`CsrMatrix`].

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix under construction, stored as unsorted triplets.
///
/// ```
/// use symclust_sparse::CooMatrix;
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0).unwrap();
/// coo.push(0, 1, 2.0).unwrap(); // duplicates are summed
/// assert_eq!(coo.to_csr().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `n_rows x n_cols` triplet collection.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty collection with room for `cap` triplets.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        CooMatrix {
            n_rows,
            n_cols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of pushed triplets (duplicates not yet merged).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Adds `value` at `(row, col)`. Duplicate coordinates are summed when
    /// converting to CSR.
    ///
    /// # Errors
    /// Returns [`SparseError::InvalidArgument`] when the coordinate is out of
    /// bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.n_rows || col >= self.n_cols {
            return Err(SparseError::InvalidArgument(format!(
                "triplet ({row}, {col}) out of bounds for {}x{} matrix",
                self.n_rows, self.n_cols
            )));
        }
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.values.push(value);
        Ok(())
    }

    /// Converts to CSR, sorting triplets and summing duplicates.
    ///
    /// Entries that cancel to exactly 0.0 are dropped.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then per-row sort by column: O(nnz + n_rows).
        let nnz = self.values.len();
        let mut row_counts = vec![0usize; self.n_rows + 1];
        for &r in &self.rows {
            row_counts[r as usize + 1] += 1;
        }
        let mut row_start = row_counts;
        for i in 0..self.n_rows {
            row_start[i + 1] += row_start[i];
        }
        let indptr_unmerged = row_start.clone();
        let mut cols_sorted = vec![0u32; nnz];
        let mut vals_sorted = vec![0.0f64; nnz];
        {
            let mut cursor = row_start;
            for i in 0..nnz {
                let r = self.rows[i] as usize;
                let pos = cursor[r];
                cols_sorted[pos] = self.cols[i];
                vals_sorted[pos] = self.values[i];
                cursor[r] += 1;
            }
        }
        // Sort each row's slice by column and merge duplicates.
        let mut indptr = Vec::with_capacity(self.n_rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for row in 0..self.n_rows {
            let lo = indptr_unmerged[row];
            let hi = indptr_unmerged[row + 1];
            scratch.clear();
            scratch.extend(
                cols_sorted[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals_sorted[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut sum = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == col {
                    sum += scratch[j].1;
                    j += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    values.push(sum);
                }
                i = j;
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts_unchecked(self.n_rows, self.n_cols, indptr, indices, values)
    }

    /// Builds directly from an edge/triplet iterator.
    pub fn from_triplets<I>(n_rows: usize, n_cols: usize, triplets: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut coo = CooMatrix::new(n_rows, n_cols);
        for (r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coo_converts_to_empty_csr() {
        let coo = CooMatrix::new(3, 2);
        let csr = coo.to_csr();
        assert_eq!(csr.n_rows(), 3);
        assert_eq!(csr.n_cols(), 2);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        coo.push(1, 0, -1.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
    }

    #[test]
    fn exact_cancellation_drops_entry() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0).unwrap();
        coo.push(0, 0, -2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn out_of_order_triplets_are_sorted() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(1, 2, 6.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 0, 4.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let csr = coo.to_csr();
        csr.validate().unwrap();
        assert_eq!(
            csr.to_dense(),
            vec![vec![1.0, 2.0, 0.0], vec![4.0, 0.0, 6.0]]
        );
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn from_triplets_builds_expected_matrix() {
        let coo =
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (1, 1, 2.0), (0, 0, 1.0)]).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 2.0);
        assert_eq!(csr.get(1, 1), 2.0);
    }

    #[test]
    fn with_capacity_tracks_dims() {
        let coo = CooMatrix::with_capacity(5, 7, 100);
        assert_eq!(coo.n_rows(), 5);
        assert_eq!(coo.n_cols(), 7);
        assert_eq!(coo.nnz(), 0);
    }
}

//! Small dense-vector helpers shared by the iterative solvers.

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit L2 norm; returns the original norm.
/// A zero vector is left untouched and 0.0 is returned.
pub fn normalize2(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
    n
}

/// Normalizes `x` to unit L1 norm; returns the original norm.
pub fn normalize1(x: &mut [f64]) -> f64 {
    let n = norm1(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
    n
}

/// Maximum absolute difference between two equal-length slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&[-3.0, 4.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn normalize2_returns_norm_and_unitizes() {
        let mut x = vec![3.0, 4.0];
        let n = normalize2(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize2(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn normalize1_unitizes_l1() {
        let mut x = vec![1.0, 3.0];
        let n = normalize1(&mut x);
        assert_eq!(n, 4.0);
        assert!((norm1(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, -1.0]), 3.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}

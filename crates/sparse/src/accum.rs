//! Per-row accumulator strategies for the Gustavson and SYRK kernels.
//!
//! Gustavson-style SpGEMM implementations win by switching accumulator
//! strategy *per output row*: a row whose intermediate product is wide
//! amortizes a dense scatter array, while a narrow row is cheaper to
//! gather into a small sorted list than to touch a cache-cold dense
//! vector. The paper's Σdᵢ² cost model (§3.6) already predicts per-row
//! intermediate width — the same quantity the kernels count as per-row
//! FLOPs — so the crossover decision is free: it is derived from counts
//! the row pass computes anyway, which also makes it deterministic and
//! independent of thread count.
//!
//! Two strategies, bit-identical by construction:
//!
//! * **Dense** ([`DenseAccum`]): an f64 scratch vector indexed by `u32`
//!   column ids, cleared in O(touched) — not O(n) — via an epoch-stamped
//!   touched test: each slot carries the epoch of its last write, a slot
//!   whose stamp differs from the current row's epoch reads as vacant and
//!   is initialized to `0.0` on first touch. No per-row memset, and the
//!   touched-column list is duplicate-free by construction.
//! * **Sparse** (the `emit_*_pairs` helpers): products are gathered into a
//!   `(column, value)` pair list, **stably** sorted by column, and summed
//!   per column run. Stability preserves the generation order within a
//!   column — ascending `k` (and term-major for SYRK sums) — which is the
//!   exact order the dense slot would have accumulated in, so the two
//!   strategies round identically and the output bits never depend on
//!   which one ran.
//!
//! The scale-and-accumulate inner loops are written in fixed-width chunks
//! ([`CHUNK`]): the products `aᵢₖ · bₖⱼ` for one chunk are computed into a
//! local array first (a straight-line multiply loop the autovectorizer
//! turns into packed `mulpd`s) and only then scattered or appended. No
//! `std::simd`, no intrinsics, no new dependencies — the chunking is plain
//! safe Rust shaped so the compiler can vectorize the arithmetic half of
//! the loop even though the scatter half is inherently serial.

/// Which accumulator the row kernels use per output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccumStrategy {
    /// Decide per row: dense when the estimated intermediate width
    /// reaches the crossover, sparse below it. The estimate (the row's
    /// Gustavson FLOP count) depends only on the input structure, so the
    /// mix — and the `spgemm.rows_dense` / `spgemm.rows_sparse` counters —
    /// is deterministic for a fixed input and crossover.
    #[default]
    Adaptive,
    /// Force the dense epoch-stamped accumulator for every row.
    Dense,
    /// Force sorted sparse accumulation for every row.
    Sparse,
}

impl AccumStrategy {
    /// Stable lowercase name (`adaptive` / `dense` / `sparse`).
    pub fn name(self) -> &'static str {
        match self {
            AccumStrategy::Adaptive => "adaptive",
            AccumStrategy::Dense => "dense",
            AccumStrategy::Sparse => "sparse",
        }
    }
}

impl std::str::FromStr for AccumStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "adaptive" => Ok(AccumStrategy::Adaptive),
            "dense" => Ok(AccumStrategy::Dense),
            "sparse" => Ok(AccumStrategy::Sparse),
            other => Err(format!(
                "unknown accumulator strategy '{other}' (adaptive|dense|sparse)"
            )),
        }
    }
}

/// Parses the `SYMCLUST_ACCUM` environment variable: the default
/// accumulator strategy used by [`crate::SpgemmOptions::default`]. Unset
/// or unparsable means "no preference" (adaptive). Like `SYMCLUST_THREADS`
/// this knob never changes output bytes — only which code path produces
/// them — so it must never reach cache keys.
pub fn accum_from_env() -> Option<AccumStrategy> {
    std::env::var("SYMCLUST_ACCUM").ok()?.parse().ok()
}

/// Default crossover (in estimated multiply-adds per row) between sparse
/// and dense accumulation under [`AccumStrategy::Adaptive`]. Sparse
/// accumulation pays O(e·log e) for the sort plus a pair buffer; the dense
/// scatter pays one indexed read-modify-write per product against a large
/// scratch array. The sort constant loses once a row generates a few
/// cache lines' worth of products; 64 is the conservative knee measured
/// on the bundled dsbm graphs and is overridable per call via
/// [`crate::SpgemmOptions::accum_crossover`].
pub const DEFAULT_ACCUM_CROSSOVER: usize = 64;

/// Fixed chunk width for the scale-and-accumulate inner loops. Products
/// for one chunk are computed into a `[f64; CHUNK]` before the scatter,
/// giving the autovectorizer a straight-line multiply loop (4×2 `mulpd`
/// at width 8 on SSE2, 2×4 on AVX) regardless of the scatter's serial
/// data dependences.
pub(crate) const CHUNK: usize = 8;

/// Dense f64 scratch accumulator with epoch-stamped O(touched) clears.
///
/// `stamp[j] == epoch` means slot `j` was written during the current row;
/// any other stamp value means the slot is vacant (its f64 content is
/// stale garbage from an earlier row and is overwritten with `0.0` before
/// the first add). Advancing the epoch therefore "clears" the whole
/// accumulator in O(1); only the wrap-around every `u32::MAX` rows pays an
/// O(n) stamp reset.
pub(crate) struct DenseAccum {
    vals: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl DenseAccum {
    pub(crate) fn new(n_cols: usize) -> Self {
        DenseAccum {
            vals: vec![0.0f64; n_cols],
            // Stamps start at 0 and the first epoch is 1, so every slot
            // begins vacant.
            stamp: vec![0u32; n_cols],
            epoch: 0,
        }
    }

    /// Starts a new row: one epoch bump invalidates every slot.
    pub(crate) fn begin_row(&mut self) {
        if self.epoch == u32::MAX {
            // Wrap: any stale stamp could collide with a reused epoch, so
            // pay the one O(n) reset per 2³²−1 rows.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Adds `v` into slot `j`, initializing it to `0.0` on first touch
    /// this row (the same `0.0 + v` first-add the pre-adaptive kernels
    /// performed, so rounding is unchanged). Returns whether this was the
    /// first touch, so callers can maintain a duplicate-free touched list.
    #[inline]
    pub(crate) fn add(&mut self, j: u32, v: f64) -> bool {
        let j = j as usize;
        let first = self.stamp[j] != self.epoch;
        if first {
            self.stamp[j] = self.epoch;
            self.vals[j] = 0.0;
        }
        self.vals[j] += v;
        first
    }

    /// Whether slot `j` was touched during the current row.
    #[inline]
    pub(crate) fn touched(&self, j: u32) -> bool {
        self.stamp[j as usize] == self.epoch
    }

    /// The accumulated value in slot `j` (only meaningful when
    /// [`touched`](Self::touched)).
    #[inline]
    pub(crate) fn get(&self, j: u32) -> f64 {
        self.vals[j as usize]
    }
}

/// Epoch-stamped row-scoped membership test, shared across the per-term
/// accumulators of a SYRK sum so the touched-column list stays
/// duplicate-free even when several terms hit the same column.
pub(crate) struct TouchStamp {
    stamp: Vec<u32>,
    epoch: u32,
}

impl TouchStamp {
    pub(crate) fn new(n_cols: usize) -> Self {
        TouchStamp {
            stamp: vec![0u32; n_cols],
            epoch: 0,
        }
    }

    pub(crate) fn begin_row(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Whether this is the first sighting of `j` this row (and marks it).
    #[inline]
    pub(crate) fn first(&mut self, j: u32) -> bool {
        let j = j as usize;
        let first = self.stamp[j] != self.epoch;
        if first {
            self.stamp[j] = self.epoch;
        }
        first
    }
}

/// Dense scale-and-accumulate: `acc[cols[i]] += av · vals[i]` with the
/// multiplies chunked for autovectorization. First touches are appended
/// to `touched` (duplicate-free: [`DenseAccum::add`] reports them).
#[inline]
pub(crate) fn scatter_scaled(
    acc: &mut DenseAccum,
    touched: &mut Vec<u32>,
    av: f64,
    cols: &[u32],
    vals: &[f64],
) {
    let mut prod = [0.0f64; CHUNK];
    for (cch, vch) in cols.chunks(CHUNK).zip(vals.chunks(CHUNK)) {
        for (p, v) in prod.iter_mut().zip(vch) {
            *p = av * v;
        }
        for (j, p) in cch.iter().zip(&prod) {
            if acc.add(*j, *p) {
                touched.push(*j);
            }
        }
    }
}

/// Multi-accumulator variant of [`scatter_scaled`]: membership in the
/// shared touched list is tracked by `seen` (one row-scoped stamp across
/// all terms) instead of the per-term accumulator, so a column several
/// terms touch is listed exactly once.
#[inline]
pub(crate) fn scatter_scaled_seen(
    acc: &mut DenseAccum,
    seen: &mut TouchStamp,
    touched: &mut Vec<u32>,
    av: f64,
    cols: &[u32],
    vals: &[f64],
) {
    let mut prod = [0.0f64; CHUNK];
    for (cch, vch) in cols.chunks(CHUNK).zip(vals.chunks(CHUNK)) {
        for (p, v) in prod.iter_mut().zip(vch) {
            *p = av * v;
        }
        for (j, p) in cch.iter().zip(&prod) {
            acc.add(*j, *p);
            if seen.first(*j) {
                touched.push(*j);
            }
        }
    }
}

/// Sparse scale-and-gather: appends `(cols[i], av · vals[i])` pairs in
/// generation order, multiplies chunked exactly like [`scatter_scaled`]
/// so the products are computed bit-identically on both paths.
#[inline]
pub(crate) fn gather_scaled(pairs: &mut Vec<(u32, f64)>, av: f64, cols: &[u32], vals: &[f64]) {
    let mut prod = [0.0f64; CHUNK];
    for (cch, vch) in cols.chunks(CHUNK).zip(vals.chunks(CHUNK)) {
        for (p, v) in prod.iter_mut().zip(vch) {
            *p = av * v;
        }
        for (j, p) in cch.iter().zip(&prod) {
            pairs.push((*j, *p));
        }
    }
}

/// Multi-term sparse gather for SYRK sums: like [`gather_scaled`] but each
/// pair carries the term index so the per-column reduction can reproduce
/// the dense path's one-ordered-add-per-term rounding.
#[inline]
pub(crate) fn gather_scaled_term(
    pairs: &mut Vec<(u32, u32, f64)>,
    term: u32,
    av: f64,
    cols: &[u32],
    vals: &[f64],
) {
    let mut prod = [0.0f64; CHUNK];
    for (cch, vch) in cols.chunks(CHUNK).zip(vals.chunks(CHUNK)) {
        for (p, v) in prod.iter_mut().zip(vch) {
            *p = av * v;
        }
        for (j, p) in cch.iter().zip(&prod) {
            pairs.push((*j, term, *p));
        }
    }
}

/// Reduces a gathered pair list into per-column sums, visiting columns in
/// ascending order. The sort is **stable**, so within one column the pairs
/// stay in generation order (ascending `k`) and the running sum performs
/// the identical `0.0 + p₀ + p₁ + …` sequence as the dense slot. Calls
/// `emit(col, sum)` once per distinct column and returns the distinct
/// column count.
#[inline]
pub(crate) fn reduce_pairs(pairs: &mut [(u32, f64)], mut emit: impl FnMut(u32, f64)) -> u64 {
    pairs.sort_by_key(|p| p.0);
    let mut distinct = 0u64;
    let mut i = 0usize;
    while i < pairs.len() {
        let j = pairs[i].0;
        let mut v = 0.0f64;
        while i < pairs.len() && pairs[i].0 == j {
            v += pairs[i].1;
            i += 1;
        }
        distinct += 1;
        emit(j, v);
    }
    distinct
}

/// Multi-term variant of [`reduce_pairs`]: within a column run the pairs
/// are term-major (generation was term-major and the sort is stable), so
/// each term's products are summed into a subtotal first and the
/// subtotals are added in term order — the same final ordered add across
/// per-term accumulators the dense SYRK path performs. Terms that never
/// touched a column are skipped, which only elides `+ 0.0` adds; those
/// cannot change any emitted value (a total that is ±0.0 fails the
/// `v != 0.0` emission filter, and `x + 0.0 == x` bitwise for `x ≠ 0`).
#[inline]
pub(crate) fn reduce_pairs_terms(
    pairs: &mut [(u32, u32, f64)],
    mut emit: impl FnMut(u32, f64),
) -> u64 {
    pairs.sort_by_key(|p| p.0);
    let mut distinct = 0u64;
    let mut i = 0usize;
    while i < pairs.len() {
        let j = pairs[i].0;
        let mut v = 0.0f64;
        while i < pairs.len() && pairs[i].0 == j {
            let t = pairs[i].1;
            let mut subtotal = 0.0f64;
            while i < pairs.len() && pairs[i].0 == j && pairs[i].1 == t {
                subtotal += pairs[i].2;
                i += 1;
            }
            v += subtotal;
        }
        distinct += 1;
        emit(j, v);
    }
    distinct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_parses_and_names_roundtrip() {
        for s in [
            AccumStrategy::Adaptive,
            AccumStrategy::Dense,
            AccumStrategy::Sparse,
        ] {
            assert_eq!(s.name().parse::<AccumStrategy>().unwrap(), s);
        }
        assert!("densest".parse::<AccumStrategy>().is_err());
        assert_eq!(AccumStrategy::default(), AccumStrategy::Adaptive);
    }

    #[test]
    fn dense_accum_epoch_clear_isolates_rows() {
        let mut acc = DenseAccum::new(4);
        acc.begin_row();
        assert!(acc.add(2, 1.5));
        assert!(!acc.add(2, 2.5));
        assert_eq!(acc.get(2), 4.0);
        assert!(acc.touched(2));
        assert!(!acc.touched(1));
        // Next row: slot 2 reads as vacant without any memset.
        acc.begin_row();
        assert!(!acc.touched(2));
        assert!(acc.add(2, 7.0));
        assert_eq!(acc.get(2), 7.0);
    }

    #[test]
    fn dense_accum_epoch_wrap_resets_stamps() {
        let mut acc = DenseAccum::new(2);
        acc.epoch = u32::MAX - 1;
        acc.begin_row(); // -> MAX
        acc.add(0, 1.0);
        acc.begin_row(); // wrap: stamps reset, epoch 1
        assert_eq!(acc.epoch, 1);
        assert!(!acc.touched(0));
        assert!(acc.add(0, 2.0));
        assert_eq!(acc.get(0), 2.0);
    }

    #[test]
    fn scatter_and_gather_produce_identical_sums() {
        let cols: Vec<u32> = (0..23).map(|i| i % 7).collect();
        let vals: Vec<f64> = (0..23).map(|i| 0.1 + i as f64 * 0.3).collect();
        let av = 1.7;
        let mut acc = DenseAccum::new(7);
        let mut touched = Vec::new();
        acc.begin_row();
        scatter_scaled(&mut acc, &mut touched, av, &cols, &vals);
        let mut pairs = Vec::new();
        gather_scaled(&mut pairs, av, &cols, &vals);
        let mut sparse = std::collections::BTreeMap::new();
        let distinct = reduce_pairs(&mut pairs, |j, v| {
            sparse.insert(j, v);
        });
        assert_eq!(distinct as usize, touched.len());
        for (&j, &v) in &sparse {
            assert!(acc.touched(j));
            assert_eq!(acc.get(j).to_bits(), v.to_bits(), "column {j}");
        }
    }

    #[test]
    fn reduce_pairs_terms_sums_term_major() {
        // Column 3 touched by terms 0 and 1; column 5 only by term 1.
        let mut pairs = vec![(3u32, 0u32, 1.0), (5, 1, 4.0), (3, 0, 2.0), (3, 1, 8.0)];
        let mut out = Vec::new();
        let distinct = reduce_pairs_terms(&mut pairs, |j, v| out.push((j, v)));
        assert_eq!(distinct, 2);
        assert_eq!(out, vec![(3, 11.0), (5, 4.0)]);
    }
}

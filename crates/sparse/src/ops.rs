//! Structural and element-wise operations on CSR matrices: transpose,
//! addition, diagonal scaling, pruning, normalization, diagonal edits.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// Transposes `a` in O(nnz + n) using a counting pass.
pub fn transpose(a: &CsrMatrix) -> CsrMatrix {
    let n_rows = a.n_rows();
    let n_cols = a.n_cols();
    let nnz = a.nnz();
    let mut indptr = vec![0usize; n_cols + 1];
    for &c in a.indices() {
        indptr[c as usize + 1] += 1;
    }
    for i in 0..n_cols {
        indptr[i + 1] += indptr[i];
    }
    let mut indices = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    let mut cursor = indptr.clone();
    for row in 0..n_rows {
        for (col, v) in a.row_iter(row) {
            let pos = cursor[col as usize];
            indices[pos] = row as u32;
            values[pos] = v;
            cursor[col as usize] += 1;
        }
    }
    // Row-major traversal guarantees sorted row indices within each
    // transposed row, so the output is well-formed by construction.
    CsrMatrix::from_raw_parts_unchecked(n_cols, n_rows, indptr, indices, values)
}

/// Computes `alpha * a + beta * b` for same-shaped matrices.
pub fn add_scaled(a: &CsrMatrix, alpha: f64, b: &CsrMatrix, beta: f64) -> Result<CsrMatrix> {
    if a.n_rows() != b.n_rows() || a.n_cols() != b.n_cols() {
        return Err(SparseError::DimensionMismatch {
            op: "add_scaled",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (b.n_rows(), b.n_cols()),
        });
    }
    let n_rows = a.n_rows();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values = Vec::with_capacity(a.nnz() + b.nnz());
    for row in 0..n_rows {
        let (ac, av) = (a.row_indices(row), a.row_values(row));
        let (bc, bv) = (b.row_indices(row), b.row_values(row));
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let (col, val) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                let e = (ac[i], alpha * av[i]);
                i += 1;
                e
            } else if i >= ac.len() || bc[j] < ac[i] {
                let e = (bc[j], beta * bv[j]);
                j += 1;
                e
            } else {
                let e = (ac[i], alpha * av[i] + beta * bv[j]);
                i += 1;
                j += 1;
                e
            };
            if val != 0.0 {
                indices.push(col);
                values.push(val);
            }
        }
        indptr.push(indices.len());
    }
    Ok(CsrMatrix::from_raw_parts_unchecked(
        n_rows,
        a.n_cols(),
        indptr,
        indices,
        values,
    ))
}

/// Computes `a + b`.
pub fn add(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    add_scaled(a, 1.0, b, 1.0)
}

/// Scales row `i` of the matrix by `diag[i]` in place (computes `D A`).
pub fn scale_rows(a: &mut CsrMatrix, diag: &[f64]) -> Result<()> {
    if diag.len() != a.n_rows() {
        return Err(SparseError::DimensionMismatch {
            op: "scale_rows",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (diag.len(), diag.len()),
        });
    }
    let n_rows = a.n_rows();
    let indptr = a.indptr().to_vec();
    let values = a.values_mut();
    for row in 0..n_rows {
        let d = diag[row];
        for v in &mut values[indptr[row]..indptr[row + 1]] {
            *v *= d;
        }
    }
    Ok(())
}

/// Scales column `j` of the matrix by `diag[j]` in place (computes `A D`).
pub fn scale_cols(a: &mut CsrMatrix, diag: &[f64]) -> Result<()> {
    if diag.len() != a.n_cols() {
        return Err(SparseError::DimensionMismatch {
            op: "scale_cols",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (diag.len(), diag.len()),
        });
    }
    let indices: Vec<u32> = a.indices().to_vec();
    let values = a.values_mut();
    for (v, &c) in values.iter_mut().zip(indices.iter()) {
        *v *= diag[c as usize];
    }
    Ok(())
}

/// Removes entries with `|value| < threshold`; returns the number dropped.
pub fn prune(a: &CsrMatrix, threshold: f64) -> (CsrMatrix, usize) {
    let n_rows = a.n_rows();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for row in 0..n_rows {
        for (col, v) in a.row_iter(row) {
            if v.abs() >= threshold {
                indices.push(col);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    let dropped = a.nnz() - indices.len();
    (
        CsrMatrix::from_raw_parts_unchecked(n_rows, a.n_cols(), indptr, indices, values),
        dropped,
    )
}

/// Removes diagonal entries from a square matrix.
pub fn drop_diagonal(a: &CsrMatrix) -> CsrMatrix {
    let n_rows = a.n_rows();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    for row in 0..n_rows {
        for (col, v) in a.row_iter(row) {
            if col as usize != row {
                indices.push(col);
                values.push(v);
            }
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts_unchecked(n_rows, a.n_cols(), indptr, indices, values)
}

/// Adds `value` on the diagonal of a square matrix (missing diagonal entries
/// are created). Used for the paper's `A := A + I` pre-step (§3.3).
pub fn add_diagonal(a: &CsrMatrix, value: f64) -> Result<CsrMatrix> {
    if a.n_rows() != a.n_cols() {
        return Err(SparseError::DimensionMismatch {
            op: "add_diagonal",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (a.n_cols(), a.n_rows()),
        });
    }
    let mut eye = CsrMatrix::identity(a.n_rows());
    for v in eye.values_mut() {
        *v = value;
    }
    add(a, &eye)
}

/// Normalizes each row to sum to 1, producing a row-stochastic transition
/// matrix. Rows that sum to zero (dangling nodes) are left empty; callers
/// that need dangling handling deal with it explicitly (see `pagerank`).
pub fn row_normalize(a: &CsrMatrix) -> CsrMatrix {
    let mut out = a.clone();
    let sums = a.row_sums();
    let inv: Vec<f64> = sums
        .iter()
        .map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    scale_rows(&mut out, &inv).expect("row_sums length always matches");
    // Remove rows that were zeroed (dangling rows keep structure but with
    // zero values would violate the no-explicit-zero convention); prune them.
    if sums.contains(&0.0) {
        let (pruned, _) = prune(&out, f64::MIN_POSITIVE);
        pruned
    } else {
        out
    }
}

/// Keeps at most the `k` largest-magnitude entries of each row.
///
/// Used by MCL-style pruning and by top-edge reports.
pub fn top_k_per_row(a: &CsrMatrix, k: usize) -> CsrMatrix {
    let n_rows = a.n_rows();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    for row in 0..n_rows {
        scratch.clear();
        scratch.extend(a.row_iter(row));
        if scratch.len() > k {
            scratch.sort_unstable_by(|x, y| {
                y.1.abs()
                    .partial_cmp(&x.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            scratch.truncate(k);
            scratch.sort_unstable_by_key(|&(c, _)| c);
        }
        for &(c, v) in &scratch {
            indices.push(c);
            values.push(v);
        }
        indptr.push(indices.len());
    }
    CsrMatrix::from_raw_parts_unchecked(n_rows, a.n_cols(), indptr, indices, values)
}

/// Extracts the `k` largest entries of the upper triangle of a symmetric
/// matrix as `(row, col, value)` sorted by descending value.
///
/// Backs the paper's Table 5 (top-weighted edges per symmetrization).
pub fn top_k_entries_upper(a: &CsrMatrix, k: usize) -> Vec<(usize, usize, f64)> {
    let mut heap: std::collections::BinaryHeap<
        std::cmp::Reverse<(ordered_f64::OrderedF64, usize, usize)>,
    > = std::collections::BinaryHeap::with_capacity(k + 1);
    for (r, c, v) in a.iter() {
        let c = c as usize;
        if c <= r {
            continue;
        }
        heap.push(std::cmp::Reverse((ordered_f64::OrderedF64(v), r, c)));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<(usize, usize, f64)> = heap
        .into_iter()
        .map(|std::cmp::Reverse((v, r, c))| (r, c, v.0))
        .collect();
    out.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    out
}

mod ordered_f64 {
    /// Total-order wrapper for finite f64 values used in the top-k heap.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct OrderedF64(pub f64);

    impl Eq for OrderedF64 {}

    impl PartialOrd for OrderedF64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for OrderedF64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

/// Symmetrizes structurally: returns `(a + aᵀ)` for a square matrix.
pub fn plus_transpose(a: &CsrMatrix) -> Result<CsrMatrix> {
    let t = transpose(a);
    add(a, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_dense(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![3.0, 4.0, 0.0],
        ])
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = transpose(&m);
        t.validate().unwrap();
        assert_eq!(
            t.to_dense(),
            vec![
                vec![1.0, 0.0, 3.0],
                vec![0.0, 0.0, 4.0],
                vec![2.0, 0.0, 0.0]
            ]
        );
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        assert_eq!(transpose(&transpose(&m)), m);
    }

    #[test]
    fn transpose_rectangular() {
        let m = CsrMatrix::from_dense(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = transpose(&m);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn add_matches_dense() {
        let a = sample();
        let b = transpose(&a);
        let s = add(&a, &b).unwrap();
        s.validate().unwrap();
        assert_eq!(
            s.to_dense(),
            vec![
                vec![2.0, 0.0, 5.0],
                vec![0.0, 0.0, 4.0],
                vec![5.0, 4.0, 0.0]
            ]
        );
        assert!(s.is_symmetric(0.0));
    }

    #[test]
    fn add_scaled_cancellation_drops_entries() {
        let a = sample();
        let s = add_scaled(&a, 1.0, &a, -1.0).unwrap();
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = sample();
        let b = CsrMatrix::zeros(2, 3);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn scale_rows_and_cols() {
        let mut m = sample();
        scale_rows(&mut m, &[2.0, 3.0, 0.5]).unwrap();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(2, 1), 2.0);
        scale_cols(&mut m, &[1.0, 10.0, 1.0]).unwrap();
        assert_eq!(m.get(2, 1), 20.0);
        assert!(scale_rows(&mut m, &[1.0]).is_err());
        assert!(scale_cols(&mut m, &[1.0]).is_err());
    }

    #[test]
    fn prune_drops_small_entries() {
        let m = sample();
        let (p, dropped) = prune(&m, 2.5);
        assert_eq!(dropped, 2);
        assert_eq!(p.nnz(), 2);
        assert_eq!(p.get(2, 0), 3.0);
        assert_eq!(p.get(2, 1), 4.0);
        assert_eq!(p.get(0, 0), 0.0);
    }

    #[test]
    fn prune_zero_threshold_keeps_all() {
        let m = sample();
        let (p, dropped) = prune(&m, 0.0);
        assert_eq!(dropped, 0);
        assert_eq!(p, m);
    }

    #[test]
    fn drop_and_add_diagonal() {
        let m = CsrMatrix::from_dense(&[vec![5.0, 1.0], vec![0.0, 7.0]]);
        let d = drop_diagonal(&m);
        assert_eq!(d.nnz(), 1);
        assert_eq!(d.get(0, 1), 1.0);
        let e = add_diagonal(&d, 1.0).unwrap();
        assert_eq!(e.get(0, 0), 1.0);
        assert_eq!(e.get(1, 1), 1.0);
        assert_eq!(e.get(0, 1), 1.0);
        assert!(add_diagonal(&CsrMatrix::zeros(2, 3), 1.0).is_err());
    }

    #[test]
    fn row_normalize_makes_stochastic() {
        let m = sample();
        let p = row_normalize(&m);
        let sums = p.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert_eq!(sums[1], 0.0); // dangling row stays empty
        assert!((sums[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_per_row_keeps_largest() {
        let m = CsrMatrix::from_dense(&[vec![1.0, 5.0, 3.0, 2.0]]);
        let t = top_k_per_row(&m, 2);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(0, 1), 5.0);
        assert_eq!(t.get(0, 2), 3.0);
        // k larger than row nnz keeps everything
        let t = top_k_per_row(&m, 10);
        assert_eq!(t, m);
    }

    #[test]
    fn top_k_entries_upper_sorted_descending() {
        let m = CsrMatrix::from_dense(&[
            vec![0.0, 9.0, 1.0],
            vec![9.0, 0.0, 4.0],
            vec![1.0, 4.0, 0.0],
        ]);
        let top = top_k_entries_upper(&m, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], (0, 1, 9.0));
        assert_eq!(top[1], (1, 2, 4.0));
    }

    #[test]
    fn plus_transpose_symmetric() {
        let m = sample();
        let s = plus_transpose(&m).unwrap();
        assert!(s.is_symmetric(0.0));
        // bidirectional pair sums weights
        let m2 = CsrMatrix::from_dense(&[vec![0.0, 2.0], vec![3.0, 0.0]]);
        let s2 = plus_transpose(&m2).unwrap();
        assert_eq!(s2.get(0, 1), 5.0);
        assert_eq!(s2.get(1, 0), 5.0);
    }
}

//! Work-stealing row-block scheduler for the parallel SpGEMM kernels.
//!
//! The previous parallel kernels partitioned output rows up front by a
//! FLOP estimate. On the power-law degree distributions the paper targets
//! (§3.5) that static split degrades badly: one hub-heavy chunk can cost
//! orders of magnitude more than its estimate, leaving every other worker
//! idle. This module replaces it with dynamic scheduling:
//!
//! * output rows are grouped into fixed-size **blocks**;
//! * each worker owns a contiguous range of blocks, packed as `(lo, hi)`
//!   into one `AtomicU64` per worker;
//! * an owner pops blocks from the *front* of its range; a worker that
//!   drains its own range **steals** from the *back* of a victim's range
//!   (classic work-stealing deque ends, so owner and thief rarely contend
//!   on the same block);
//! * both pop and steal are single-CAS operations on the packed word.
//!   Ranges only ever shrink, so there is no ABA hazard.
//!
//! Scheduling order is nondeterministic, but blocks are tagged with their
//! index and assembled in block order afterwards, so kernel *output* (and
//! every per-row work counter) is bit-identical for any thread count. The
//! only scheduling-dependent observable is the steal count, exported as
//! the `spgemm.sched_steals` metric and deliberately excluded from the
//! bench gate's exact-match keys.

use std::sync::atomic::{AtomicU64, Ordering};

/// Rows per scheduling block. Small enough that a single hub block cannot
/// serialize the tail of a run, large enough that the CAS traffic per row
/// is negligible.
pub(crate) const DEFAULT_BLOCK_ROWS: usize = 64;

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// One packed `[lo, hi)` block range per worker.
pub(crate) struct BlockQueues {
    ranges: Vec<AtomicU64>,
}

impl BlockQueues {
    /// Splits `n_blocks` into `n_workers` contiguous ranges (first blocks
    /// go to worker 0, matching the deterministic assembly order).
    pub(crate) fn new(n_blocks: usize, n_workers: usize) -> Self {
        assert!(n_workers > 0);
        assert!(n_blocks < u32::MAX as usize, "block count overflows u32");
        let per = n_blocks / n_workers;
        let extra = n_blocks % n_workers;
        let mut ranges = Vec::with_capacity(n_workers);
        let mut lo = 0usize;
        for w in 0..n_workers {
            let len = per + usize::from(w < extra);
            ranges.push(AtomicU64::new(pack(lo as u32, (lo + len) as u32)));
            lo += len;
        }
        BlockQueues { ranges }
    }

    /// Pops the next block from the front of worker `w`'s own range.
    pub(crate) fn pop_own(&self, w: usize) -> Option<usize> {
        let slot = &self.ranges[w];
        let mut cur = slot.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match slot.compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Steals one block from the back of another worker's range. Victims
    /// are scanned in a deterministic order starting after `w`; returns
    /// `None` only when every range is empty.
    pub(crate) fn steal(&self, w: usize) -> Option<usize> {
        let n = self.ranges.len();
        for offset in 1..n {
            let victim = (w + offset) % n;
            let slot = &self.ranges[victim];
            let mut cur = slot.load(Ordering::Acquire);
            loop {
                let (lo, hi) = unpack(cur);
                if lo >= hi {
                    break;
                }
                match slot.compare_exchange_weak(
                    cur,
                    pack(lo, hi - 1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some((hi - 1) as usize),
                    Err(seen) => cur = seen,
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn serial_drain_yields_every_block_once() {
        let q = BlockQueues::new(10, 3);
        let mut seen = Vec::new();
        for w in 0..3 {
            while let Some(b) = q.pop_own(w) {
                seen.push(b);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(q.steal(0), None);
    }

    #[test]
    fn stealing_takes_from_victim_tail() {
        let q = BlockQueues::new(8, 2); // worker 0: [0,4), worker 1: [4,8)
        assert_eq!(q.pop_own(0), Some(0));
        // Worker 0 exhausted its range artificially: steal from worker 1.
        for _ in 0..3 {
            q.pop_own(0);
        }
        assert_eq!(q.pop_own(0), None);
        assert_eq!(q.steal(0), Some(7));
        assert_eq!(q.steal(0), Some(6));
        assert_eq!(q.pop_own(1), Some(4));
        assert_eq!(q.pop_own(1), Some(5));
        assert_eq!(q.pop_own(1), None);
        assert_eq!(q.steal(1), None);
    }

    #[test]
    fn concurrent_drain_is_exactly_once() {
        let n_blocks = 503; // prime, so ranges are uneven
        let n_workers = 4;
        let q = BlockQueues::new(n_blocks, n_workers);
        let claimed = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for w in 0..n_workers {
                let q = &q;
                let claimed = &claimed;
                scope.spawn(move |_| {
                    let mut mine = Vec::new();
                    while let Some(b) = q.pop_own(w).or_else(|| q.steal(w)) {
                        mine.push(b);
                    }
                    claimed.lock().unwrap().extend(mine);
                });
            }
        })
        .unwrap();
        let got = claimed.into_inner().unwrap();
        assert_eq!(got.len(), n_blocks);
        let distinct: HashSet<usize> = got.iter().copied().collect();
        assert_eq!(distinct.len(), n_blocks, "a block was claimed twice");
    }

    #[test]
    fn zero_blocks_is_empty_everywhere() {
        let q = BlockQueues::new(0, 2);
        assert_eq!(q.pop_own(0), None);
        assert_eq!(q.pop_own(1), None);
        assert_eq!(q.steal(0), None);
    }
}

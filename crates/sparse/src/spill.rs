//! Mediated scratch-file I/O for the out-of-core panel SpGEMM path.
//!
//! This is the *only* module in the sparse crate allowed to touch the
//! filesystem (enforced by the `sparse-spillfs` lint in `crates/check`).
//! Kernels never open files themselves: the panel runner decides — from the
//! deterministic spill plan — which tiles go to disk and calls into this
//! module to write and read them.
//!
//! ## On-disk tile format
//!
//! One file per spilled tile, named `t{tile}.bin` inside a per-multiply
//! scratch directory. Row lengths are kept *in memory* (they are tiny —
//! one `u32` per panel row), so the file holds only the payload, row-major:
//! for each row of the tile, `len` little-endian `u32` column indices
//! followed by `len` little-endian `f64` bit patterns. Exactly
//! `12 × nnz(tile)` bytes — this is also the byte count reported by the
//! `spgemm.spill_bytes` counter. Values round-trip through `f64::to_bits`
//! so the merge is bit-identical to the in-memory path.

use std::fs;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::SparseError;
use crate::Result;

/// Monotone sequence number distinguishing concurrent spill directories
/// created by the same process (e.g. parallel tests).
static SPILL_DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SparseError {
    SparseError::Io(format!("{what} {}: {e}", path.display()))
}

/// RAII scratch directory for one out-of-core multiply.
///
/// Created under the plan's spill dir (or the OS temp dir) with a
/// process-unique name; removed — including any tile files inside — when
/// dropped. Because the panel entry points own the `SpillDir` on their
/// stack, cleanup runs on success, on error returns (cancellation, I/O
/// failure), and on unwind (a panicking serial kernel), and the parallel
/// runner's `catch_unwind` converts worker panics into error returns that
/// drop it too.
#[derive(Debug)]
pub(crate) struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh scratch directory under `base` (or the OS temp dir).
    pub(crate) fn create(base: Option<&Path>) -> Result<SpillDir> {
        let parent = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let name = format!(
            "symclust_spill_{}_{}",
            std::process::id(),
            SPILL_DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = parent.join(name);
        fs::create_dir_all(&path).map_err(|e| io_err("create spill dir", &path, e))?;
        Ok(SpillDir { path })
    }

    /// Path of the scratch file for tile index `tile`.
    pub(crate) fn tile_path(&self, tile: usize) -> PathBuf {
        self.path.join(format!("t{tile}.bin"))
    }

    /// The scratch directory itself (used by cleanup tests).
    #[cfg(test)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a failed cleanup must not turn a successful multiply
        // (or an in-flight panic) into an abort.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Write one tile's partial products to `path`; returns the byte count
/// (always `12 × nnz` for the `u32`+`f64` row-major layout).
pub(crate) fn write_tile(
    path: &Path,
    row_lens: &[u32],
    indices: &[u32],
    values: &[f64],
) -> Result<u64> {
    debug_assert_eq!(indices.len(), values.len());
    debug_assert_eq!(
        row_lens.iter().map(|&l| l as usize).sum::<usize>(),
        indices.len()
    );
    let file = fs::File::create(path).map_err(|e| io_err("create spill file", path, e))?;
    let mut w = BufWriter::new(file);
    let mut at = 0usize;
    for &len in row_lens {
        let len = len as usize;
        for &j in &indices[at..at + len] {
            w.write_all(&j.to_le_bytes())
                .map_err(|e| io_err("write spill file", path, e))?;
        }
        for &v in &values[at..at + len] {
            w.write_all(&v.to_bits().to_le_bytes())
                .map_err(|e| io_err("write spill file", path, e))?;
        }
        at += len;
    }
    w.flush().map_err(|e| io_err("flush spill file", path, e))?;
    Ok(indices.len() as u64 * 12)
}

/// Sequential reader over one spilled tile, consumed row by row in the same
/// order `write_tile` produced.
#[derive(Debug)]
pub(crate) struct TileReader {
    reader: BufReader<fs::File>,
    path: PathBuf,
}

impl TileReader {
    /// Open the tile file at `path` for sequential reading.
    pub(crate) fn open(path: &Path) -> Result<TileReader> {
        let file = fs::File::open(path).map_err(|e| io_err("open spill file", path, e))?;
        Ok(TileReader {
            reader: BufReader::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Read the next row (of known length `len`), appending its column
    /// indices and values to the output buffers.
    pub(crate) fn read_row(
        &mut self,
        len: usize,
        indices: &mut Vec<u32>,
        values: &mut Vec<f64>,
    ) -> Result<()> {
        let mut buf4 = [0u8; 4];
        for _ in 0..len {
            self.reader
                .read_exact(&mut buf4)
                .map_err(|e| io_err("read spill file", &self.path, e))?;
            indices.push(u32::from_le_bytes(buf4));
        }
        let mut buf8 = [0u8; 8];
        for _ in 0..len {
            self.reader
                .read_exact(&mut buf8)
                .map_err(|e| io_err("read spill file", &self.path, e))?;
            values.push(f64::from_bits(u64::from_le_bytes(buf8)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_round_trips_bit_exactly() {
        let dir = SpillDir::create(None).unwrap();
        let path = dir.tile_path(3);
        let row_lens = [2u32, 0, 3];
        let indices = [5u32, 9, 1, 2, 7];
        let values = [1.5, -0.0, f64::MIN_POSITIVE, 3.25, -7.0];
        let bytes = write_tile(&path, &row_lens, &indices, &values).unwrap();
        assert_eq!(bytes, 12 * 5);

        let mut r = TileReader::open(&path).unwrap();
        let mut got_i = Vec::new();
        let mut got_v = Vec::new();
        for &len in &row_lens {
            r.read_row(len as usize, &mut got_i, &mut got_v).unwrap();
        }
        assert_eq!(got_i, indices);
        // Compare bit patterns: -0.0 must stay -0.0.
        let bits: Vec<u64> = got_v.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let kept;
        {
            let dir = SpillDir::create(None).unwrap();
            kept = dir.path().to_path_buf();
            write_tile(&dir.tile_path(0), &[1], &[0], &[1.0]).unwrap();
            assert!(kept.exists());
        }
        assert!(!kept.exists());
    }

    #[test]
    fn spill_dirs_are_unique_per_call() {
        let a = SpillDir::create(None).unwrap();
        let b = SpillDir::create(None).unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn missing_file_maps_to_io_error() {
        let dir = SpillDir::create(None).unwrap();
        let err = TileReader::open(&dir.tile_path(99)).unwrap_err();
        assert!(matches!(err, SparseError::Io(_)), "{err:?}");
        assert!(err.to_string().contains("t99.bin"));
    }
}

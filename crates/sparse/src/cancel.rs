//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that computations poll at
//! natural checkpoints (SpGEMM rows, power-iteration steps, R-MCL
//! iterations). Cancellation has two sources that both trip the same flag:
//! an explicit [`CancelToken::cancel`] call from another thread, and an
//! optional deadline fixed at construction. Once tripped a token never
//! resets, so every worker sharing it winds down.
//!
//! Polling cost: a relaxed atomic load. Deadline expiry additionally costs
//! an `Instant::now()` once every [`DEADLINE_POLL_STRIDE`] polls, keeping
//! per-row overhead negligible next to the arithmetic it guards.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::SparseError;

/// How many polls elapse between deadline clock reads.
pub const DEADLINE_POLL_STRIDE: u32 = 64;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    polls: AtomicU32,
}

/// Shared cancellation handle. Clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                polls: AtomicU32::new(0),
            }),
        }
    }

    /// A token that additionally trips once `timeout` has elapsed.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                polls: AtomicU32::new(0),
            }),
        }
    }

    /// Requests cancellation; irrevocable.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            let poll = self.inner.polls.fetch_add(1, Ordering::Relaxed);
            if poll.is_multiple_of(DEADLINE_POLL_STRIDE) && Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Poll point for kernels: `Err(SparseError::Cancelled)` once tripped.
    #[inline]
    pub fn checkpoint(&self) -> crate::Result<()> {
        if self.is_cancelled() {
            Err(SparseError::Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.checkpoint().is_ok());
    }

    #[test]
    fn cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.checkpoint(), Err(SparseError::Cancelled));
    }

    #[test]
    fn deadline_trips_after_timeout() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        // First poll reads the clock (poll counter starts at 0).
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_in_the_future_stays_live() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        for _ in 0..1000 {
            assert!(!t.is_cancelled());
        }
    }

    #[test]
    fn cancel_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            while !c.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        t.cancel();
        assert!(h.join().unwrap());
    }
}

//! Symmetric SpGEMM (sparse SYRK): `C = X·Xᵀ` and sums of such products.
//!
//! The paper's two expensive symmetrizations are both sums of `X·Xᵀ`-shaped
//! products — Bibliometric `AAᵀ + AᵀA` (§3.3) and Degree-discounted
//! `Ud = Bd + Cd` (Eq. 8), already computed factored as `X·Xᵀ`. Such a
//! product is symmetric by construction, so the general Gustavson kernel
//! does every multiply-add twice: once for `C(i,j)` and once for the
//! identical `C(j,i)`.
//!
//! This module computes the **upper triangle only**: row `i` accumulates
//! only columns `j ≥ i`, found by a binary search (`partition_point`) on
//! the sorted column indices of the transpose's rows, then mirrors the
//! strict upper entries into the lower triangle in one O(nnz) pass —
//! roughly halving multiply-adds and accumulator traffic.
//!
//! Why the mirror is exact and not an approximation:
//! `C(j,i) = Σₖ X(j,k)·Xᵀ(k,i)` and `C(i,j) = Σₖ X(i,k)·Xᵀ(k,j)`. When
//! `Xᵀ` is the bitwise transpose of `X`, the two sums are the same
//! sequence of products (by commutativity of each f64 multiply) added in
//! the same ascending-`k` order, hence bit-identical. Mirroring therefore
//! reproduces exactly what the general kernel would have computed for the
//! lower triangle.
//!
//! The multi-term sum variant fuses `Σₜ Xₜ·Xₜᵀ` into a single pass with
//! one accumulator *per term*: each term's partial sums accumulate in
//! ascending-`k` order and the per-entry total is formed by one final
//! ordered add — the same rounding sequence as computing each product
//! separately and adding the results with [`crate::ops::add`], so fusing
//! changes no bits. Thresholding and `drop_diagonal` apply to the fused
//! sum during emission, which is what lets `Bibliometric` and
//! `DegreeDiscounted` skip materializing the two full intermediate
//! products entirely.
//!
//! Like the general kernel, each output row picks its accumulator
//! adaptively (see [`crate::accum`]): wide rows scatter into per-term
//! epoch-stamped dense accumulators with a shared duplicate-free touched
//! list; narrow rows gather `(column, term, product)` triples and reduce
//! them with a stable sort that reproduces the dense path's term-ordered
//! rounding bit for bit. The width estimate is the row's full Σₜ Σₖ
//! nnz(Xₜᵀ row k) product count — a deterministic function of the input
//! structure alone, so the strategy mix never depends on thread count.
//!
//! Parallelism, cancellation, budget degradation and observability all
//! ride on the shared row-runner in [`crate::spgemm`]: work-stealing row
//! blocks with deterministic assembly, per-row cancellation checkpoints,
//! adaptive-threshold degraded fallback, and the `spgemm.*` counters plus
//! the SYRK-specific `spgemm.syrk_calls` / `spgemm.syrk_mirrored_nnz`.

use crate::accum::{
    gather_scaled_term, reduce_pairs_terms, scatter_scaled_seen, DenseAccum, TouchStamp,
};
use crate::cancel::CancelToken;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::ops::transpose;
use crate::spgemm::{
    compact_thresholded, emits, metric_names, raised_threshold, run_rows, spgemm_flops,
    BudgetedSpgemm, RowKernelOutput, SpgemmCounts, SpgemmOptions,
};
use crate::Result;
use symclust_obs::MetricsRegistry;

/// One `X·Xᵀ` term of a symmetric product sum.
///
/// `xt` must be the transpose of `x` — callers that already hold both
/// factors (the symmetrizers do) pass them directly; [`spgemm_syrk`]
/// computes the transpose itself. Only dimensions are validated: passing
/// an `xt` that is not bitwise `transpose(x)` silently computes
/// `upper(X·Y)` mirrored, which is not `X·Y`.
#[derive(Debug, Clone, Copy)]
pub struct SyrkTerm<'a> {
    /// Left factor (`n × k`).
    pub x: &'a CsrMatrix,
    /// Transpose of the left factor (`k × n`).
    pub xt: &'a CsrMatrix,
}

fn check_terms(terms: &[SyrkTerm<'_>]) -> Result<usize> {
    let Some(first) = terms.first() else {
        return Err(SparseError::InvalidArgument(
            "spgemm_syrk needs at least one term".into(),
        ));
    };
    let n = first.x.n_rows();
    for term in terms {
        if term.x.n_rows() != n || term.xt.n_cols() != n || term.x.n_cols() != term.xt.n_rows() {
            return Err(SparseError::DimensionMismatch {
                op: "spgemm_syrk",
                lhs: (term.x.n_rows(), term.x.n_cols()),
                rhs: (term.xt.n_rows(), term.xt.n_cols()),
            });
        }
    }
    Ok(n)
}

/// Per-worker scratch: one epoch-stamped dense accumulator per term, a
/// shared duplicate-free touched-column list, and the triple buffer used
/// by sparse rows.
pub(crate) struct SyrkScratch {
    pub(crate) accs: Vec<DenseAccum>,
    pub(crate) seen: TouchStamp,
    pub(crate) touched: Vec<u32>,
    pub(crate) pairs: Vec<(u32, u32, f64)>,
}

impl SyrkScratch {
    pub(crate) fn new(n: usize, n_terms: usize) -> Self {
        SyrkScratch {
            accs: (0..n_terms).map(|_| DenseAccum::new(n)).collect(),
            seen: TouchStamp::new(n),
            touched: Vec::new(),
            pairs: Vec::new(),
        }
    }
}

/// Accumulates row `row` of `Σₜ Xₜ·Xₜᵀ`, upper triangle only, and emits
/// the surviving entries in ascending column order.
fn syrk_row(
    terms: &[SyrkTerm<'_>],
    row: usize,
    scratch: &mut SyrkScratch,
    opts: &SpgemmOptions,
    indices: &mut Vec<u32>,
    values: &mut Vec<f64>,
    counts: &mut SpgemmCounts,
) {
    let emitted_before = indices.len();
    // Width estimate for the strategy choice: the row's *full* product
    // count across terms, a structure-only upper bound on the
    // upper-triangle work below. Depends on the input and nothing else,
    // so the dense/sparse mix is deterministic and thread-independent.
    // The flops counter keeps its exact post-`partition_point` count.
    let estimated_width: usize = terms
        .iter()
        .map(|term| {
            term.x
                .row_indices(row)
                .iter()
                .map(|&k| term.xt.row_nnz(k as usize))
                .sum::<usize>()
        })
        .sum();
    let SyrkScratch {
        accs,
        seen,
        touched,
        pairs,
    } = scratch;
    let distinct = if opts.row_is_dense(estimated_width) {
        counts.rows_dense += 1;
        seen.begin_row();
        touched.clear();
        for (term, acc) in terms.iter().zip(accs.iter_mut()) {
            acc.begin_row();
            for (k, xv) in term.x.row_iter(row) {
                let cols = term.xt.row_indices(k as usize);
                let vals = term.xt.row_values(k as usize);
                // Columns are sorted: everything from `start` on is j >= row.
                let start = cols.partition_point(|&j| (j as usize) < row);
                counts.flops += (cols.len() - start) as u64;
                scatter_scaled_seen(acc, seen, touched, xv, &cols[start..], &vals[start..]);
            }
        }
        // Emit in ascending column order so block-ordered assembly and
        // the mirror pass see sorted rows regardless of strategy.
        touched.sort_unstable();
        for &j in touched.iter() {
            // One final ordered add across terms: the same rounding as
            // computing each product separately and ops::add-ing them.
            // Terms that never touched `j` are skipped, eliding only
            // `+ 0.0` adds that cannot change an emitted bit (see
            // [`crate::accum::reduce_pairs_terms`]).
            let mut v = 0.0f64;
            for acc in accs.iter() {
                if acc.touched(j) {
                    v += acc.get(j);
                }
            }
            if emits(v, j, row, opts) {
                indices.push(j);
                values.push(v);
            }
        }
        touched.len() as u64
    } else {
        counts.rows_sparse += 1;
        pairs.clear();
        for (t, term) in terms.iter().enumerate() {
            for (k, xv) in term.x.row_iter(row) {
                let cols = term.xt.row_indices(k as usize);
                let vals = term.xt.row_values(k as usize);
                let start = cols.partition_point(|&j| (j as usize) < row);
                counts.flops += (cols.len() - start) as u64;
                gather_scaled_term(pairs, t as u32, xv, &cols[start..], &vals[start..]);
            }
        }
        reduce_pairs_terms(pairs, |j, v| {
            if emits(v, j, row, opts) {
                indices.push(j);
                values.push(v);
            }
        })
    };
    counts.rows += 1;
    counts.touched += distinct;
    counts.emitted += (indices.len() - emitted_before) as u64;
}

/// Mirrors an upper-triangular CSR (every stored column `j ≥` its row)
/// into the full symmetric matrix in one O(nnz) pass. Returns the full
/// CSR triple plus the number of lower-triangle entries materialized.
pub(crate) fn mirror_upper(
    n: usize,
    upper_indptr: &[usize],
    upper_indices: &[u32],
    upper_values: &[f64],
) -> (Vec<usize>, Vec<u32>, Vec<f64>, u64) {
    // Count pass: row i gets its own upper entries plus one mirrored
    // entry for every strict-upper (i', i) with i' < i.
    let mut full_len = vec![0usize; n];
    for i in 0..n {
        full_len[i] += upper_indptr[i + 1] - upper_indptr[i];
        for &j in &upper_indices[upper_indptr[i]..upper_indptr[i + 1]] {
            if j as usize > i {
                full_len[j as usize] += 1;
            }
        }
    }
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    for len in &full_len {
        indptr.push(indptr.last().unwrap() + len);
    }
    let total = *indptr.last().unwrap();
    let mirrored = (total - upper_indices.len()) as u64;
    let mut indices = vec![0u32; total];
    let mut values = vec![0.0f64; total];
    let mut cursor: Vec<usize> = indptr[..n].to_vec();
    // Fill pass, ascending rows. When row i is reached, its lower
    // entries (columns < i) have already been scattered by earlier rows
    // in ascending column order; its own upper entries (columns ≥ i)
    // follow, so each row ends up sorted without any per-row sort.
    for i in 0..n {
        let lo = upper_indptr[i];
        let hi = upper_indptr[i + 1];
        let own = hi - lo;
        let at = cursor[i];
        indices[at..at + own].copy_from_slice(&upper_indices[lo..hi]);
        values[at..at + own].copy_from_slice(&upper_values[lo..hi]);
        cursor[i] += own;
        for (&j, &v) in upper_indices[lo..hi].iter().zip(&upper_values[lo..hi]) {
            let j = j as usize;
            if j > i {
                indices[cursor[j]] = i as u32;
                values[cursor[j]] = v;
                cursor[j] += 1;
            }
        }
    }
    (indptr, indices, values, mirrored)
}

pub(crate) fn flush_syrk(out: &RowKernelOutput, mirrored: u64, metrics: Option<&MetricsRegistry>) {
    out.counts.flush(metrics);
    out.flush_steals(metrics);
    if let Some(m) = metrics {
        m.counter(metric_names::SYRK_CALLS).inc();
        m.counter(metric_names::SYRK_MIRRORED_NNZ).add(mirrored);
    }
}

/// Symmetric SpGEMM: `C = X·Xᵀ`, computing the transpose internally.
pub fn spgemm_syrk(x: &CsrMatrix, opts: &SpgemmOptions) -> Result<CsrMatrix> {
    let xt = transpose(x);
    spgemm_syrk_observed(x, &xt, opts, None, None)
}

/// Symmetric SpGEMM with a caller-supplied transpose, optional
/// cancellation and optional metrics.
pub fn spgemm_syrk_observed(
    x: &CsrMatrix,
    xt: &CsrMatrix,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<CsrMatrix> {
    spgemm_syrk_sum_observed(&[SyrkTerm { x, xt }], opts, token, metrics)
}

/// Fused symmetric product sum: `C = Σₜ Xₜ·Xₜᵀ` in one upper-triangle
/// pass with per-term accumulators, thresholding the *sum* during
/// emission (see the module docs for the bit-exactness argument).
pub fn spgemm_syrk_sum_observed(
    terms: &[SyrkTerm<'_>],
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<CsrMatrix> {
    let n = check_terms(terms)?;
    if opts.panel.engaged() {
        return crate::panel::spgemm_syrk_sum_panel(terms, n, opts, token, metrics);
    }
    let out = run_rows(
        n,
        opts.n_threads,
        token,
        || SyrkScratch::new(n, terms.len()),
        |row, scratch: &mut SyrkScratch, indices, values, counts| {
            syrk_row(terms, row, scratch, opts, indices, values, counts);
        },
    )?;
    let (indptr, indices, values, mirrored) =
        mirror_upper(n, &out.indptr, &out.indices, &out.values);
    flush_syrk(&out, mirrored, metrics);
    Ok(CsrMatrix::from_raw_parts_unchecked(
        n, n, indptr, indices, values,
    ))
}

/// [`spgemm_syrk_sum_observed`] under an output-size budget, mirroring
/// the degradation contract of [`crate::spgemm::spgemm_budgeted`]: if the
/// Gustavson bound on the *full* output fits the budget the multiply is
/// exact (and possibly parallel); otherwise it degrades to a serial
/// upper-triangle pass with an adaptive threshold, compacting whenever
/// the upper output exceeds half the budget (the mirror doubles it back).
pub fn spgemm_syrk_sum_budgeted(
    terms: &[SyrkTerm<'_>],
    opts: &SpgemmOptions,
    budget_nnz: usize,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<BudgetedSpgemm> {
    let n = check_terms(terms)?;
    if budget_nnz == 0 {
        return Err(SparseError::InvalidArgument(
            "spgemm budget must be positive".into(),
        ));
    }
    let estimated_nnz: usize = terms.iter().map(|t| spgemm_flops(t.x, t.xt)).sum();
    if estimated_nnz <= budget_nnz {
        let matrix = spgemm_syrk_sum_observed(terms, opts, token, metrics)?;
        return Ok(BudgetedSpgemm {
            matrix,
            degraded: false,
            threshold_used: opts.threshold,
            estimated_nnz,
        });
    }

    if let Some(m) = metrics {
        m.counter(metric_names::DEGRADED_FALLBACKS).inc();
    }
    // The budget bounds the *full* symmetric output; the upper-triangle
    // pass may keep at most half of it (the mirror restores the rest).
    let upper_budget = (budget_nnz / 2).max(1);
    let mut compactions = 0u64;
    let mut scratch = SyrkScratch::new(n, terms.len());
    let mut indptr = Vec::with_capacity(n + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut live_opts = opts.clone();
    let mut counts = SpgemmCounts::default();
    for row in 0..n {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        syrk_row(
            terms,
            row,
            &mut scratch,
            &live_opts,
            &mut indices,
            &mut values,
            &mut counts,
        );
        indptr.push(indices.len());
        if values.len() > upper_budget {
            live_opts.threshold = raised_threshold(&values, live_opts.threshold, upper_budget);
            compact_thresholded(&mut indptr, &mut indices, &mut values, live_opts.threshold);
            compactions += 1;
        }
    }
    counts.emitted = indices.len() as u64;
    let (full_indptr, full_indices, full_values, mirrored) =
        mirror_upper(n, &indptr, &indices, &values);
    let out = RowKernelOutput {
        indptr: full_indptr,
        indices: full_indices,
        values: full_values,
        counts,
        steals: 0,
    };
    flush_syrk(&out, mirrored, metrics);
    if let Some(m) = metrics {
        m.counter(metric_names::BUDGET_COMPACTIONS).add(compactions);
    }
    Ok(BudgetedSpgemm {
        matrix: CsrMatrix::from_raw_parts_unchecked(n, n, out.indptr, out.indices, out.values),
        degraded: true,
        threshold_used: live_opts.threshold,
        estimated_nnz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::spgemm::{spgemm, spgemm_observed, spgemm_thresholded};

    fn pseudo_random_matrix(
        n_rows: usize,
        n_cols: usize,
        seed: u64,
        density_shift: u32,
    ) -> CsrMatrix {
        let mut rows = vec![vec![0.0; n_cols]; n_rows];
        let mut state = seed;
        for r in rows.iter_mut() {
            for v in r.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> (64 - density_shift) == 0 {
                    *v = ((state >> 32) % 9 + 1) as f64 * 0.25;
                }
            }
        }
        CsrMatrix::from_dense(&rows)
    }

    #[test]
    fn syrk_matches_general_kernel_exactly() {
        let x = pseudo_random_matrix(60, 40, 0x243F6A8885A308D3, 3);
        let xt = transpose(&x);
        let general = spgemm(&x, &xt).unwrap();
        let syrk = spgemm_syrk(&x, &SpgemmOptions::default()).unwrap();
        syrk.validate().unwrap();
        assert_eq!(general, syrk);
    }

    #[test]
    fn syrk_rectangular_and_empty_rows() {
        // Tall, sparse factor with several all-zero rows.
        let x = pseudo_random_matrix(37, 5, 0x9E3779B97F4A7C15, 5);
        let xt = transpose(&x);
        assert_eq!(
            spgemm(&x, &xt).unwrap(),
            spgemm_syrk(&x, &SpgemmOptions::default()).unwrap()
        );
    }

    #[test]
    fn syrk_output_is_symmetric() {
        let x = pseudo_random_matrix(50, 50, 0xB7E151628AED2A6A, 3);
        let c = spgemm_syrk(&x, &SpgemmOptions::default()).unwrap();
        assert!(c.is_symmetric(0.0));
        assert_eq!(c, transpose(&c));
    }

    #[test]
    fn syrk_threshold_and_drop_diagonal_match_general() {
        let x = pseudo_random_matrix(48, 32, 0x452821E638D01377, 3);
        let xt = transpose(&x);
        let opts = SpgemmOptions {
            threshold: 0.8,
            drop_diagonal: true,
            ..Default::default()
        };
        let general = spgemm_thresholded(&x, &xt, &opts).unwrap();
        let syrk = spgemm_syrk_observed(&x, &xt, &opts, None, None).unwrap();
        assert_eq!(general, syrk);
    }

    #[test]
    fn syrk_sum_matches_separate_products_bitwise() {
        let x = pseudo_random_matrix(40, 30, 0x243F6A8885A308D3, 3);
        let y = pseudo_random_matrix(40, 25, 0x9E3779B97F4A7C15, 3);
        let (xt, yt) = (transpose(&x), transpose(&y));
        let separate = ops::add(&spgemm(&x, &xt).unwrap(), &spgemm(&y, &yt).unwrap()).unwrap();
        let fused = spgemm_syrk_sum_observed(
            &[SyrkTerm { x: &x, xt: &xt }, SyrkTerm { x: &y, xt: &yt }],
            &SpgemmOptions::default(),
            None,
            None,
        )
        .unwrap();
        assert_eq!(separate, fused);
    }

    #[test]
    fn syrk_accum_strategies_are_bitwise_identical() {
        use crate::accum::AccumStrategy;
        let x = pseudo_random_matrix(64, 48, 0x243F6A8885A308D3, 3);
        let y = pseudo_random_matrix(64, 40, 0x9E3779B97F4A7C15, 3);
        let (xt, yt) = (transpose(&x), transpose(&y));
        let terms = [SyrkTerm { x: &x, xt: &xt }, SyrkTerm { x: &y, xt: &yt }];
        let run = |accum, crossover| {
            let opts = SpgemmOptions {
                accum,
                accum_crossover: crossover,
                drop_diagonal: true,
                threshold: 0.5,
                ..Default::default()
            };
            spgemm_syrk_sum_observed(&terms, &opts, None, None).unwrap()
        };
        let dense = run(AccumStrategy::Dense, None);
        let sparse = run(AccumStrategy::Sparse, None);
        assert_eq!(dense, sparse);
        for crossover in [1, 8, 64, 10_000] {
            assert_eq!(dense, run(AccumStrategy::Adaptive, Some(crossover)));
        }
    }

    #[test]
    fn syrk_rows_split_between_strategies_deterministically() {
        use crate::accum::AccumStrategy;
        // Skewed rows: even rows are wide hubs (estimate far above the
        // crossover), odd rows touch one private column (estimate 1).
        let n = 64usize;
        let mut dense = vec![vec![0.0f64; n]; n];
        for (i, row) in dense.iter_mut().enumerate() {
            if i % 2 == 0 {
                for v in row.iter_mut().take(16) {
                    *v = 1.0 + i as f64 * 0.125;
                }
            } else {
                row[i] = 2.0;
            }
        }
        let x = CsrMatrix::from_dense(&dense);
        let xt = transpose(&x);
        let count = |n_threads| {
            let m = MetricsRegistry::new();
            let opts = SpgemmOptions {
                accum: AccumStrategy::Adaptive,
                accum_crossover: Some(64),
                n_threads,
                ..Default::default()
            };
            spgemm_syrk_observed(&x, &xt, &opts, None, Some(&m)).unwrap();
            let snap = m.snapshot();
            (
                snap.counter(metric_names::ROWS_DENSE).unwrap(),
                snap.counter(metric_names::ROWS_SPARSE).unwrap(),
                snap.counter(metric_names::ROWS).unwrap(),
            )
        };
        let (d1, s1, rows1) = count(1);
        assert!(d1 > 0, "expected some dense rows");
        assert!(s1 > 0, "expected some sparse rows");
        assert_eq!(d1 + s1, rows1);
        assert_eq!((d1, s1, rows1), count(4), "strategy mix depends on threads");
    }

    #[test]
    fn syrk_parallel_is_identical_across_thread_counts() {
        let x = pseudo_random_matrix(300, 200, 0x243F6A8885A308D3, 4);
        let xt = transpose(&x);
        let serial_opts = SpgemmOptions {
            n_threads: 1,
            ..Default::default()
        };
        let serial = spgemm_syrk_observed(&x, &xt, &serial_opts, None, None).unwrap();
        for n_threads in [2, 3, 8] {
            let opts = SpgemmOptions {
                n_threads,
                ..Default::default()
            };
            let parallel = spgemm_syrk_observed(&x, &xt, &opts, None, None).unwrap();
            assert_eq!(serial, parallel, "thread count {n_threads}");
        }
    }

    #[test]
    fn syrk_counters_show_halved_flops_and_mirrored_nnz() {
        let x = pseudo_random_matrix(64, 64, 0x243F6A8885A308D3, 3);
        let xt = transpose(&x);
        let general = MetricsRegistry::new();
        let serial = SpgemmOptions {
            n_threads: 1,
            ..Default::default()
        };
        spgemm_observed(&x, &xt, &serial, None, Some(&general)).unwrap();
        let syrk = MetricsRegistry::new();
        let c = spgemm_syrk_observed(&x, &xt, &serial, None, Some(&syrk)).unwrap();
        let gsnap = general.snapshot();
        let ssnap = syrk.snapshot();
        let gflops = gsnap.counter(metric_names::FLOPS).unwrap();
        let sflops = ssnap.counter(metric_names::FLOPS).unwrap();
        assert!(
            sflops * 2 <= gflops + c.n_rows() as u64 * 64,
            "syrk flops {sflops} not ~half of general {gflops}"
        );
        assert_eq!(ssnap.counter(metric_names::SYRK_CALLS), Some(1));
        let mirrored = ssnap.counter(metric_names::SYRK_MIRRORED_NNZ).unwrap();
        let emitted = ssnap.counter(metric_names::NNZ_FINAL).unwrap();
        assert_eq!(emitted + mirrored, c.nnz() as u64);
        // General kernel records the full output as final nnz.
        assert_eq!(gsnap.counter(metric_names::NNZ_FINAL), Some(c.nnz() as u64));
    }

    #[test]
    fn syrk_rejects_empty_terms_and_bad_dims() {
        assert!(spgemm_syrk_sum_observed(&[], &SpgemmOptions::default(), None, None).is_err());
        let x = CsrMatrix::zeros(3, 4);
        let bad_xt = CsrMatrix::zeros(4, 5); // n_cols != x.n_rows
        let r = spgemm_syrk_observed(&x, &bad_xt, &SpgemmOptions::default(), None, None);
        assert!(r.is_err());
    }

    #[test]
    fn syrk_cancellation_aborts() {
        let x = pseudo_random_matrix(128, 64, 0x243F6A8885A308D3, 3);
        let xt = transpose(&x);
        let token = CancelToken::new();
        token.cancel();
        for n_threads in [1, 4] {
            let opts = SpgemmOptions {
                n_threads,
                ..Default::default()
            };
            let r = spgemm_syrk_observed(&x, &xt, &opts, Some(&token), None);
            assert_eq!(r, Err(SparseError::Cancelled));
        }
    }

    #[test]
    fn syrk_budgeted_within_budget_is_exact() {
        let x = pseudo_random_matrix(40, 30, 0x243F6A8885A308D3, 3);
        let xt = transpose(&x);
        let r = spgemm_syrk_sum_budgeted(
            &[SyrkTerm { x: &x, xt: &xt }],
            &SpgemmOptions::default(),
            1_000_000,
            None,
            None,
        )
        .unwrap();
        assert!(!r.degraded);
        assert_eq!(r.matrix, spgemm(&x, &xt).unwrap());
    }

    #[test]
    fn syrk_budgeted_degrades_deterministically_and_stays_symmetric() {
        let x = pseudo_random_matrix(48, 48, 0x9E3779B97F4A7C15, 2);
        let xt = transpose(&x);
        let terms = [SyrkTerm { x: &x, xt: &xt }];
        let budget = 120;
        let m = MetricsRegistry::new();
        let r = spgemm_syrk_sum_budgeted(&terms, &SpgemmOptions::default(), budget, None, Some(&m))
            .unwrap();
        assert!(r.degraded);
        assert!(r.threshold_used > 0.0);
        r.matrix.validate().unwrap();
        assert!(r.matrix.is_symmetric(0.0));
        // Every surviving entry matches the exact product.
        let exact = spgemm(&x, &xt).unwrap();
        for (row, col, v) in r.matrix.iter() {
            assert_eq!(exact.get(row, col as usize), v);
            assert!(v.abs() >= r.threshold_used);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter(metric_names::DEGRADED_FALLBACKS), Some(1));
        assert!(snap.counter(metric_names::BUDGET_COMPACTIONS).unwrap() > 0);
        // Deterministic.
        let again = spgemm_syrk_sum_budgeted(&terms, &SpgemmOptions::default(), budget, None, None)
            .unwrap();
        assert_eq!(r.matrix, again.matrix);
    }

    #[test]
    fn mirror_handles_missing_diagonal() {
        // Row 0 has no diagonal entry after drop_diagonal.
        let x = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![0.0, 1.0], vec![1.0, 0.0]]);
        let xt = transpose(&x);
        let opts = SpgemmOptions {
            drop_diagonal: true,
            ..Default::default()
        };
        let general = spgemm_thresholded(&x, &xt, &opts).unwrap();
        let syrk = spgemm_syrk_observed(&x, &xt, &opts, None, None).unwrap();
        assert_eq!(general, syrk);
    }
}

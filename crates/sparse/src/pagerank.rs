//! Power iteration for the stationary distribution of a random walk with
//! uniform teleportation (PageRank).
//!
//! The paper's Random-walk symmetrization (§3.2, §4.2) needs the stationary
//! distribution `π` of the walk on the directed graph; the paper computes it
//! "via power iterations" with "a uniform random teleport probability of
//! 0.05". Dangling nodes (zero out-degree) redistribute their mass uniformly,
//! the standard PageRank convention, which guarantees a unique stationary
//! distribution for any input graph.

use crate::cancel::CancelToken;
use crate::csr::CsrMatrix;
use crate::dense;
use crate::error::SparseError;
use crate::ops::row_normalize;
use crate::Result;

/// Options for the PageRank power iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankOptions {
    /// Teleport probability (the paper uses 0.05).
    pub teleport: f64,
    /// Convergence threshold on the L1 change between iterates.
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            teleport: 0.05,
            tol: 1e-10,
            max_iter: 1000,
        }
    }
}

/// Outcome of a PageRank computation.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// The stationary distribution (sums to 1).
    pub pi: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final L1 residual.
    pub residual: f64,
}

/// Computes the PageRank vector of the directed adjacency matrix `a`.
///
/// `a` is row-normalized internally; edge weights act as transition
/// preferences.
pub fn pagerank(a: &CsrMatrix, opts: &PageRankOptions) -> Result<PageRankResult> {
    pagerank_with(a, opts, None)
}

/// [`pagerank`] that polls `token` once per power iteration and bails out
/// with [`SparseError::Cancelled`] when it trips (explicitly or by
/// deadline). The iteration holds no shared state, so a cancelled run
/// leaves nothing poisoned — the same matrix can be solved again.
pub fn pagerank_cancellable(
    a: &CsrMatrix,
    opts: &PageRankOptions,
    token: &CancelToken,
) -> Result<PageRankResult> {
    pagerank_with(a, opts, Some(token))
}

fn pagerank_with(
    a: &CsrMatrix,
    opts: &PageRankOptions,
    token: Option<&CancelToken>,
) -> Result<PageRankResult> {
    if a.n_rows() != a.n_cols() {
        return Err(SparseError::DimensionMismatch {
            op: "pagerank",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (a.n_cols(), a.n_cols()),
        });
    }
    if !(0.0..1.0).contains(&opts.teleport) {
        return Err(SparseError::InvalidArgument(format!(
            "teleport probability {} outside [0, 1)",
            opts.teleport
        )));
    }
    let n = a.n_rows();
    if n == 0 {
        return Ok(PageRankResult {
            pi: Vec::new(),
            iterations: 0,
            residual: 0.0,
        });
    }
    let p = row_normalize(a);
    let dangling: Vec<bool> = (0..n).map(|r| p.row_nnz(r) == 0).collect();
    let damping = 1.0 - opts.teleport;
    let uniform = 1.0 / n as f64;

    let mut pi = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for iter in 1..=opts.max_iter {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        // next = damping * (Pᵀ pi + dangling_mass * uniform) + teleport * uniform
        let mut dangling_mass = 0.0;
        for (i, &d) in dangling.iter().enumerate() {
            if d {
                dangling_mass += pi[i];
            }
        }
        next.iter_mut().for_each(|x| *x = 0.0);
        for (row, &mass) in pi.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (col, w) in p.row_iter(row) {
                next[col as usize] += w * mass;
            }
        }
        let base = damping * dangling_mass * uniform + opts.teleport * uniform;
        for x in next.iter_mut() {
            *x = damping * *x + base;
        }
        // Guard against numerical drift by renormalizing.
        dense::normalize1(&mut next);
        let residual: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut next);
        if residual < opts.tol {
            return Ok(PageRankResult {
                pi,
                iterations: iter,
                residual,
            });
        }
    }
    Err(SparseError::NoConvergence {
        what: "pagerank",
        iterations: opts.max_iter,
    })
}

/// Convenience wrapper returning just the stationary distribution with the
/// paper's default teleport probability of 0.05.
pub fn stationary_distribution(a: &CsrMatrix) -> Result<Vec<f64>> {
    pagerank(a, &PageRankOptions::default()).map(|r| r.pi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    #[test]
    fn uniform_on_symmetric_cycle() {
        // Directed 4-cycle: stationary distribution is uniform for any
        // teleport because of symmetry.
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)],
        )
        .unwrap();
        let r = pagerank(&coo.to_csr(), &PageRankOptions::default()).unwrap();
        for &v in &r.pi {
            assert!((v - 0.25).abs() < 1e-8, "pi = {:?}", r.pi);
        }
        assert!(r.iterations >= 1);
    }

    #[test]
    fn sums_to_one_with_dangling_nodes() {
        // Node 2 is dangling.
        let coo = CooMatrix::from_triplets(3, 3, vec![(0, 2, 1.0), (1, 2, 1.0)]).unwrap();
        let r = pagerank(&coo.to_csr(), &PageRankOptions::default()).unwrap();
        let sum: f64 = r.pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10);
        // The dangling sink accumulates the most mass.
        assert!(r.pi[2] > r.pi[0]);
        assert!(r.pi[2] > r.pi[1]);
    }

    #[test]
    fn hub_gets_more_mass() {
        // Star pointing at node 0.
        let mut coo = CooMatrix::new(5, 5);
        for i in 1..5 {
            coo.push(i, 0, 1.0).unwrap();
        }
        coo.push(0, 1, 1.0).unwrap(); // keep node 0 non-dangling
        let r = pagerank(&coo.to_csr(), &PageRankOptions::default()).unwrap();
        for i in 2..5 {
            assert!(r.pi[0] > r.pi[i]);
        }
    }

    #[test]
    fn satisfies_stationarity() {
        // pi should satisfy pi = pi * G where G is the Google matrix.
        let coo = CooMatrix::from_triplets(
            4,
            4,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (1, 2, 1.0),
                (2, 0, 1.0),
                (3, 0, 1.0),
                (2, 3, 1.0),
            ],
        )
        .unwrap();
        let a = coo.to_csr();
        let opts = PageRankOptions {
            teleport: 0.05,
            tol: 1e-13,
            max_iter: 5000,
        };
        let r = pagerank(&a, &opts).unwrap();
        // Rebuild one explicit iteration and compare.
        let p = row_normalize(&a);
        let n = a.n_rows();
        let mut next = vec![0.0; n];
        for row in 0..n {
            for (col, w) in p.row_iter(row) {
                next[col as usize] += 0.95 * w * r.pi[row];
            }
        }
        for x in next.iter_mut() {
            *x += 0.05 / n as f64;
        }
        for (a, b) in r.pi.iter().zip(&next) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let rect = CsrMatrix::zeros(2, 3);
        assert!(pagerank(&rect, &PageRankOptions::default()).is_err());
        let sq = CsrMatrix::zeros(2, 2);
        let bad = PageRankOptions {
            teleport: 1.5,
            ..Default::default()
        };
        assert!(pagerank(&sq, &bad).is_err());
    }

    #[test]
    fn empty_matrix_is_ok() {
        let r = pagerank(&CsrMatrix::zeros(0, 0), &PageRankOptions::default()).unwrap();
        assert!(r.pi.is_empty());
    }

    #[test]
    fn all_dangling_gives_uniform() {
        let r = pagerank(&CsrMatrix::zeros(4, 4), &PageRankOptions::default()).unwrap();
        for &v in &r.pi {
            assert!((v - 0.25).abs() < 1e-10);
        }
    }

    #[test]
    fn stationary_distribution_wrapper() {
        let coo = CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let pi = stationary_distribution(&coo.to_csr()).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-8);
    }

    fn directed_ring(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn live_token_matches_plain_pagerank() {
        let a = directed_ring(16);
        let token = CancelToken::new();
        let plain = pagerank(&a, &PageRankOptions::default()).unwrap();
        let with_token = pagerank_cancellable(&a, &PageRankOptions::default(), &token).unwrap();
        assert_eq!(plain.pi, with_token.pi);
        assert_eq!(plain.iterations, with_token.iterations);
    }

    #[test]
    fn cancel_mid_iteration_returns_promptly_without_poisoned_state() {
        // tol = 0 means the residual test (`residual < tol`) never passes,
        // so only cancellation can end this run before the huge budget.
        let a = directed_ring(512);
        let endless = PageRankOptions {
            teleport: 0.05,
            tol: 0.0,
            max_iter: usize::MAX,
        };
        let token = CancelToken::new();
        let canceller = token.clone();
        let started = std::time::Instant::now();
        let result = crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| pagerank_cancellable(&a, &endless, &token));
            // Let the iteration genuinely start, then cancel mid-flight.
            std::thread::sleep(std::time::Duration::from_millis(30));
            canceller.cancel();
            handle.join().expect("pagerank worker panicked")
        })
        .expect("scope");
        assert!(
            matches!(result, Err(SparseError::Cancelled)),
            "expected cancellation, got {result:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "cancellation was not prompt"
        );
        // No poisoned state: the same matrix solves fine afterwards.
        let again = pagerank(&a, &PageRankOptions::default()).unwrap();
        assert!((again.pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }
}

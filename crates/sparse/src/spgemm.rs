//! Sparse matrix–matrix multiplication (SpGEMM).
//!
//! All variants use Gustavson's row-wise algorithm: row `i` of `C = A·B` is
//! the linear combination of the rows of `B` selected by the non-zeros of row
//! `i` of `A`, accumulated in a dense scratch vector with a "touched columns"
//! list so clearing costs O(row nnz), not O(n).
//!
//! The thresholded variant applies a prune threshold *during* accumulation
//! output, which is what makes the paper's Degree-discounted symmetrization
//! tractable on hub-heavy graphs: the full product is never materialized
//! (§3.5 of the paper). The parallel variant schedules output-row *blocks*
//! over crossbeam scoped threads with per-thread accumulators and
//! work-stealing (see [`crate::sched`]): a worker that drains its own block
//! range steals blocks from a victim's tail, so power-law rows cannot
//! strand the pool behind one overloaded static chunk. Blocks are
//! reassembled in index order, so the output and every work counter are
//! bit-identical for any thread count.
//!
//! The symmetric `C = X·Xᵀ` case has a dedicated upper-triangle kernel in
//! [`crate::syrk`] that shares this module's scratch discipline, counters
//! and scheduler.

use crate::accum::{
    accum_from_env, gather_scaled, reduce_pairs, scatter_scaled, AccumStrategy, DenseAccum,
    DEFAULT_ACCUM_CROSSOVER,
};
use crate::cancel::CancelToken;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::panel::PanelPlan;
use crate::sched::{BlockQueues, DEFAULT_BLOCK_ROWS};
use crate::Result;
use symclust_obs::MetricsRegistry;

/// Stable metric names recorded by the SpGEMM kernels (DESIGN.md §11).
pub mod metric_names {
    /// Kernel invocations (one per top-level SpGEMM call).
    pub const CALLS: &str = "spgemm.calls";
    /// Output rows produced.
    pub const ROWS: &str = "spgemm.rows";
    /// Exact multiply-add count performed. The SYRK kernels count only the
    /// upper-triangle multiply-adds they actually perform — roughly half of
    /// the general kernel's count for the same product.
    pub const FLOPS: &str = "spgemm.flops";
    /// Distinct accumulator entries touched before thresholding
    /// (intermediate nnz).
    pub const NNZ_INTERMEDIATE: &str = "spgemm.nnz_intermediate";
    /// Entries emitted into the output (final nnz). For the SYRK kernels
    /// this counts the upper-triangle entries the row pass emits; the
    /// mirrored lower copies are tallied separately under
    /// [`SYRK_MIRRORED_NNZ`].
    pub const NNZ_FINAL: &str = "spgemm.nnz_final";
    /// Accumulated entries not emitted (threshold, exact zero, or dropped
    /// diagonal).
    pub const THRESHOLD_DROPPED: &str = "spgemm.threshold_dropped";
    /// Times the memory budget forced the degraded adaptive-threshold
    /// path instead of an exact multiply.
    pub const DEGRADED_FALLBACKS: &str = "spgemm.degraded_fallbacks";
    /// Mid-run output compactions performed by the degraded path.
    pub const BUDGET_COMPACTIONS: &str = "spgemm.budget_compactions";
    /// Invocations of the symmetric `X·Xᵀ` (SYRK) kernel family. Each also
    /// counts once under [`CALLS`].
    pub const SYRK_CALLS: &str = "spgemm.syrk_calls";
    /// Lower-triangle entries materialized by the SYRK mirror pass (the
    /// multiply-adds the symmetric kernel *skipped*; full output nnz is
    /// [`NNZ_FINAL`] + this).
    pub const SYRK_MIRRORED_NNZ: &str = "spgemm.syrk_mirrored_nnz";
    /// Row blocks executed by a worker other than their initial owner
    /// under the work-stealing scheduler. Scheduling-dependent: varies
    /// with thread count and machine load (excluded from the bench gate),
    /// but a persistently high ratio versus total blocks on a skewed graph
    /// is the load-balancing at work.
    pub const SCHED_STEALS: &str = "spgemm.sched_steals";
    /// Output rows accumulated with the dense epoch-stamped scratch
    /// (estimated intermediate width at or above the crossover). The
    /// dense/sparse split depends only on the input structure and the
    /// crossover — never on thread count — so both counters are
    /// deterministic and bench-gated.
    pub const ROWS_DENSE: &str = "spgemm.rows_dense";
    /// Output rows accumulated with sorted sparse pair lists (estimated
    /// intermediate width below the crossover).
    pub const ROWS_SPARSE: &str = "spgemm.rows_sparse";
    /// Panel-pair tiles executed by the out-of-core panel path (0 when the
    /// in-memory path ran). A function of the matrix shape and the
    /// configured panel size only, so deterministic and bench-gated.
    pub const PANELS: &str = "spgemm.panels";
    /// Tiles whose partial products were spilled to scratch files under
    /// the panel byte budget. The spill plan is decided from a
    /// structure-only estimate *before* execution (see [`crate::panel`]),
    /// so the count never depends on scheduling or thread count.
    pub const PANEL_SPILLS: &str = "spgemm.panel_spills";
    /// Bytes written to spill files: 12 bytes (`u32` column + `f64` value)
    /// per spilled intermediate entry. Deterministic for a fixed input,
    /// panel size and budget.
    pub const SPILL_BYTES: &str = "spgemm.spill_bytes";
}

/// Parses the `SYMCLUST_THREADS` environment variable: the default SpGEMM
/// thread count used by the symmetrizer option structs (`0` = one thread
/// per available core). Unset or unparsable means "no preference".
pub fn threads_from_env() -> Option<usize> {
    std::env::var("SYMCLUST_THREADS").ok()?.trim().parse().ok()
}

/// Work counts accumulated in plain locals during a kernel run and
/// flushed to the registry once per call — the atomics are never touched
/// in the row loop.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SpgemmCounts {
    pub(crate) rows: u64,
    pub(crate) flops: u64,
    pub(crate) touched: u64,
    pub(crate) emitted: u64,
    pub(crate) rows_dense: u64,
    pub(crate) rows_sparse: u64,
    pub(crate) panels: u64,
    pub(crate) panel_spills: u64,
    pub(crate) spill_bytes: u64,
}

impl SpgemmCounts {
    pub(crate) fn merge(&mut self, other: &SpgemmCounts) {
        self.rows += other.rows;
        self.flops += other.flops;
        self.touched += other.touched;
        self.emitted += other.emitted;
        self.rows_dense += other.rows_dense;
        self.rows_sparse += other.rows_sparse;
        self.panels += other.panels;
        self.panel_spills += other.panel_spills;
        self.spill_bytes += other.spill_bytes;
    }

    pub(crate) fn flush(&self, metrics: Option<&MetricsRegistry>) {
        let Some(m) = metrics else { return };
        m.counter(metric_names::CALLS).inc();
        m.counter(metric_names::ROWS).add(self.rows);
        m.counter(metric_names::FLOPS).add(self.flops);
        m.counter(metric_names::NNZ_INTERMEDIATE).add(self.touched);
        m.counter(metric_names::NNZ_FINAL).add(self.emitted);
        m.counter(metric_names::THRESHOLD_DROPPED)
            .add(self.touched - self.emitted);
        m.counter(metric_names::ROWS_DENSE).add(self.rows_dense);
        m.counter(metric_names::ROWS_SPARSE).add(self.rows_sparse);
        m.counter(metric_names::PANELS).add(self.panels);
        m.counter(metric_names::PANEL_SPILLS).add(self.panel_spills);
        m.counter(metric_names::SPILL_BYTES).add(self.spill_bytes);
    }
}

/// Options controlling SpGEMM execution.
#[derive(Debug, Clone)]
pub struct SpgemmOptions {
    /// Entries with value strictly below this threshold are discarded from
    /// the output (applied to the final accumulated value of each entry).
    pub threshold: f64,
    /// Number of worker threads for the parallel variant; 0 means "use
    /// available parallelism".
    pub n_threads: usize,
    /// When true, diagonal entries of the output are discarded. Similarity
    /// matrices use this: self-similarity carries no clustering signal.
    pub drop_diagonal: bool,
    /// Per-row accumulator strategy (see [`crate::accum`]). Output bytes
    /// and every deterministic counter except `spgemm.rows_dense` /
    /// `spgemm.rows_sparse` are identical for every setting; the default
    /// honors the `SYMCLUST_ACCUM` environment variable and falls back to
    /// [`AccumStrategy::Adaptive`].
    pub accum: AccumStrategy,
    /// Adaptive crossover in estimated multiply-adds per row: rows at or
    /// above it accumulate densely, rows below it sparsely. `None` uses
    /// [`DEFAULT_ACCUM_CROSSOVER`].
    pub accum_crossover: Option<usize>,
    /// Out-of-core panel plan (see [`crate::panel`]). Disengaged by
    /// default; when engaged the multiply runs tile by tile with optional
    /// spill-to-disk, producing bit-identical output and identical
    /// deterministic work counters. Like the thread and accumulator knobs
    /// this never reaches cache keys; the default honors the
    /// `SYMCLUST_PANEL_ROWS` / `SYMCLUST_MEMORY_BUDGET` environment
    /// variables.
    pub panel: PanelPlan,
}

impl Default for SpgemmOptions {
    fn default() -> Self {
        SpgemmOptions {
            threshold: 0.0,
            n_threads: 0,
            drop_diagonal: false,
            accum: accum_from_env().unwrap_or_default(),
            accum_crossover: None,
            panel: PanelPlan::from_env(),
        }
    }
}

impl SpgemmOptions {
    /// The effective adaptive crossover for this call.
    pub(crate) fn crossover(&self) -> usize {
        self.accum_crossover.unwrap_or(DEFAULT_ACCUM_CROSSOVER)
    }

    /// Resolves the per-row strategy from the estimated multiply-add
    /// count (= estimated intermediate width upper bound) for the row.
    #[inline]
    pub(crate) fn row_is_dense(&self, estimated_width: usize) -> bool {
        match self.accum {
            AccumStrategy::Dense => true,
            AccumStrategy::Sparse => false,
            AccumStrategy::Adaptive => estimated_width >= self.crossover(),
        }
    }
}

fn check_dims(a: &CsrMatrix, b: &CsrMatrix) -> Result<()> {
    if a.n_cols() != b.n_rows() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (b.n_rows(), b.n_cols()),
        });
    }
    Ok(())
}

/// Resolves an [`SpgemmOptions::n_threads`] request to a concrete count.
pub(crate) fn resolve_threads(n_threads: usize) -> usize {
    if n_threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        n_threads
    }
}

/// Whether an accumulated entry survives emission for output row `row`.
#[inline]
pub(crate) fn emits(v: f64, j: u32, row: usize, opts: &SpgemmOptions) -> bool {
    v != 0.0 && v.abs() >= opts.threshold && !(opts.drop_diagonal && j as usize == row)
}

/// Computes one output row with the strategy [`SpgemmOptions::row_is_dense`]
/// picks from the row's Gustavson FLOP estimate, and flushes entries that
/// pass the threshold into `(indices, values)`. Both strategies emit in
/// ascending column order with bit-identical values (see [`crate::accum`]),
/// so the choice never leaks into the output or the downstream block
/// assembly.
#[inline]
#[allow(clippy::too_many_arguments)]
fn gustavson_row(
    a: &CsrMatrix,
    b: &CsrMatrix,
    row: usize,
    scratch: &mut RowScratch,
    opts: &SpgemmOptions,
    indices: &mut Vec<u32>,
    values: &mut Vec<f64>,
    counts: &mut SpgemmCounts,
) {
    let emitted_before = indices.len();
    // The row's exact multiply-add count doubles as the §3.6-style
    // estimate of its intermediate width (every product touches at most
    // one distinct column), so the strategy decision is free and depends
    // only on the input structure.
    let estimated_width: usize = a
        .row_indices(row)
        .iter()
        .map(|&k| b.row_nnz(k as usize))
        .sum();
    counts.flops += estimated_width as u64;
    if opts.row_is_dense(estimated_width) {
        counts.rows_dense += 1;
        let acc = &mut scratch.acc;
        let touched = &mut scratch.touched;
        acc.begin_row();
        touched.clear();
        for (k, av) in a.row_iter(row) {
            scatter_scaled(
                acc,
                touched,
                av,
                b.row_indices(k as usize),
                b.row_values(k as usize),
            );
        }
        touched.sort_unstable();
        for &j in touched.iter() {
            let v = acc.get(j);
            if emits(v, j, row, opts) {
                indices.push(j);
                values.push(v);
            }
        }
        counts.touched += touched.len() as u64;
    } else {
        counts.rows_sparse += 1;
        let pairs = &mut scratch.pairs;
        pairs.clear();
        for (k, av) in a.row_iter(row) {
            gather_scaled(
                pairs,
                av,
                b.row_indices(k as usize),
                b.row_values(k as usize),
            );
        }
        counts.touched += reduce_pairs(pairs, |j, v| {
            if emits(v, j, row, opts) {
                indices.push(j);
                values.push(v);
            }
        });
    }
    counts.rows += 1;
    counts.emitted += (indices.len() - emitted_before) as u64;
}

/// Output triple (plus work counters) of a row-kernel run, shared between
/// the general and SYRK entry points.
#[derive(Debug)]
pub(crate) struct RowKernelOutput {
    pub(crate) indptr: Vec<usize>,
    pub(crate) indices: Vec<u32>,
    pub(crate) values: Vec<f64>,
    pub(crate) counts: SpgemmCounts,
    /// Blocks executed by a non-owner worker (0 on the serial path).
    pub(crate) steals: u64,
}

impl RowKernelOutput {
    pub(crate) fn flush_steals(&self, metrics: Option<&MetricsRegistry>) {
        if let Some(m) = metrics {
            m.counter(metric_names::SCHED_STEALS).add(self.steals);
        }
    }
}

pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "(non-string panic payload)".to_string()
    }
}

/// Runs `row_kernel` over every output row, serially or under the
/// work-stealing block scheduler, and assembles the rows in order.
///
/// `row_kernel(row, scratch, indices, values, counts)` must append row
/// `row`'s entries to `(indices, values)` in ascending column order and
/// leave `scratch` clean for the next row. `new_scratch` builds one
/// per-worker scratch (dense accumulators + touched list), reused across
/// every block that worker executes.
///
/// The parallel path converts worker panics into
/// [`SparseError::WorkerPanic`] instead of unwinding: a poisoned kernel
/// fails the call, not the process.
pub(crate) fn run_rows<S, N, K>(
    n_rows: usize,
    n_threads: usize,
    token: Option<&CancelToken>,
    new_scratch: N,
    row_kernel: K,
) -> Result<RowKernelOutput>
where
    N: Fn() -> S + Sync,
    K: Fn(usize, &mut S, &mut Vec<u32>, &mut Vec<f64>, &mut SpgemmCounts) + Sync,
{
    let n_threads = resolve_threads(n_threads);
    if n_threads <= 1 || n_rows < 2 * n_threads {
        return run_rows_serial(n_rows, token, &new_scratch, &row_kernel);
    }

    let block_rows = DEFAULT_BLOCK_ROWS;
    let n_blocks = n_rows.div_ceil(block_rows);
    let n_workers = n_threads.min(n_blocks);
    let queues = BlockQueues::new(n_blocks, n_workers);

    /// One finished block, tagged for deterministic reassembly.
    struct BlockOut {
        block: usize,
        row_lens: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    }
    type WorkerResult = Result<(Vec<BlockOut>, SpgemmCounts, u64)>;

    let mut worker_results: Vec<WorkerResult> = Vec::with_capacity(n_workers);
    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let queues = &queues;
            let new_scratch = &new_scratch;
            let row_kernel = &row_kernel;
            handles.push(scope.spawn(move |_| -> WorkerResult {
                let body =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> WorkerResult {
                        let mut scratch = new_scratch();
                        let mut outs: Vec<BlockOut> = Vec::new();
                        let mut counts = SpgemmCounts::default();
                        let mut steals = 0u64;
                        loop {
                            let (block, stolen) = match queues.pop_own(w) {
                                Some(b) => (b, false),
                                None => match queues.steal(w) {
                                    Some(b) => (b, true),
                                    None => break,
                                },
                            };
                            steals += u64::from(stolen);
                            let lo = block * block_rows;
                            let hi = (lo + block_rows).min(n_rows);
                            let mut row_lens = Vec::with_capacity(hi - lo);
                            let mut indices = Vec::new();
                            let mut values = Vec::new();
                            for row in lo..hi {
                                if let Some(t) = token {
                                    t.checkpoint()?;
                                }
                                let before = indices.len();
                                row_kernel(
                                    row,
                                    &mut scratch,
                                    &mut indices,
                                    &mut values,
                                    &mut counts,
                                );
                                row_lens.push(indices.len() - before);
                            }
                            outs.push(BlockOut {
                                block,
                                row_lens,
                                indices,
                                values,
                            });
                        }
                        Ok((outs, counts, steals))
                    }));
                match body {
                    Ok(r) => r,
                    Err(payload) => Err(SparseError::WorkerPanic(panic_text(payload.as_ref()))),
                }
            }));
        }
        for handle in handles {
            worker_results.push(
                handle
                    .join()
                    .unwrap_or_else(|p| Err(SparseError::WorkerPanic(panic_text(p.as_ref())))),
            );
        }
    });
    if let Err(payload) = scope_result {
        return Err(SparseError::WorkerPanic(panic_text(payload.as_ref())));
    }

    // Error priority: a real failure (panic, invalid input) beats
    // cancellation — when a worker dies, siblings usually just see the
    // token trip afterwards.
    let mut cancelled = false;
    let mut blocks: Vec<BlockOut> = Vec::with_capacity(n_blocks);
    let mut counts = SpgemmCounts::default();
    let mut steals = 0u64;
    let mut first_error: Option<SparseError> = None;
    for wr in worker_results {
        match wr {
            Ok((outs, worker_counts, worker_steals)) => {
                blocks.extend(outs);
                counts.merge(&worker_counts);
                steals += worker_steals;
            }
            Err(SparseError::Cancelled) => cancelled = true,
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    if cancelled {
        return Err(SparseError::Cancelled);
    }

    blocks.sort_unstable_by_key(|b| b.block);
    let total_nnz: usize = blocks.iter().map(|b| b.indices.len()).sum();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(total_nnz);
    let mut values = Vec::with_capacity(total_nnz);
    for b in blocks {
        for len in b.row_lens {
            indptr.push(indptr.last().unwrap() + len);
        }
        indices.extend_from_slice(&b.indices);
        values.extend_from_slice(&b.values);
    }
    debug_assert_eq!(indptr.len(), n_rows + 1, "blocks must cover every row");
    Ok(RowKernelOutput {
        indptr,
        indices,
        values,
        counts,
        steals,
    })
}

fn run_rows_serial<S, N, K>(
    n_rows: usize,
    token: Option<&CancelToken>,
    new_scratch: &N,
    row_kernel: &K,
) -> Result<RowKernelOutput>
where
    N: Fn() -> S,
    K: Fn(usize, &mut S, &mut Vec<u32>, &mut Vec<f64>, &mut SpgemmCounts),
{
    let mut scratch = new_scratch();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    let mut counts = SpgemmCounts::default();
    for row in 0..n_rows {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        row_kernel(row, &mut scratch, &mut indices, &mut values, &mut counts);
        indptr.push(indices.len());
    }
    Ok(RowKernelOutput {
        indptr,
        indices,
        values,
        counts,
        steals: 0,
    })
}

/// Per-worker scratch for the general Gustavson kernel: the dense
/// epoch-stamped accumulator, its duplicate-free touched-column list, and
/// the pair buffer the sparse strategy gathers into. Both buffers are
/// reused across every row the worker executes, so a mixed adaptive run
/// allocates each at its high-water mark once.
pub(crate) struct RowScratch {
    pub(crate) acc: DenseAccum,
    pub(crate) touched: Vec<u32>,
    pub(crate) pairs: Vec<(u32, f64)>,
}

impl RowScratch {
    pub(crate) fn new(n_cols: usize) -> Self {
        RowScratch {
            acc: DenseAccum::new(n_cols),
            touched: Vec::new(),
            pairs: Vec::new(),
        }
    }
}

/// Serial Gustavson SpGEMM: `C = A·B`.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    spgemm_thresholded(a, b, &SpgemmOptions::default())
}

/// Serial Gustavson SpGEMM with on-the-fly pruning per [`SpgemmOptions`].
pub fn spgemm_thresholded(a: &CsrMatrix, b: &CsrMatrix, opts: &SpgemmOptions) -> Result<CsrMatrix> {
    spgemm_serial_with_token(a, b, opts, None, None)
}

/// [`spgemm_thresholded`] that polls `token` between output rows and bails
/// out with [`SparseError::Cancelled`] once it trips.
pub fn spgemm_cancellable(
    a: &CsrMatrix,
    b: &CsrMatrix,
    opts: &SpgemmOptions,
    token: &CancelToken,
) -> Result<CsrMatrix> {
    spgemm_observed(a, b, opts, Some(token), None)
}

/// The fully instrumented SpGEMM entry point: optional cancellation plus
/// optional metrics. Dispatches to the parallel kernel unless
/// `opts.n_threads == 1`. Work counts (rows, flops, intermediate/final
/// nnz, threshold drops — see [`metric_names`]) are accumulated in locals
/// and flushed to `metrics` once at the end of the call.
pub fn spgemm_observed(
    a: &CsrMatrix,
    b: &CsrMatrix,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<CsrMatrix> {
    if opts.n_threads != 1 {
        spgemm_parallel_with_token(a, b, opts, token, metrics)
    } else {
        spgemm_serial_with_token(a, b, opts, token, metrics)
    }
}

fn spgemm_serial_with_token(
    a: &CsrMatrix,
    b: &CsrMatrix,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<CsrMatrix> {
    check_dims(a, b)?;
    if opts.panel.engaged() {
        return crate::panel::spgemm_panel(a, b, opts, token, metrics, 1, false);
    }
    let n_rows = a.n_rows();
    let n_cols = b.n_cols();
    let out = run_rows_serial(
        n_rows,
        token,
        &|| RowScratch::new(n_cols),
        &|row, scratch: &mut RowScratch, indices, values, counts| {
            gustavson_row(a, b, row, scratch, opts, indices, values, counts);
        },
    )?;
    out.counts.flush(metrics);
    Ok(CsrMatrix::from_raw_parts_unchecked(
        n_rows,
        n_cols,
        out.indptr,
        out.indices,
        out.values,
    ))
}

/// Parallel SpGEMM: output-row blocks are scheduled over workers with
/// work-stealing; each worker runs Gustavson with its own reusable
/// accumulator, and blocks are stitched together in index order, so the
/// result is identical to the serial kernel for any thread count.
pub fn spgemm_parallel(a: &CsrMatrix, b: &CsrMatrix, opts: &SpgemmOptions) -> Result<CsrMatrix> {
    spgemm_parallel_with_token(a, b, opts, None, None)
}

fn spgemm_parallel_with_token(
    a: &CsrMatrix,
    b: &CsrMatrix,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<CsrMatrix> {
    check_dims(a, b)?;
    if opts.panel.engaged() {
        return crate::panel::spgemm_panel(a, b, opts, token, metrics, opts.n_threads, true);
    }
    let n_rows = a.n_rows();
    let n_cols = b.n_cols();
    let out = run_rows(
        n_rows,
        opts.n_threads,
        token,
        || RowScratch::new(n_cols),
        |row, scratch: &mut RowScratch, indices, values, counts| {
            gustavson_row(a, b, row, scratch, opts, indices, values, counts);
        },
    )?;
    out.counts.flush(metrics);
    out.flush_steals(metrics);
    Ok(CsrMatrix::from_raw_parts_unchecked(
        n_rows,
        n_cols,
        out.indptr,
        out.indices,
        out.values,
    ))
}

/// Estimated number of multiply-adds for `A·B` (the paper's Σᵢ dᵢ² bound
/// specializes this to `A·Aᵀ`). Useful for predicting symmetrization cost.
pub fn spgemm_flops(a: &CsrMatrix, b: &CsrMatrix) -> usize {
    (0..a.n_rows())
        .map(|r| {
            a.row_indices(r)
                .iter()
                .map(|&k| b.row_nnz(k as usize))
                .sum::<usize>()
        })
        .sum()
}

/// Gustavson upper bound on `nnz(A·B)`: every multiply-add produces at most
/// one output entry, so the FLOP count of the row pass bounds the output
/// size. This is the estimate the memory-budget guard compares against its
/// nnz budget *before* allocating anything output-sized.
pub fn spgemm_nnz_upper_bound(a: &CsrMatrix, b: &CsrMatrix) -> usize {
    spgemm_flops(a, b)
}

/// Outcome of [`spgemm_budgeted`]: the product plus degradation provenance.
#[derive(Debug, Clone)]
pub struct BudgetedSpgemm {
    /// The (possibly additionally thresholded) product.
    pub matrix: CsrMatrix,
    /// Whether the budget forced a degraded (adaptively thresholded)
    /// computation instead of the exact one.
    pub degraded: bool,
    /// The threshold in effect when the last row was produced. Equals
    /// `opts.threshold` when not degraded.
    pub threshold_used: f64,
    /// The Gustavson upper bound on the exact output nnz that was compared
    /// against the budget.
    pub estimated_nnz: usize,
}

/// SpGEMM under an output-size budget: if the Gustavson upper bound on
/// `nnz(A·B)` fits within `budget_nnz`, this is an exact (possibly
/// parallel) multiply. Otherwise the multiply degrades gracefully instead
/// of aborting: it runs serially with an *adaptive* threshold — whenever
/// the accumulated output exceeds the budget, the threshold is raised to
/// the magnitude that keeps roughly `budget_nnz / 2` of the strongest
/// entries and the output built so far is compacted. The result is a
/// deterministic, thresholded approximation whose memory never grows
/// past O(`budget_nnz`) plus one dense accumulator row.
pub fn spgemm_budgeted(
    a: &CsrMatrix,
    b: &CsrMatrix,
    opts: &SpgemmOptions,
    budget_nnz: usize,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<BudgetedSpgemm> {
    check_dims(a, b)?;
    if budget_nnz == 0 {
        return Err(SparseError::InvalidArgument(
            "spgemm budget must be positive".into(),
        ));
    }
    let estimated_nnz = spgemm_nnz_upper_bound(a, b);
    if estimated_nnz <= budget_nnz {
        let matrix = if opts.n_threads != 1 {
            spgemm_parallel_with_token(a, b, opts, token, metrics)?
        } else {
            spgemm_serial_with_token(a, b, opts, token, metrics)?
        };
        return Ok(BudgetedSpgemm {
            matrix,
            degraded: false,
            threshold_used: opts.threshold,
            estimated_nnz,
        });
    }

    // Degraded path: serial Gustavson with adaptive thresholding.
    if let Some(m) = metrics {
        m.counter(metric_names::DEGRADED_FALLBACKS).inc();
    }
    let mut compactions = 0u64;
    let n_rows = a.n_rows();
    let n_cols = b.n_cols();
    let mut scratch = RowScratch::new(n_cols);
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut live_opts = opts.clone();
    let mut counts = SpgemmCounts::default();
    for row in 0..n_rows {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        gustavson_row(
            a,
            b,
            row,
            &mut scratch,
            &live_opts,
            &mut indices,
            &mut values,
            &mut counts,
        );
        indptr.push(indices.len());
        if values.len() > budget_nnz {
            live_opts.threshold = raised_threshold(&values, live_opts.threshold, budget_nnz);
            compact_thresholded(&mut indptr, &mut indices, &mut values, live_opts.threshold);
            compactions += 1;
        }
    }
    // Compactions may have removed entries counted as emitted; the final
    // output length is the true final nnz.
    counts.emitted = indices.len() as u64;
    counts.flush(metrics);
    if let Some(m) = metrics {
        m.counter(metric_names::BUDGET_COMPACTIONS).add(compactions);
    }
    Ok(BudgetedSpgemm {
        matrix: CsrMatrix::from_raw_parts_unchecked(n_rows, n_cols, indptr, indices, values),
        degraded: true,
        threshold_used: live_opts.threshold,
        estimated_nnz,
    })
}

/// The adaptive-threshold raise used by the budget-degraded paths: the
/// magnitude of the ~(budget/2)-th strongest entry seen so far. Halving
/// (instead of trimming to exactly the budget) keeps compactions O(log)
/// in number rather than per-row.
pub(crate) fn raised_threshold(values: &[f64], current: f64, budget_nnz: usize) -> f64 {
    let keep = (budget_nnz / 2).max(1);
    let mut mags: Vec<f64> = values.iter().map(|v| v.abs()).collect();
    let kth = keep.min(mags.len()) - 1;
    mags.select_nth_unstable_by(kth, |x, y| y.total_cmp(x));
    current.max(mags[kth])
}

/// Drops entries with `|v| < threshold` from a partially-built CSR triple
/// in place, rewriting `indptr` for the rows emitted so far.
pub(crate) fn compact_thresholded(
    indptr: &mut [usize],
    indices: &mut Vec<u32>,
    values: &mut Vec<f64>,
    threshold: f64,
) {
    let mut write = 0usize;
    let mut read_row_end = 0usize;
    for p in indptr.iter_mut().skip(1) {
        let row_start = read_row_end;
        read_row_end = *p;
        for read in row_start..read_row_end {
            if values[read].abs() >= threshold {
                indices[write] = indices[read];
                values[write] = values[read];
                write += 1;
            }
        }
        *p = write;
    }
    indices.truncate(write);
    values.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::transpose;

    fn dense_mul(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<f64>> {
        let (n, k, m) = (a.n_rows(), a.n_cols(), b.n_cols());
        let da = a.to_dense();
        let db = b.to_dense();
        let mut out = vec![vec![0.0; m]; n];
        for i in 0..n {
            for l in 0..k {
                if da[i][l] == 0.0 {
                    continue;
                }
                for j in 0..m {
                    out[i][j] += da[i][l] * db[l][j];
                }
            }
        }
        out
    }

    #[test]
    fn spgemm_matches_dense_reference() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 2.0, 0.0], vec![0.0, 3.0, 4.0]]);
        let b = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 2.0]]);
        let c = spgemm(&a, &b).unwrap();
        c.validate().unwrap();
        assert_eq!(c.to_dense(), dense_mul(&a, &b));
    }

    #[test]
    fn spgemm_identity_is_noop() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 2.0], vec![3.0, 0.0]]);
        let i = CsrMatrix::identity(2);
        assert_eq!(spgemm(&a, &i).unwrap(), a);
        assert_eq!(spgemm(&i, &a).unwrap(), a);
    }

    #[test]
    fn spgemm_rejects_bad_dims() {
        let a = CsrMatrix::zeros(2, 3);
        let b = CsrMatrix::zeros(2, 3);
        assert!(spgemm(&a, &b).is_err());
    }

    #[test]
    fn aat_is_symmetric_and_counts_common_outlinks() {
        // Figure-1-style: rows 0 and 1 both point at columns 2 and 3.
        let a = CsrMatrix::from_dense(&[
            vec![0.0, 0.0, 1.0, 1.0],
            vec![0.0, 0.0, 1.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
        ]);
        let b = spgemm(&a, &transpose(&a)).unwrap();
        assert!(b.is_symmetric(0.0));
        assert_eq!(b.get(0, 1), 2.0); // two shared out-links
        assert_eq!(b.get(0, 0), 2.0); // self-similarity = out-degree
        assert_eq!(b.get(2, 3), 0.0);
    }

    #[test]
    fn threshold_prunes_small_products() {
        let a = CsrMatrix::from_dense(&[vec![0.5, 1.0], vec![1.0, 1.0]]);
        let opts = SpgemmOptions {
            threshold: 1.2,
            ..Default::default()
        };
        let c = spgemm_thresholded(&a, &a, &opts).unwrap();
        let full = spgemm(&a, &a).unwrap();
        for (r, col, v) in full.iter() {
            if v.abs() >= 1.2 {
                assert_eq!(c.get(r, col as usize), v);
            } else {
                assert_eq!(c.get(r, col as usize), 0.0);
            }
        }
    }

    #[test]
    fn drop_diagonal_option() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let opts = SpgemmOptions {
            drop_diagonal: true,
            ..Default::default()
        };
        let c = spgemm_thresholded(&a, &a, &opts).unwrap();
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(1, 1), 0.0);
        assert_eq!(c.get(0, 1), 2.0);
    }

    fn pseudo_random_matrix(n: usize, seed: u64, density_shift: u32) -> CsrMatrix {
        let mut rows = vec![vec![0.0; n]; n];
        let mut state = seed;
        for r in rows.iter_mut() {
            for v in r.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> (64 - density_shift) == 0 {
                    *v = ((state >> 32) % 7 + 1) as f64;
                }
            }
        }
        CsrMatrix::from_dense(&rows)
    }

    #[test]
    fn parallel_matches_serial() {
        // Deterministic pseudo-random matrix, large enough to split.
        let a = pseudo_random_matrix(64, 0x243F6A8885A308D3, 4);
        let serial = spgemm(&a, &a).unwrap();
        let opts = SpgemmOptions {
            n_threads: 4,
            ..Default::default()
        };
        let parallel = spgemm_parallel(&a, &a, &opts).unwrap();
        parallel.validate().unwrap();
        assert_eq!(serial.indptr(), parallel.indptr());
        assert_eq!(serial.indices(), parallel.indices());
        for (s, p) in serial.values().iter().zip(parallel.values()) {
            assert!((s - p).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_is_identical_across_thread_counts() {
        // Bit-identical output regardless of scheduling: the block
        // assembly is deterministic even when every block is stolen.
        let a = pseudo_random_matrix(200, 0x9E3779B97F4A7C15, 3);
        let serial = spgemm(&a, &a).unwrap();
        for n_threads in [2, 3, 5, 8] {
            let opts = SpgemmOptions {
                n_threads,
                ..Default::default()
            };
            let parallel = spgemm_parallel(&a, &a, &opts).unwrap();
            assert_eq!(serial, parallel, "thread count {n_threads}");
        }
    }

    #[test]
    fn parallel_small_input_falls_back_to_serial() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let opts = SpgemmOptions {
            n_threads: 8,
            ..Default::default()
        };
        let c = spgemm_parallel(&a, &a, &opts).unwrap();
        assert_eq!(c, spgemm(&a, &a).unwrap());
    }

    #[test]
    fn worker_panic_becomes_error_not_abort() {
        // A panic inside a worker's row kernel must surface as
        // SparseError::WorkerPanic from the runner, not kill the process.
        let err = run_rows(
            1024,
            4,
            None,
            || (),
            |row, _scratch: &mut (), indices, values, _counts| {
                if row == 700 {
                    panic!("injected row failure");
                }
                indices.push(0);
                values.push(1.0);
            },
        )
        .unwrap_err();
        match err {
            SparseError::WorkerPanic(msg) => assert!(msg.contains("injected row failure")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn steals_counter_is_recorded_for_parallel_runs() {
        let a = pseudo_random_matrix(300, 0x243F6A8885A308D3, 3);
        let m = MetricsRegistry::new();
        let opts = SpgemmOptions {
            n_threads: 4,
            ..Default::default()
        };
        spgemm_observed(&a, &a, &opts, None, Some(&m)).unwrap();
        // The steal count itself is scheduling-dependent; what is
        // guaranteed is that the counter exists after a parallel run.
        assert!(m.snapshot().counter(metric_names::SCHED_STEALS).is_some());
    }

    #[test]
    fn cancelled_token_aborts_serial_and_parallel() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let serial = spgemm_cancellable(&a, &a, &SpgemmOptions::default(), &token);
        assert_eq!(serial, Err(SparseError::Cancelled));
        let opts = SpgemmOptions {
            n_threads: 4,
            ..Default::default()
        };
        let parallel = spgemm_cancellable(&a, &a, &opts, &token);
        assert_eq!(parallel, Err(SparseError::Cancelled));
    }

    #[test]
    fn cancelled_token_aborts_large_parallel_multiply() {
        // Large enough that the parallel path actually spawns workers.
        let a = pseudo_random_matrix(128, 0x243F6A8885A308D3, 3);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let opts = SpgemmOptions {
            n_threads: 4,
            ..Default::default()
        };
        let r = spgemm_cancellable(&a, &a, &opts, &token);
        assert_eq!(r, Err(SparseError::Cancelled));
    }

    #[test]
    fn live_token_matches_uncancelled_result() {
        let a = CsrMatrix::from_dense(&[
            vec![1.0, 2.0, 0.0],
            vec![0.0, 3.0, 4.0],
            vec![1.0, 0.0, 1.0],
        ]);
        let token = crate::cancel::CancelToken::new();
        let c = spgemm_cancellable(&a, &a, &SpgemmOptions::default(), &token).unwrap();
        assert_eq!(c, spgemm(&a, &a).unwrap());
    }

    #[test]
    fn flops_estimate_matches_structure() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        // row0 of A hits rows 0 and 1 of B (nnz 2 + 1), row1 hits row 1 (1).
        assert_eq!(spgemm_flops(&a, &a), 4);
        assert_eq!(spgemm_nnz_upper_bound(&a, &a), 4);
    }

    #[test]
    fn budgeted_within_budget_is_exact() {
        let a = CsrMatrix::from_dense(&[
            vec![1.0, 2.0, 0.0],
            vec![0.0, 3.0, 4.0],
            vec![1.0, 0.0, 1.0],
        ]);
        let r = spgemm_budgeted(&a, &a, &SpgemmOptions::default(), 1_000_000, None, None).unwrap();
        assert!(!r.degraded);
        assert_eq!(r.threshold_used, 0.0);
        assert_eq!(r.matrix, spgemm(&a, &a).unwrap());
        assert!(r.estimated_nnz >= r.matrix.nnz());
    }

    #[test]
    fn budgeted_over_budget_degrades_and_respects_budget() {
        // Dense-ish 32x32 product: exact output has ~1024 entries.
        let n = 32;
        let mut rows = vec![vec![0.0; n]; n];
        let mut state = 0x9E3779B97F4A7C15u64;
        for r in rows.iter_mut() {
            for v in r.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = ((state >> 56) % 5) as f64; // many nonzeros, varied values
            }
        }
        let a = CsrMatrix::from_dense(&rows);
        let budget = 64;
        let r = spgemm_budgeted(&a, &a, &SpgemmOptions::default(), budget, None, None).unwrap();
        assert!(r.degraded);
        assert!(r.threshold_used > 0.0);
        assert!(r.estimated_nnz > budget);
        // The final compaction keeps the output near the budget (it can
        // exceed budget only transiently, between compactions).
        assert!(
            r.matrix.nnz() <= budget + n,
            "nnz {} way over budget {budget}",
            r.matrix.nnz()
        );
        r.matrix.validate().unwrap();
        // Every surviving entry matches the exact product and passes the
        // final threshold.
        let exact = spgemm(&a, &a).unwrap();
        for (row, col, v) in r.matrix.iter() {
            assert!((exact.get(row, col as usize) - v).abs() < 1e-12);
            assert!(v.abs() >= r.threshold_used);
        }
        // Degraded output is deterministic.
        let again = spgemm_budgeted(&a, &a, &SpgemmOptions::default(), budget, None, None).unwrap();
        assert_eq!(r.matrix, again.matrix);
    }

    #[test]
    fn observed_records_exact_work_counters() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        let m = MetricsRegistry::new();
        let opts = SpgemmOptions {
            n_threads: 1,
            ..Default::default()
        };
        let c = spgemm_observed(&a, &a, &opts, None, Some(&m)).unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.counter(metric_names::CALLS), Some(1));
        assert_eq!(snap.counter(metric_names::ROWS), Some(2));
        assert_eq!(
            snap.counter(metric_names::FLOPS),
            Some(spgemm_flops(&a, &a) as u64)
        );
        assert_eq!(snap.counter(metric_names::NNZ_FINAL), Some(c.nnz() as u64));
        // No threshold, positive values: nothing dropped.
        assert_eq!(snap.counter(metric_names::THRESHOLD_DROPPED), Some(0));
        assert_eq!(
            snap.counter(metric_names::NNZ_INTERMEDIATE),
            Some(c.nnz() as u64)
        );
    }

    #[test]
    fn parallel_observed_counters_match_serial() {
        let a = pseudo_random_matrix(64, 0x243F6A8885A308D3, 4);
        let serial = MetricsRegistry::new();
        let serial_opts = SpgemmOptions {
            n_threads: 1,
            ..Default::default()
        };
        spgemm_observed(&a, &a, &serial_opts, None, Some(&serial)).unwrap();
        let parallel = MetricsRegistry::new();
        let parallel_opts = SpgemmOptions {
            n_threads: 4,
            ..Default::default()
        };
        spgemm_observed(&a, &a, &parallel_opts, None, Some(&parallel)).unwrap();
        for key in [
            metric_names::ROWS,
            metric_names::FLOPS,
            metric_names::NNZ_INTERMEDIATE,
            metric_names::NNZ_FINAL,
            metric_names::THRESHOLD_DROPPED,
        ] {
            assert_eq!(
                serial.snapshot().counter(key),
                parallel.snapshot().counter(key),
                "{key} differs between serial and parallel"
            );
        }
    }

    #[test]
    fn budgeted_degraded_records_fallback_and_compactions() {
        let n = 32;
        let mut rows = vec![vec![0.0; n]; n];
        let mut state = 0x9E3779B97F4A7C15u64;
        for r in rows.iter_mut() {
            for v in r.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *v = ((state >> 56) % 5) as f64;
            }
        }
        let a = CsrMatrix::from_dense(&rows);
        let m = MetricsRegistry::new();
        let r = spgemm_budgeted(&a, &a, &SpgemmOptions::default(), 64, None, Some(&m)).unwrap();
        assert!(r.degraded);
        let snap = m.snapshot();
        assert_eq!(snap.counter(metric_names::DEGRADED_FALLBACKS), Some(1));
        assert!(snap.counter(metric_names::BUDGET_COMPACTIONS).unwrap() > 0);
        assert_eq!(
            snap.counter(metric_names::NNZ_FINAL),
            Some(r.matrix.nnz() as u64)
        );
    }

    #[test]
    fn budgeted_rejects_zero_budget_and_honors_cancellation() {
        let a = CsrMatrix::from_dense(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(spgemm_budgeted(&a, &a, &SpgemmOptions::default(), 0, None, None).is_err());
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let r = spgemm_budgeted(&a, &a, &SpgemmOptions::default(), 1, Some(&token), None);
        assert_eq!(r.err(), Some(SparseError::Cancelled));
    }
}

//! Symmetric Lanczos eigensolver with full reorthogonalization.
//!
//! The BestWCut baseline (Meila & Pentney, SDM'07) post-processes the
//! eigenvectors of a symmetric Laplacian; this module provides the smallest
//! `k` eigenpairs of a symmetric sparse matrix. The Krylov basis is kept
//! fully reorthogonalized — for the modest `k` (tens) and matrix sizes here
//! the O(n·m²) cost is irrelevant next to correctness, and it avoids the
//! ghost-eigenvalue pathology of plain Lanczos.
//!
//! The projected tridiagonal problem is solved by the classic implicit-QL
//! algorithm with Wilkinson shifts (EISPACK `tql2`), implemented here.

use crate::cancel::CancelToken;
use crate::csr::CsrMatrix;
use crate::dense;
use crate::error::SparseError;
use crate::Result;

/// Options for the Lanczos iteration.
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Maximum Krylov subspace dimension (0 means `min(n, 4k + 32)`).
    pub max_subspace: usize,
    /// Residual tolerance for Ritz pair convergence.
    pub tol: f64,
    /// Seed for the deterministic start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_subspace: 0,
            tol: 1e-8,
            seed: 0x5EED_1234_ABCD,
        }
    }
}

/// Converged eigenpairs, eigenvalues ascending.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors, one `Vec<f64>` of length `n` per eigenvalue.
    pub eigenvectors: Vec<Vec<f64>>,
    /// Krylov subspace dimension actually used.
    pub subspace_dim: usize,
}

/// Simple deterministic xorshift generator for start vectors; keeps the
/// crate free of a `rand` dependency.
fn xorshift_vec(n: usize, mut state: u64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to (-1, 1), avoiding exact zeros.
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0 + 1e-12
        })
        .collect()
}

/// Computes eigenvalues and eigenvectors of a symmetric tridiagonal matrix
/// with diagonal `d` and off-diagonal `e` (`e.len() == d.len() - 1`), using
/// implicit QL with Wilkinson shifts. Returns `(eigenvalues, z)` where `z`
/// is column-major: `z[j]` is the eigenvector for `eigenvalues[j]`.
pub fn tridiagonal_eigen(d: &[f64], e: &[f64]) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = d.len();
    if n == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    if e.len() + 1 != n {
        return Err(SparseError::InvalidArgument(format!(
            "tridiagonal_eigen: e.len() {} != d.len()-1 {}",
            e.len(),
            n - 1
        )));
    }
    let mut d = d.to_vec();
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();
    // z is stored row-major as an n x n identity to accumulate rotations:
    // z[i][j] = component i of eigenvector j.
    let mut z = vec![vec![0.0f64; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(SparseError::NoConvergence {
                    what: "tridiagonal QL",
                    iterations: 50,
                });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut i = m;
            while i > l {
                i -= 1;
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && i > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    // Sort ascending, carrying eigenvectors along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]));
    let eigenvalues: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|i| z[i][j]).collect())
        .collect();
    Ok((eigenvalues, eigenvectors))
}

/// Computes the `k` smallest eigenpairs of the symmetric matrix `a`.
pub fn lanczos_smallest(a: &CsrMatrix, k: usize, opts: &LanczosOptions) -> Result<LanczosResult> {
    lanczos_smallest_with(a, k, opts, None)
}

/// [`lanczos_smallest`] that polls `token` once per Lanczos step (one
/// matrix–vector product plus reorthogonalization) and bails out with
/// [`SparseError::Cancelled`] when it trips. The Krylov basis is local to
/// the call, so cancellation leaves no poisoned state behind.
pub fn lanczos_smallest_cancellable(
    a: &CsrMatrix,
    k: usize,
    opts: &LanczosOptions,
    token: &CancelToken,
) -> Result<LanczosResult> {
    lanczos_smallest_with(a, k, opts, Some(token))
}

fn lanczos_smallest_with(
    a: &CsrMatrix,
    k: usize,
    opts: &LanczosOptions,
    token: Option<&CancelToken>,
) -> Result<LanczosResult> {
    let n = a.n_rows();
    if a.n_cols() != n {
        return Err(SparseError::DimensionMismatch {
            op: "lanczos",
            lhs: (a.n_rows(), a.n_cols()),
            rhs: (n, n),
        });
    }
    if k == 0 {
        return Err(SparseError::InvalidArgument("k must be positive".into()));
    }
    if k > n {
        return Err(SparseError::InvalidArgument(format!(
            "requested {k} eigenpairs from a {n}x{n} matrix"
        )));
    }
    let m_max = if opts.max_subspace == 0 {
        (4 * k + 32).min(n)
    } else {
        opts.max_subspace.min(n)
    };

    // Krylov basis vectors (each of length n), alpha/beta of the tridiagonal.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m_max);
    let mut alpha: Vec<f64> = Vec::with_capacity(m_max);
    let mut beta: Vec<f64> = Vec::with_capacity(m_max);

    let mut v = xorshift_vec(n, opts.seed);
    dense::normalize2(&mut v);
    basis.push(v);

    for j in 0..m_max {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        let vj = basis[j].clone();
        let mut w = a.mul_vec(&vj)?;
        let aj = dense::dot(&w, &vj);
        alpha.push(aj);
        dense::axpy(-aj, &vj, &mut w);
        if j > 0 {
            let bj = beta[j - 1];
            let prev = &basis[j - 1].clone();
            dense::axpy(-bj, prev, &mut w);
        }
        // Full reorthogonalization (twice for stability).
        for _ in 0..2 {
            for q in basis.iter() {
                let c = dense::dot(&w, q);
                if c != 0.0 {
                    dense::axpy(-c, q, &mut w);
                }
            }
        }
        let bj = dense::norm2(&w);
        if j + 1 == m_max {
            break;
        }
        if bj < 1e-13 {
            // Invariant subspace found. Restart with a fresh orthogonal
            // direction: degenerate eigenvalues contribute only one copy per
            // start vector, so stopping here could miss multiplicities.
            let mut fresh = xorshift_vec(n, opts.seed.wrapping_add(j as u64 + 1));
            for q in basis.iter() {
                let c = dense::dot(&fresh, q);
                dense::axpy(-c, q, &mut fresh);
            }
            if dense::normalize2(&mut fresh) < 1e-13 {
                break; // full space exhausted
            }
            beta.push(0.0);
            basis.push(fresh);
            continue;
        }
        beta.push(bj);
        dense::scale(&mut w, 1.0 / bj);
        basis.push(w);
    }

    let m = alpha.len();
    let (evals, tvecs) = tridiagonal_eigen(&alpha, &beta[..m.saturating_sub(1)])?;
    let k_eff = k.min(m);
    let mut eigenvalues = Vec::with_capacity(k_eff);
    let mut eigenvectors = Vec::with_capacity(k_eff);
    for idx in 0..k_eff {
        let lambda = evals[idx];
        let s = &tvecs[idx];
        let mut vec = vec![0.0f64; n];
        for (q, &si) in basis.iter().zip(s.iter()) {
            dense::axpy(si, q, &mut vec);
        }
        dense::normalize2(&mut vec);
        eigenvalues.push(lambda);
        eigenvectors.push(vec);
    }
    Ok(LanczosResult {
        eigenvalues,
        eigenvectors,
        subspace_dim: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn laplacian_path(n: usize) -> CsrMatrix {
        // Path graph Laplacian: known eigenvalues 2 - 2cos(pi k / n).
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut deg = 0.0;
            if i > 0 {
                coo.push(i, i - 1, -1.0).unwrap();
                deg += 1.0;
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0).unwrap();
                deg += 1.0;
            }
            coo.push(i, i, deg).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn tridiagonal_eigen_diagonal_matrix() {
        let (vals, vecs) = tridiagonal_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
        // Eigenvector for eigenvalue 1.0 is e_1.
        assert!((vecs[0][1].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tridiagonal_eigen_2x2_hand_computed() {
        // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
        let (vals, vecs) = tridiagonal_eigen(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Eigenvector for 1: (1, -1)/sqrt(2)
        let v = &vecs[0];
        assert!((v[0] + v[1]).abs() < 1e-10);
    }

    #[test]
    fn tridiagonal_rejects_bad_lengths() {
        assert!(tridiagonal_eigen(&[1.0, 2.0], &[0.1, 0.2]).is_err());
    }

    #[test]
    fn tridiagonal_empty() {
        let (vals, vecs) = tridiagonal_eigen(&[], &[]).unwrap();
        assert!(vals.is_empty());
        assert!(vecs.is_empty());
    }

    #[test]
    fn lanczos_finds_smallest_of_path_laplacian() {
        let n = 30;
        let l = laplacian_path(n);
        let r = lanczos_smallest(&l, 3, &LanczosOptions::default()).unwrap();
        // Path Laplacian eigenvalues: 4 sin^2(pi k / (2n)), k = 0..n-1.
        for (k, &lam) in r.eigenvalues.iter().enumerate() {
            let expected = 4.0
                * (std::f64::consts::PI * k as f64 / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!(
                (lam - expected).abs() < 1e-6,
                "eigenvalue {k}: got {lam}, want {expected}"
            );
        }
        // Smallest eigenvector of a Laplacian is constant.
        let v0 = &r.eigenvectors[0];
        let mean = v0.iter().sum::<f64>() / n as f64;
        for &x in v0 {
            assert!((x - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn lanczos_eigenpairs_satisfy_av_eq_lambda_v() {
        let l = laplacian_path(20);
        let r = lanczos_smallest(&l, 4, &LanczosOptions::default()).unwrap();
        for (lam, v) in r.eigenvalues.iter().zip(&r.eigenvectors) {
            let av = l.mul_vec(v).unwrap();
            for (a, b) in av.iter().zip(v.iter()) {
                assert!((a - lam * b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn lanczos_eigenvectors_are_orthonormal() {
        let l = laplacian_path(25);
        let r = lanczos_smallest(&l, 5, &LanczosOptions::default()).unwrap();
        for i in 0..r.eigenvectors.len() {
            for j in 0..r.eigenvectors.len() {
                let d = dense::dot(&r.eigenvectors[i], &r.eigenvectors[j]);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-6, "({i},{j}) dot = {d}");
            }
        }
    }

    #[test]
    fn lanczos_handles_disconnected_graph() {
        // Two disjoint edges: Laplacian has a 2-dimensional null space.
        let mut coo = CooMatrix::new(4, 4);
        for &(u, v) in &[(0usize, 1usize), (2, 3)] {
            coo.push(u, v, -1.0).unwrap();
            coo.push(v, u, -1.0).unwrap();
            coo.push(u, u, 1.0).unwrap();
            coo.push(v, v, 1.0).unwrap();
        }
        let l = coo.to_csr();
        let r = lanczos_smallest(&l, 2, &LanczosOptions::default()).unwrap();
        assert!(r.eigenvalues[0].abs() < 1e-8);
        assert!(r.eigenvalues[1].abs() < 1e-8);
    }

    #[test]
    fn lanczos_rejects_bad_args() {
        let l = laplacian_path(5);
        assert!(lanczos_smallest(&l, 0, &LanczosOptions::default()).is_err());
        assert!(lanczos_smallest(&l, 6, &LanczosOptions::default()).is_err());
        let rect = CsrMatrix::zeros(2, 3);
        assert!(lanczos_smallest(&rect, 1, &LanczosOptions::default()).is_err());
    }

    #[test]
    fn lanczos_full_space_small_matrix() {
        let l = laplacian_path(4);
        let r = lanczos_smallest(&l, 4, &LanczosOptions::default()).unwrap();
        assert_eq!(r.eigenvalues.len(), 4);
        // Trace check: sum of eigenvalues == trace of Laplacian (= 2*(n-1)).
        let total: f64 = r.eigenvalues.iter().sum();
        assert!((total - 6.0).abs() < 1e-6);
    }

    #[test]
    fn lanczos_live_token_matches_plain() {
        let l = laplacian_path(20);
        let token = CancelToken::new();
        let plain = lanczos_smallest(&l, 3, &LanczosOptions::default()).unwrap();
        let with_token =
            lanczos_smallest_cancellable(&l, 3, &LanczosOptions::default(), &token).unwrap();
        assert_eq!(plain.eigenvalues, with_token.eigenvalues);
        assert_eq!(plain.subspace_dim, with_token.subspace_dim);
    }

    #[test]
    fn lanczos_cancel_mid_iteration_returns_promptly_without_poisoned_state() {
        // Large path Laplacian with the full space as subspace budget: each
        // step is a matvec plus reorthogonalization against the whole basis,
        // so the run takes long enough for a mid-flight cancel to land.
        let n = 3000;
        let l = laplacian_path(n);
        let slow = LanczosOptions {
            max_subspace: n,
            tol: 0.0,
            ..Default::default()
        };
        let token = CancelToken::new();
        let canceller = token.clone();
        let started = std::time::Instant::now();
        let result = crossbeam::thread::scope(|scope| {
            let handle = scope.spawn(|_| lanczos_smallest_cancellable(&l, 2, &slow, &token));
            std::thread::sleep(std::time::Duration::from_millis(30));
            canceller.cancel();
            handle.join().expect("lanczos worker panicked")
        })
        .expect("scope");
        assert!(
            matches!(result, Err(SparseError::Cancelled)),
            "expected cancellation, got {result:?}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "cancellation was not prompt"
        );
        // No poisoned state: the same matrix solves fine afterwards. A
        // 40-dim Krylov space only approximates the n=3000 spectrum, so we
        // check sanity (finite, ascending, near the low end) not exactness.
        let again = lanczos_smallest(&l, 2, &LanczosOptions::default()).unwrap();
        assert_eq!(again.eigenvalues.len(), 2);
        assert!(again.eigenvalues.iter().all(|x| x.is_finite()));
        assert!(again.eigenvalues[0] <= again.eigenvalues[1]);
        assert!(again.eigenvalues[0] > -1e-8 && again.eigenvalues[0] < 0.1);
    }
}

//! Out-of-core 2D panel-partitioned SpGEMM.
//!
//! The in-memory kernels in [`crate::spgemm`] and [`crate::syrk`] hold the
//! whole intermediate product in RAM. This module splits the output into a
//! 2D grid of **tiles** — row panels × column panels of `panel_rows` rows
//! and columns each — and streams the tiles through the same work-stealing
//! scheduler the row kernels use ([`crate::sched`]), one tile per
//! scheduling block. Each tile computes the *complete* restriction of its
//! output rows to its column range (the inner `k` loop is never split), so
//! thresholding, `drop_diagonal` and per-entry emission all work per tile
//! exactly as they do in memory.
//!
//! ## Bit-identity with the in-memory path
//!
//! Restricting a row's scatter/gather to the sorted column subrange
//! `[c_lo, c_hi)` (found with two `partition_point`s) preserves, for every
//! output column `j`, the exact sequence of `f64` adds the in-memory kernel
//! performs for `j`: products are generated in the same ascending-`k`
//! (and, for SYRK sums, term-major) order and accumulate from the same
//! `0.0` first touch. The sparse strategy's stable sort preserves the same
//! order per column. Tiles are concatenated in ascending column-panel order
//! per row, so each merged row is the in-memory row, bit for bit — at any
//! panel size, thread count, or spill budget.
//!
//! Every deterministic work counter also matches: tile column ranges
//! partition the full column range, so per-tile FLOP / touched / emitted
//! counts sum to the in-memory totals, and the per-row counters
//! (`rows`, `rows_dense`, `rows_sparse`) are counted once, on the row
//! panel's *owner* tile, using the **full-row** width estimate — the same
//! estimate the in-memory kernel uses — so the strategy mix is identical.
//!
//! ## Spilling
//!
//! When a [`PanelPlan::budget_bytes`] is set, tiles whose cumulative
//! estimated intermediate size exceeds the budget write their partial
//! products to scratch files through [`crate::spill`] (the only module
//! allowed to touch the filesystem) and are streamed back, row by row,
//! during the deterministic merge. The spill decision is made from a
//! structure-only estimate *before* execution, so `spgemm.panel_spills`
//! and `spgemm.spill_bytes` never depend on scheduling. Scratch files live
//! in a process-unique RAII directory that is removed on success, error,
//! cancellation, and panic.

use std::path::PathBuf;

use crate::accum::{
    gather_scaled, gather_scaled_term, reduce_pairs, reduce_pairs_terms, scatter_scaled,
    scatter_scaled_seen,
};
use crate::cancel::CancelToken;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::sched::BlockQueues;
use crate::spgemm::{
    emits, panic_text, resolve_threads, RowKernelOutput, RowScratch, SpgemmCounts, SpgemmOptions,
};
use crate::spill::{self, SpillDir, TileReader};
use crate::syrk::{flush_syrk, mirror_upper, SyrkScratch, SyrkTerm};
use crate::Result;
use symclust_obs::MetricsRegistry;

/// Default rows (and columns) per panel when a [`PanelPlan`] is engaged
/// without an explicit size. Large enough that panel bookkeeping is noise
/// on in-memory-sized graphs, small enough that one tile's intermediate
/// fits comfortably in RAM at paper scale.
pub const DEFAULT_PANEL_ROWS: usize = 4096;

/// Out-of-core execution plan for SpGEMM, threaded through
/// [`SpgemmOptions`]. The plan changes *where* the multiply runs — never
/// its output bytes or deterministic work counters — so, like the thread
/// and accumulator knobs, it must never reach cache keys (enforced by the
/// `cache-key-purity` lint).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PanelPlan {
    /// Rows (and columns) per panel. `None` or `Some(0)` means
    /// [`DEFAULT_PANEL_ROWS`] when the plan is otherwise engaged.
    pub panel_rows: Option<usize>,
    /// Directory under which per-multiply scratch directories are created.
    /// `None` uses the OS temp dir.
    pub spill_dir: Option<PathBuf>,
    /// Estimated-intermediate byte budget: tiles past the cumulative
    /// budget spill to scratch files. `None` keeps every tile in memory.
    pub budget_bytes: Option<usize>,
}

impl PanelPlan {
    /// Whether the panel path should run at all. A default plan is
    /// disengaged: the kernels use the ordinary in-memory path.
    pub fn engaged(&self) -> bool {
        self.panel_rows.is_some() || self.budget_bytes.is_some()
    }

    /// The panel size this plan resolves to.
    pub fn effective_panel_rows(&self) -> usize {
        self.panel_rows
            .filter(|&r| r > 0)
            .unwrap_or(DEFAULT_PANEL_ROWS)
    }

    /// Builds a plan from the `SYMCLUST_PANEL_ROWS` (panel size) and
    /// `SYMCLUST_MEMORY_BUDGET` (spill byte budget) environment variables.
    /// Unset, unparsable, or zero values mean "no preference"; if both are
    /// absent the plan is disengaged and the kernels run in memory.
    pub fn from_env() -> PanelPlan {
        fn env_usize(name: &str) -> Option<usize> {
            std::env::var(name)
                .ok()?
                .trim()
                .parse()
                .ok()
                .filter(|&v| v > 0)
        }
        PanelPlan {
            panel_rows: env_usize("SYMCLUST_PANEL_ROWS"),
            spill_dir: None,
            budget_bytes: env_usize("SYMCLUST_MEMORY_BUDGET"),
        }
    }
}

/// One computed tile's payload: in memory, or spilled (byte count; the
/// entries live in the scratch file until the merge reads them back).
enum TileBody {
    InMem(Vec<u32>, Vec<f64>),
    Spilled(u64),
}

/// One finished tile, tagged for deterministic merge order. Row lengths
/// are always kept in memory (one `u32` per panel row) so the merge knows
/// how much of each spilled file belongs to each row.
struct TileOut {
    tile: usize,
    row_lens: Vec<u32>,
    body: TileBody,
}

/// Buffers a tile kernel fills: per-row segment lengths plus the
/// concatenated entries in row-major, ascending-column order.
#[derive(Default)]
struct TileData {
    row_lens: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

/// Deterministic spill plan: accumulate each tile's estimated intermediate
/// bytes in tile-index order; tiles past the budget spill. Independent of
/// scheduling, so the spill counters are bench-gateable.
fn plan_spills(
    n_tiles: usize,
    budget_bytes: Option<usize>,
    est: impl Fn(usize) -> u64,
) -> (Vec<bool>, usize) {
    let mut flags = vec![false; n_tiles];
    let Some(budget) = budget_bytes else {
        return (flags, 0);
    };
    let budget = budget as u64;
    let mut running = 0u64;
    let mut n_spilled = 0usize;
    for (tile, flag) in flags.iter_mut().enumerate() {
        running = running.saturating_add(est(tile));
        if running > budget {
            *flag = true;
            n_spilled += 1;
        }
    }
    (flags, n_spilled)
}

/// Routes a computed tile to memory or disk per the spill plan.
fn finish_tile(
    tile: usize,
    data: TileData,
    spill: &[bool],
    dir: Option<&SpillDir>,
    spill_bytes: &mut u64,
) -> Result<TileOut> {
    let body = match dir {
        Some(d) if spill[tile] => {
            let bytes = spill::write_tile(
                &d.tile_path(tile),
                &data.row_lens,
                &data.indices,
                &data.values,
            )?;
            *spill_bytes += bytes;
            TileBody::Spilled(bytes)
        }
        _ => TileBody::InMem(data.indices, data.values),
    };
    Ok(TileOut {
        tile,
        row_lens: data.row_lens,
        body,
    })
}

/// Runs `tile_kernel` over every tile, serially or under the work-stealing
/// scheduler (one tile per scheduling block), writing tiles the spill plan
/// marked to scratch files as they finish. Returns the tiles sorted by
/// index, the merged work counters, the steal count, and the bytes
/// spilled. Mirrors [`crate::spgemm::run_rows`]'s panic and error
/// semantics: worker panics become [`SparseError::WorkerPanic`] and real
/// failures outrank cancellation.
fn run_tiles<S, N, K>(
    n_tiles: usize,
    n_threads: usize,
    spill: &[bool],
    dir: Option<&SpillDir>,
    new_scratch: N,
    tile_kernel: K,
) -> Result<(Vec<TileOut>, SpgemmCounts, u64, u64)>
where
    N: Fn() -> S + Sync,
    K: Fn(usize, &mut S, &mut TileData, &mut SpgemmCounts) -> Result<()> + Sync,
{
    let n_threads = resolve_threads(n_threads);
    if n_threads <= 1 || n_tiles < 2 * n_threads {
        let mut scratch = new_scratch();
        let mut outs = Vec::with_capacity(n_tiles);
        let mut counts = SpgemmCounts::default();
        let mut spill_bytes = 0u64;
        for tile in 0..n_tiles {
            let mut data = TileData::default();
            tile_kernel(tile, &mut scratch, &mut data, &mut counts)?;
            outs.push(finish_tile(tile, data, spill, dir, &mut spill_bytes)?);
        }
        return Ok((outs, counts, 0, spill_bytes));
    }

    let n_workers = n_threads.min(n_tiles);
    let queues = BlockQueues::new(n_tiles, n_workers);
    type WorkerResult = Result<(Vec<TileOut>, SpgemmCounts, u64, u64)>;
    let mut worker_results: Vec<WorkerResult> = Vec::with_capacity(n_workers);
    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let queues = &queues;
            let new_scratch = &new_scratch;
            let tile_kernel = &tile_kernel;
            handles.push(scope.spawn(move |_| -> WorkerResult {
                let body =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> WorkerResult {
                        let mut scratch = new_scratch();
                        let mut outs: Vec<TileOut> = Vec::new();
                        let mut counts = SpgemmCounts::default();
                        let mut steals = 0u64;
                        let mut spill_bytes = 0u64;
                        loop {
                            let (tile, stolen) = match queues.pop_own(w) {
                                Some(t) => (t, false),
                                None => match queues.steal(w) {
                                    Some(t) => (t, true),
                                    None => break,
                                },
                            };
                            steals += u64::from(stolen);
                            let mut data = TileData::default();
                            tile_kernel(tile, &mut scratch, &mut data, &mut counts)?;
                            outs.push(finish_tile(tile, data, spill, dir, &mut spill_bytes)?);
                        }
                        Ok((outs, counts, steals, spill_bytes))
                    }));
                match body {
                    Ok(r) => r,
                    Err(payload) => Err(SparseError::WorkerPanic(panic_text(payload.as_ref()))),
                }
            }));
        }
        for handle in handles {
            worker_results.push(
                handle
                    .join()
                    .unwrap_or_else(|p| Err(SparseError::WorkerPanic(panic_text(p.as_ref())))),
            );
        }
    });
    if let Err(payload) = scope_result {
        return Err(SparseError::WorkerPanic(panic_text(payload.as_ref())));
    }

    // Same error priority as the row runner: a real failure (panic, I/O)
    // beats cancellation.
    let mut cancelled = false;
    let mut outs: Vec<TileOut> = Vec::with_capacity(n_tiles);
    let mut counts = SpgemmCounts::default();
    let mut steals = 0u64;
    let mut spill_bytes = 0u64;
    let mut first_error: Option<SparseError> = None;
    for wr in worker_results {
        match wr {
            Ok((wouts, wcounts, wsteals, wbytes)) => {
                outs.extend(wouts);
                counts.merge(&wcounts);
                steals += wsteals;
                spill_bytes += wbytes;
            }
            Err(SparseError::Cancelled) => cancelled = true,
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    if cancelled {
        return Err(SparseError::Cancelled);
    }
    outs.sort_unstable_by_key(|t| t.tile);
    Ok((outs, counts, steals, spill_bytes))
}

/// Streaming read position into one tile during the merge.
enum Cursor<'a> {
    Mem {
        indices: &'a [u32],
        values: &'a [f64],
        at: usize,
    },
    Disk(TileReader),
}

/// Concatenates tiles into the final CSR triple, row panel by row panel:
/// within a panel, each output row is assembled by appending its segment
/// from every column tile in ascending tile order (in-memory tiles are
/// sliced, spilled tiles streamed back row by row). Tile indices must be
/// contiguous and grouped by row panel — `panel_tile_counts[pi]` tiles for
/// panel `pi`, in order.
fn merge_panel_outputs(
    n_rows: usize,
    panel_rows: usize,
    outs: &[TileOut],
    panel_tile_counts: &[usize],
    dir: Option<&SpillDir>,
) -> Result<(Vec<usize>, Vec<u32>, Vec<f64>)> {
    let total_nnz: usize = outs
        .iter()
        .map(|t| match &t.body {
            TileBody::InMem(i, _) => i.len(),
            TileBody::Spilled(bytes) => (*bytes / 12) as usize,
        })
        .sum();
    let mut indptr = Vec::with_capacity(n_rows + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::with_capacity(total_nnz);
    let mut values: Vec<f64> = Vec::with_capacity(total_nnz);
    let mut tile_at = 0usize;
    for (pi, &n_panel_tiles) in panel_tile_counts.iter().enumerate() {
        let r_lo = pi * panel_rows;
        let r_hi = ((pi + 1) * panel_rows).min(n_rows);
        let panel_tiles = &outs[tile_at..tile_at + n_panel_tiles];
        tile_at += n_panel_tiles;
        let mut cursors: Vec<Cursor<'_>> = Vec::with_capacity(n_panel_tiles);
        for t in panel_tiles {
            cursors.push(match &t.body {
                TileBody::InMem(i, v) => Cursor::Mem {
                    indices: i,
                    values: v,
                    at: 0,
                },
                TileBody::Spilled(_) => {
                    let d = dir.ok_or_else(|| {
                        SparseError::Io("spilled tile without a scratch dir".into())
                    })?;
                    Cursor::Disk(TileReader::open(&d.tile_path(t.tile))?)
                }
            });
        }
        for local in 0..(r_hi - r_lo) {
            for (t, cur) in panel_tiles.iter().zip(cursors.iter_mut()) {
                let len = t.row_lens[local] as usize;
                match cur {
                    Cursor::Mem {
                        indices: ti,
                        values: tv,
                        at,
                    } => {
                        indices.extend_from_slice(&ti[*at..*at + len]);
                        values.extend_from_slice(&tv[*at..*at + len]);
                        *at += len;
                    }
                    Cursor::Disk(reader) => reader.read_row(len, &mut indices, &mut values)?,
                }
            }
            indptr.push(indices.len());
        }
    }
    debug_assert_eq!(indptr.len(), n_rows + 1, "panels must cover every row");
    Ok((indptr, indices, values))
}

/// Computes tile `(pi, pj)` of the general product: the restriction of
/// rows `[r_lo, r_hi)` of `A·B` to columns `[c_lo, c_hi)`. Counter
/// semantics match the in-memory kernel exactly: FLOPs / touched / emitted
/// are counted per tile over the disjoint column ranges (summing to the
/// in-memory totals), per-row counters only on the owner tile `pj == 0`,
/// and the dense/sparse decision uses the full-row width estimate.
#[allow(clippy::too_many_arguments)]
fn gustavson_tile(
    a: &CsrMatrix,
    b: &CsrMatrix,
    rows: (usize, usize),
    cols: (usize, usize),
    owner: bool,
    scratch: &mut RowScratch,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    out: &mut TileData,
    counts: &mut SpgemmCounts,
) -> Result<()> {
    let (r_lo, r_hi) = rows;
    let (c_lo, c_hi) = cols;
    let RowScratch {
        acc,
        touched,
        pairs,
    } = scratch;
    for row in r_lo..r_hi {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        let before = out.indices.len();
        let full_width: usize = a
            .row_indices(row)
            .iter()
            .map(|&k| b.row_nnz(k as usize))
            .sum();
        let dense = opts.row_is_dense(full_width);
        if owner {
            counts.rows += 1;
            if dense {
                counts.rows_dense += 1;
            } else {
                counts.rows_sparse += 1;
            }
        }
        if dense {
            acc.begin_row();
            touched.clear();
            for (k, av) in a.row_iter(row) {
                let bcols = b.row_indices(k as usize);
                let bvals = b.row_values(k as usize);
                let lo = bcols.partition_point(|&j| (j as usize) < c_lo);
                let hi = bcols.partition_point(|&j| (j as usize) < c_hi);
                counts.flops += (hi - lo) as u64;
                scatter_scaled(acc, touched, av, &bcols[lo..hi], &bvals[lo..hi]);
            }
            touched.sort_unstable();
            for &j in touched.iter() {
                let v = acc.get(j);
                if emits(v, j, row, opts) {
                    out.indices.push(j);
                    out.values.push(v);
                }
            }
            counts.touched += touched.len() as u64;
        } else {
            pairs.clear();
            for (k, av) in a.row_iter(row) {
                let bcols = b.row_indices(k as usize);
                let bvals = b.row_values(k as usize);
                let lo = bcols.partition_point(|&j| (j as usize) < c_lo);
                let hi = bcols.partition_point(|&j| (j as usize) < c_hi);
                counts.flops += (hi - lo) as u64;
                gather_scaled(pairs, av, &bcols[lo..hi], &bvals[lo..hi]);
            }
            counts.touched += reduce_pairs(pairs, |j, v| {
                if emits(v, j, row, opts) {
                    out.indices.push(j);
                    out.values.push(v);
                }
            });
        }
        counts.emitted += (out.indices.len() - before) as u64;
        out.row_lens.push((out.indices.len() - before) as u32);
    }
    Ok(())
}

/// Computes tile `(pi, pj)` (with `pj ≥ pi`) of the upper triangle of
/// `Σₜ Xₜ·Xₜᵀ`: rows `[r_lo, r_hi)` restricted to columns
/// `[max(row, c_lo), c_hi)`. The per-`pj` ranges partition each row's
/// in-memory range `[row, n)`, so counters sum exactly; per-row counters
/// are owned by the diagonal tile `pj == pi`.
#[allow(clippy::too_many_arguments)]
fn syrk_tile(
    terms: &[SyrkTerm<'_>],
    rows: (usize, usize),
    cols: (usize, usize),
    owner: bool,
    scratch: &mut SyrkScratch,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    out: &mut TileData,
    counts: &mut SpgemmCounts,
) -> Result<()> {
    let (r_lo, r_hi) = rows;
    let (c_lo, c_hi) = cols;
    let SyrkScratch {
        accs,
        seen,
        touched,
        pairs,
    } = scratch;
    for row in r_lo..r_hi {
        if let Some(t) = token {
            t.checkpoint()?;
        }
        let before = out.indices.len();
        let full_width: usize = terms
            .iter()
            .map(|term| {
                term.x
                    .row_indices(row)
                    .iter()
                    .map(|&k| term.xt.row_nnz(k as usize))
                    .sum::<usize>()
            })
            .sum();
        let dense = opts.row_is_dense(full_width);
        if owner {
            counts.rows += 1;
            if dense {
                counts.rows_dense += 1;
            } else {
                counts.rows_sparse += 1;
            }
        }
        let col_floor = c_lo.max(row);
        let distinct = if dense {
            seen.begin_row();
            touched.clear();
            for (term, acc) in terms.iter().zip(accs.iter_mut()) {
                acc.begin_row();
                for (k, xv) in term.x.row_iter(row) {
                    let tcols = term.xt.row_indices(k as usize);
                    let tvals = term.xt.row_values(k as usize);
                    let lo = tcols.partition_point(|&j| (j as usize) < col_floor);
                    let hi = tcols.partition_point(|&j| (j as usize) < c_hi);
                    counts.flops += (hi - lo) as u64;
                    scatter_scaled_seen(acc, seen, touched, xv, &tcols[lo..hi], &tvals[lo..hi]);
                }
            }
            touched.sort_unstable();
            for &j in touched.iter() {
                let mut v = 0.0f64;
                for acc in accs.iter() {
                    if acc.touched(j) {
                        v += acc.get(j);
                    }
                }
                if emits(v, j, row, opts) {
                    out.indices.push(j);
                    out.values.push(v);
                }
            }
            touched.len() as u64
        } else {
            pairs.clear();
            for (t, term) in terms.iter().enumerate() {
                for (k, xv) in term.x.row_iter(row) {
                    let tcols = term.xt.row_indices(k as usize);
                    let tvals = term.xt.row_values(k as usize);
                    let lo = tcols.partition_point(|&j| (j as usize) < col_floor);
                    let hi = tcols.partition_point(|&j| (j as usize) < c_hi);
                    counts.flops += (hi - lo) as u64;
                    gather_scaled_term(pairs, t as u32, xv, &tcols[lo..hi], &tvals[lo..hi]);
                }
            }
            reduce_pairs_terms(pairs, |j, v| {
                if emits(v, j, row, opts) {
                    out.indices.push(j);
                    out.values.push(v);
                }
            })
        };
        counts.touched += distinct;
        counts.emitted += (out.indices.len() - before) as u64;
        out.row_lens.push((out.indices.len() - before) as u32);
    }
    Ok(())
}

/// Panel range `[lo, hi)` for panel `p` of `n` items at `panel_rows` each.
fn panel_range(p: usize, panel_rows: usize, n: usize) -> (usize, usize) {
    (p * panel_rows, ((p + 1) * panel_rows).min(n))
}

/// Out-of-core general SpGEMM: `C = A·B` through the panel grid.
/// Dimensions must already be checked. `n_threads` and `record_steals`
/// carry the dispatching funnel's semantics (the serial funnel passes
/// `(1, false)`, the parallel funnel `(opts.n_threads, true)`).
pub(crate) fn spgemm_panel(
    a: &CsrMatrix,
    b: &CsrMatrix,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
    n_threads: usize,
    record_steals: bool,
) -> Result<CsrMatrix> {
    let n_rows = a.n_rows();
    let n_cols = b.n_cols();
    let panel_rows = opts.panel.effective_panel_rows();
    let n_row_panels = n_rows.div_ceil(panel_rows);
    let n_col_panels = n_cols.div_ceil(panel_rows).max(1);
    let n_tiles = n_row_panels * n_col_panels;

    let mut panel_flops = vec![0u64; n_row_panels];
    for (pi, pf) in panel_flops.iter_mut().enumerate() {
        let (r_lo, r_hi) = panel_range(pi, panel_rows, n_rows);
        for row in r_lo..r_hi {
            *pf += a
                .row_indices(row)
                .iter()
                .map(|&k| b.row_nnz(k as usize) as u64)
                .sum::<u64>();
        }
    }
    let est = |tile: usize| -> u64 {
        panel_flops[tile / n_col_panels].saturating_mul(12) / n_col_panels as u64
    };
    let (spill_flags, n_spilled) = plan_spills(n_tiles, opts.panel.budget_bytes, est);
    let dir = if n_spilled > 0 {
        Some(SpillDir::create(opts.panel.spill_dir.as_deref())?)
    } else {
        None
    };

    let (outs, mut counts, steals, spill_bytes) = run_tiles(
        n_tiles,
        n_threads,
        &spill_flags,
        dir.as_ref(),
        || RowScratch::new(n_cols),
        |tile, scratch, data, counts| {
            let pi = tile / n_col_panels;
            let pj = tile % n_col_panels;
            gustavson_tile(
                a,
                b,
                panel_range(pi, panel_rows, n_rows),
                panel_range(pj, panel_rows, n_cols),
                pj == 0,
                scratch,
                opts,
                token,
                data,
                counts,
            )
        },
    )?;
    counts.panels = n_tiles as u64;
    counts.panel_spills = n_spilled as u64;
    counts.spill_bytes = spill_bytes;

    let panel_tile_counts = vec![n_col_panels; n_row_panels];
    let (indptr, indices, values) =
        merge_panel_outputs(n_rows, panel_rows, &outs, &panel_tile_counts, dir.as_ref())?;
    let out = RowKernelOutput {
        indptr,
        indices,
        values,
        counts,
        steals,
    };
    out.counts.flush(metrics);
    if record_steals {
        out.flush_steals(metrics);
    }
    Ok(CsrMatrix::from_raw_parts_unchecked(
        n_rows,
        n_cols,
        out.indptr,
        out.indices,
        out.values,
    ))
}

/// Out-of-core fused SYRK sum: upper triangle of `Σₜ Xₜ·Xₜᵀ` through an
/// upper-triangular tile grid, then the shared O(nnz) mirror pass. Terms
/// must already be checked; `n` is their common output dimension.
pub(crate) fn spgemm_syrk_sum_panel(
    terms: &[SyrkTerm<'_>],
    n: usize,
    opts: &SpgemmOptions,
    token: Option<&CancelToken>,
    metrics: Option<&MetricsRegistry>,
) -> Result<CsrMatrix> {
    let panel_rows = opts.panel.effective_panel_rows();
    let n_panels = n.div_ceil(panel_rows);
    // Upper-triangular tile list: tiles for row panel pi are (pi, pi..n_panels),
    // contiguous in index order — the layout merge_panel_outputs expects.
    let mut tile_panels: Vec<(usize, usize)> = Vec::new();
    let mut panel_tile_counts = Vec::with_capacity(n_panels);
    for pi in 0..n_panels {
        panel_tile_counts.push(n_panels - pi);
        for pj in pi..n_panels {
            tile_panels.push((pi, pj));
        }
    }
    let n_tiles = tile_panels.len();

    let mut panel_flops = vec![0u64; n_panels];
    for (pi, pf) in panel_flops.iter_mut().enumerate() {
        let (r_lo, r_hi) = panel_range(pi, panel_rows, n);
        for row in r_lo..r_hi {
            for term in terms {
                *pf += term
                    .x
                    .row_indices(row)
                    .iter()
                    .map(|&k| term.xt.row_nnz(k as usize) as u64)
                    .sum::<u64>();
            }
        }
    }
    let est = |tile: usize| -> u64 {
        let (pi, _) = tile_panels[tile];
        panel_flops[pi].saturating_mul(12) / (n_panels - pi) as u64
    };
    let (spill_flags, n_spilled) = plan_spills(n_tiles, opts.panel.budget_bytes, est);
    let dir = if n_spilled > 0 {
        Some(SpillDir::create(opts.panel.spill_dir.as_deref())?)
    } else {
        None
    };

    let (outs, mut counts, steals, spill_bytes) = run_tiles(
        n_tiles,
        opts.n_threads,
        &spill_flags,
        dir.as_ref(),
        || SyrkScratch::new(n, terms.len()),
        |tile, scratch, data, counts| {
            let (pi, pj) = tile_panels[tile];
            syrk_tile(
                terms,
                panel_range(pi, panel_rows, n),
                panel_range(pj, panel_rows, n),
                pj == pi,
                scratch,
                opts,
                token,
                data,
                counts,
            )
        },
    )?;
    counts.panels = n_tiles as u64;
    counts.panel_spills = n_spilled as u64;
    counts.spill_bytes = spill_bytes;

    let (upper_indptr, upper_indices, upper_values) =
        merge_panel_outputs(n, panel_rows, &outs, &panel_tile_counts, dir.as_ref())?;
    drop(dir);
    let (indptr, indices, values, mirrored) =
        mirror_upper(n, &upper_indptr, &upper_indices, &upper_values);
    let out = RowKernelOutput {
        indptr,
        indices,
        values,
        counts,
        steals,
    };
    flush_syrk(&out, mirrored, metrics);
    Ok(CsrMatrix::from_raw_parts_unchecked(
        n,
        n,
        out.indptr,
        out.indices,
        out.values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::transpose;
    use crate::spgemm::{spgemm_observed, spgemm_parallel};
    use crate::syrk::spgemm_syrk_sum_observed;

    fn pseudo_random_matrix(n: usize, seed: u64, density_shift: u32) -> CsrMatrix {
        let mut rows = vec![vec![0.0; n]; n];
        let mut state = seed;
        for r in rows.iter_mut() {
            for v in r.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> (64 - density_shift) == 0 {
                    *v = ((state >> 32) % 7 + 1) as f64;
                }
            }
        }
        CsrMatrix::from_dense(&rows)
    }

    fn panel_opts(panel_rows: usize, budget: Option<usize>) -> SpgemmOptions {
        SpgemmOptions {
            n_threads: 1,
            panel: PanelPlan {
                panel_rows: Some(panel_rows),
                spill_dir: None,
                budget_bytes: budget,
            },
            ..Default::default()
        }
    }

    fn baseline_opts() -> SpgemmOptions {
        SpgemmOptions {
            n_threads: 1,
            panel: PanelPlan::default(),
            ..Default::default()
        }
    }

    #[test]
    fn plan_is_disengaged_by_default_and_engages_on_any_knob() {
        assert!(!PanelPlan::default().engaged());
        assert!(PanelPlan {
            panel_rows: Some(16),
            ..Default::default()
        }
        .engaged());
        assert!(PanelPlan {
            budget_bytes: Some(1),
            ..Default::default()
        }
        .engaged());
        assert_eq!(
            PanelPlan::default().effective_panel_rows(),
            DEFAULT_PANEL_ROWS
        );
        assert_eq!(
            PanelPlan {
                panel_rows: Some(0),
                ..Default::default()
            }
            .effective_panel_rows(),
            DEFAULT_PANEL_ROWS
        );
        assert_eq!(
            PanelPlan {
                panel_rows: Some(7),
                ..Default::default()
            }
            .effective_panel_rows(),
            7
        );
    }

    #[test]
    fn spill_plan_is_a_budgeted_suffix() {
        let (flags, n) = plan_spills(4, None, |_| 100);
        assert_eq!(flags, vec![false; 4]);
        assert_eq!(n, 0);
        // Budget holds the first two 100-byte tiles, spills the rest.
        let (flags, n) = plan_spills(4, Some(250), |_| 100);
        assert_eq!(flags, vec![false, false, true, true]);
        assert_eq!(n, 2);
        // A budget smaller than the first tile spills everything.
        let (flags, n) = plan_spills(3, Some(1), |_| 100);
        assert_eq!(flags, vec![true; 3]);
        assert_eq!(n, 3);
    }

    #[test]
    fn panel_matches_in_memory_bitwise_across_panel_sizes() {
        let a = pseudo_random_matrix(80, 0x243F6A8885A308D3, 3);
        let baseline = spgemm_observed(&a, &a, &baseline_opts(), None, None).unwrap();
        for panel_rows in [1, 3, 7, 16, 100] {
            let got = spgemm_observed(&a, &a, &panel_opts(panel_rows, None), None, None).unwrap();
            assert_eq!(baseline, got, "panel_rows {panel_rows}");
        }
    }

    #[test]
    fn forced_spills_do_not_change_output() {
        let a = pseudo_random_matrix(60, 0x9E3779B97F4A7C15, 3);
        let baseline = spgemm_observed(&a, &a, &baseline_opts(), None, None).unwrap();
        let m = MetricsRegistry::new();
        let got = spgemm_observed(&a, &a, &panel_opts(16, Some(1)), None, Some(&m)).unwrap();
        assert_eq!(baseline, got);
        let snap = m.snapshot();
        assert!(snap.counter("spgemm.panels").unwrap() > 1);
        assert!(snap.counter("spgemm.panel_spills").unwrap() >= 1);
        assert!(snap.counter("spgemm.spill_bytes").unwrap() >= 12);
    }

    #[test]
    fn panel_work_counters_match_in_memory() {
        let a = pseudo_random_matrix(70, 0xB7E151628AED2A6A, 3);
        let base = MetricsRegistry::new();
        spgemm_observed(&a, &a, &baseline_opts(), None, Some(&base)).unwrap();
        let pan = MetricsRegistry::new();
        spgemm_observed(&a, &a, &panel_opts(9, Some(64)), None, Some(&pan)).unwrap();
        for key in [
            "spgemm.rows",
            "spgemm.flops",
            "spgemm.nnz_intermediate",
            "spgemm.nnz_final",
            "spgemm.threshold_dropped",
            "spgemm.rows_dense",
            "spgemm.rows_sparse",
        ] {
            assert_eq!(
                base.snapshot().counter(key),
                pan.snapshot().counter(key),
                "{key} differs between in-memory and panel paths"
            );
        }
        // In-memory path reports the panel counters as zero.
        let bsnap = base.snapshot();
        assert_eq!(bsnap.counter("spgemm.panels"), Some(0));
        assert_eq!(bsnap.counter("spgemm.panel_spills"), Some(0));
        assert_eq!(bsnap.counter("spgemm.spill_bytes"), Some(0));
    }

    #[test]
    fn parallel_panel_is_bit_identical_and_spills_deterministically() {
        let a = pseudo_random_matrix(150, 0x452821E638D01377, 3);
        let baseline = spgemm_observed(&a, &a, &baseline_opts(), None, None).unwrap();
        for n_threads in [2, 4] {
            let opts = SpgemmOptions {
                n_threads,
                panel: PanelPlan {
                    panel_rows: Some(13),
                    spill_dir: None,
                    budget_bytes: Some(2000),
                },
                ..Default::default()
            };
            let m = MetricsRegistry::new();
            let got = spgemm_parallel(&a, &a, &opts).unwrap();
            assert_eq!(baseline, got, "threads {n_threads}");
            spgemm_observed(&a, &a, &opts, None, Some(&m)).unwrap();
            let spills = m.snapshot().counter("spgemm.panel_spills");
            let serial = MetricsRegistry::new();
            let serial_opts = SpgemmOptions {
                n_threads: 1,
                ..opts.clone()
            };
            spgemm_observed(&a, &a, &serial_opts, None, Some(&serial)).unwrap();
            assert_eq!(
                spills,
                serial.snapshot().counter("spgemm.panel_spills"),
                "spill plan must not depend on threads"
            );
        }
    }

    #[test]
    fn syrk_panel_matches_in_memory_with_terms_and_threshold() {
        let x = pseudo_random_matrix(64, 0x243F6A8885A308D3, 3);
        let y = pseudo_random_matrix(64, 0x9E3779B97F4A7C15, 3);
        let (xt, yt) = (transpose(&x), transpose(&y));
        let terms = [SyrkTerm { x: &x, xt: &xt }, SyrkTerm { x: &y, xt: &yt }];
        let mk = |panel: PanelPlan| SpgemmOptions {
            threshold: 0.5,
            drop_diagonal: true,
            n_threads: 1,
            panel,
            ..Default::default()
        };
        let baseline =
            spgemm_syrk_sum_observed(&terms, &mk(PanelPlan::default()), None, None).unwrap();
        for panel_rows in [1, 5, 17, 64] {
            for budget in [None, Some(1), Some(4096)] {
                let plan = PanelPlan {
                    panel_rows: Some(panel_rows),
                    spill_dir: None,
                    budget_bytes: budget,
                };
                let got = spgemm_syrk_sum_observed(&terms, &mk(plan), None, None).unwrap();
                assert_eq!(baseline, got, "panel_rows {panel_rows} budget {budget:?}");
            }
        }
    }

    #[test]
    fn cancellation_aborts_and_cleans_up_scratch() {
        let a = pseudo_random_matrix(64, 0x243F6A8885A308D3, 3);
        let base =
            std::env::temp_dir().join(format!("symclust_panel_cancel_test_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let opts = SpgemmOptions {
            n_threads: 1,
            panel: PanelPlan {
                panel_rows: Some(8),
                spill_dir: Some(base.clone()),
                budget_bytes: Some(1),
            },
            ..Default::default()
        };
        let r = spgemm_observed(&a, &a, &opts, Some(&token), None);
        assert_eq!(r, Err(SparseError::Cancelled));
        let leftovers = std::fs::read_dir(&base).unwrap().count();
        assert_eq!(leftovers, 0, "scratch dirs must be removed on cancellation");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn worker_panic_surfaces_and_cleans_up_scratch() {
        let base =
            std::env::temp_dir().join(format!("symclust_panel_panic_test_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let err = {
            let dir = SpillDir::create(Some(&base)).unwrap();
            let spill = vec![true; 32];
            run_tiles(
                32,
                4,
                &spill,
                Some(&dir),
                || (),
                |tile, _scratch: &mut (), data, _counts| {
                    if tile == 19 {
                        panic!("injected tile failure");
                    }
                    data.row_lens.push(1);
                    data.indices.push(0);
                    data.values.push(1.0);
                    Ok(())
                },
            )
            .err()
            .expect("a panicking tile must fail the run")
            // `dir` drops here — the entry points own their SpillDir the
            // same way, so an error return removes every spilled tile.
        };
        match err {
            SparseError::WorkerPanic(msg) => assert!(msg.contains("injected tile failure")),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let leftovers = std::fs::read_dir(&base).unwrap().count();
        assert_eq!(leftovers, 0, "scratch dirs must be removed on panic");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn empty_and_degenerate_shapes_round_trip() {
        for (rows, cols) in [(0usize, 0usize), (0, 5), (5, 0), (1, 1)] {
            let a = CsrMatrix::zeros(rows, 7);
            let b = CsrMatrix::zeros(7, cols);
            let got = spgemm_observed(&a, &b, &panel_opts(2, Some(1)), None, None).unwrap();
            let want = spgemm_observed(&a, &b, &baseline_opts(), None, None).unwrap();
            assert_eq!(want, got, "{rows}x{cols}");
        }
    }
}

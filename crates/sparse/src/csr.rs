//! Compressed sparse row (CSR) matrix.
//!
//! Invariants maintained by every constructor:
//!
//! * `indptr.len() == n_rows + 1`, `indptr[0] == 0`, monotone non-decreasing,
//!   `indptr[n_rows] == indices.len() == values.len()`;
//! * within each row, column indices are strictly increasing (sorted, no
//!   duplicates);
//! * every column index is `< n_cols`;
//! * no explicit zeros are stored unless the caller inserts them via
//!   [`CsrMatrix::from_raw_parts_unchecked`] (the arithmetic routines never
//!   produce them except through exact cancellation, which is tolerated).

use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in compressed sparse row format.
///
/// Rows are indexed `0..n_rows`, columns `0..n_cols`. Column indices are
/// stored as `u32` to halve memory traffic on large graphs.
///
/// ```
/// use symclust_sparse::CsrMatrix;
/// let m = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![2.0, 3.0]]);
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.get(1, 0), 2.0);
/// assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![1.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an `n_rows x n_cols` matrix with no stored entries.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        CsrMatrix {
            n_rows,
            n_cols,
            indptr: vec![0; n_rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from raw components, validating all invariants.
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        validate_parts(n_rows, n_cols, &indptr, &indices, &values)
            .map_err(|(_, detail)| SparseError::InvalidStructure(detail))?;
        Ok(CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from raw components without validation.
    ///
    /// Internal fast path for routines that construct structurally valid
    /// output. Debug builds still verify the invariants.
    pub fn from_raw_parts_unchecked(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        let m = CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
            values,
        };
        debug_assert!(m.validate().is_ok(), "unchecked CSR violates invariants");
        m
    }

    /// Re-checks all structural invariants plus value finiteness, without
    /// copying any array. A failure means the matrix was corrupted *after*
    /// construction (or built through an unchecked fast path by a buggy
    /// kernel), so errors surface as [`SparseError::Corrupted`] naming the
    /// violated invariant and the offending row/column.
    ///
    /// Negative values are legal here — spectral code stores Laplacians
    /// with negative off-diagonals. Graph adjacency and similarity outputs
    /// should use [`CsrMatrix::validate_graph`] or
    /// [`CsrMatrix::validate_symmetric`], which are strictly stronger.
    pub fn validate(&self) -> Result<()> {
        validate_parts(
            self.n_rows,
            self.n_cols,
            &self.indptr,
            &self.indices,
            &self.values,
        )
        .map_err(|(check, detail)| SparseError::Corrupted { check, detail })
    }

    /// [`validate`](Self::validate) plus the edge-weight contract of every
    /// graph in the pipeline: all stored values non-negative (a negative
    /// similarity or adjacency weight corrupts every downstream degree,
    /// stationary distribution, and normalized cut).
    pub fn validate_graph(&self) -> Result<()> {
        self.validate()?;
        for row in 0..self.n_rows {
            for (col, v) in self.row_iter(row) {
                if v < 0.0 {
                    return Err(SparseError::Corrupted {
                        check: "nonnegative",
                        detail: format!("row {row} col {col} has negative weight {v}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// [`validate_graph`](Self::validate_graph) plus *exact* symmetry: the
    /// structure must equal its transpose and mirrored values must be
    /// bit-identical. This is the contract of every symmetrization output —
    /// in particular the SYRK kernels' mirror pass (DESIGN.md §12), which
    /// copies upper-triangle values into the lower triangle rather than
    /// recomputing them, so even one ULP of asymmetry indicates a kernel
    /// bug or corruption rather than rounding.
    pub fn validate_symmetric(&self) -> Result<()> {
        self.validate_graph()?;
        if self.n_rows != self.n_cols {
            return Err(SparseError::Corrupted {
                check: "symmetry",
                detail: format!("matrix is {}x{}, not square", self.n_rows, self.n_cols),
            });
        }
        let t = crate::ops::transpose(self);
        for row in 0..self.n_rows {
            let (a, b) = (self.row_indices(row), t.row_indices(row));
            if a != b {
                return Err(SparseError::Corrupted {
                    check: "symmetry",
                    detail: format!(
                        "row {row} structure differs from its transpose \
                         ({} vs {} entries or mismatched columns)",
                        a.len(),
                        b.len()
                    ),
                });
            }
            for ((col, v), w) in self.row_iter(row).zip(t.row_values(row)) {
                if v.to_bits() != w.to_bits() {
                    return Err(SparseError::Corrupted {
                        check: "symmetry",
                        detail: format!(
                            "entry ({row}, {col}) = {v:?} is not bit-identical \
                             to its mirror ({col}, {row}) = {w:?}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Builds a matrix from a dense row-major slice, skipping zeros.
    pub fn from_dense(rows: &[Vec<f64>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut indptr = Vec::with_capacity(n_rows + 1);
        indptr.push(0);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged dense input");
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    indices.push(j as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts_unchecked(n_rows, n_cols, indptr, indices, values)
    }

    /// Converts to a dense row-major representation (small matrices / tests).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (row, out_row) in out.iter_mut().enumerate() {
            for (col, v) in self.row_iter(row) {
                out_row[col as usize] = v;
            }
        }
        out
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The row-pointer array (`n_rows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (structure stays fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the matrix, returning `(n_rows, n_cols, indptr, indices, values)`.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<f64>) {
        (
            self.n_rows,
            self.n_cols,
            self.indptr,
            self.indices,
            self.values,
        )
    }

    /// Column indices of the stored entries in `row`.
    #[inline]
    pub fn row_indices(&self, row: usize) -> &[u32] {
        &self.indices[self.indptr[row]..self.indptr[row + 1]]
    }

    /// Values of the stored entries in `row`.
    #[inline]
    pub fn row_values(&self, row: usize) -> &[f64] {
        &self.values[self.indptr[row]..self.indptr[row + 1]]
    }

    /// Number of stored entries in `row`.
    #[inline]
    pub fn row_nnz(&self, row: usize) -> usize {
        self.indptr[row + 1] - self.indptr[row]
    }

    /// Iterates over `(column, value)` pairs of `row`.
    #[inline]
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.row_indices(row)
            .iter()
            .copied()
            .zip(self.row_values(row).iter().copied())
    }

    /// Looks up entry `(row, col)`; returns 0.0 when not stored.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.n_rows && col < self.n_cols);
        let cols = self.row_indices(row);
        match cols.binary_search(&(col as u32)) {
            Ok(pos) => self.row_values(row)[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, f64)> + '_ {
        (0..self.n_rows).flat_map(move |r| self.row_iter(r).map(move |(c, v)| (r, c, v)))
    }

    /// Matrix–vector product `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n_cols {
            return Err(SparseError::DimensionMismatch {
                op: "mul_vec",
                lhs: (self.n_rows, self.n_cols),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.n_rows];
        for (row, y_row) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (col, v) in self.row_iter(row) {
                acc += v * x[col as usize];
            }
            *y_row = acc;
        }
        Ok(y)
    }

    /// Transposed matrix–vector product `y = Aᵀ x` without materializing `Aᵀ`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n_rows {
            return Err(SparseError::DimensionMismatch {
                op: "mul_vec_transposed",
                lhs: (self.n_cols, self.n_rows),
                rhs: (x.len(), 1),
            });
        }
        let mut y = vec![0.0; self.n_cols];
        for (row, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (col, v) in self.row_iter(row) {
                y[col as usize] += v * xr;
            }
        }
        Ok(y)
    }

    /// Out-degree-style row sums (sum of values per row).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n_rows)
            .map(|r| self.row_values(r).iter().sum())
            .collect()
    }

    /// Column sums computed in one pass.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.n_cols];
        for (_, col, v) in self.iter() {
            sums[col as usize] += v;
        }
        sums
    }

    /// Number of stored entries per row.
    pub fn row_counts(&self) -> Vec<usize> {
        self.indptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Number of stored entries per column.
    pub fn col_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_cols];
        for &c in &self.indices {
            counts[c as usize] += 1;
        }
        counts
    }

    /// True if the matrix is square and numerically symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        // Structural + numeric check via transpose comparison.
        let t = crate::ops::transpose(self);
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.values
            .iter()
            .zip(t.values.iter())
            .all(|(a, b)| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0))
    }

    /// Largest relative asymmetry `|a_ij − a_ji| / max(|a_ij|, |a_ji|, 1)`
    /// over all stored entries — the quantity [`CsrMatrix::is_symmetric`]
    /// compares against `tol`, useful for reporting *how* asymmetric a
    /// matrix is. Returns `f64::INFINITY` for non-square matrices.
    pub fn max_asymmetry(&self) -> f64 {
        if self.n_rows != self.n_cols {
            return f64::INFINITY;
        }
        let t = crate::ops::transpose(self);
        let mut entries: std::collections::HashMap<(usize, u32), f64> =
            std::collections::HashMap::new();
        for i in 0..self.n_rows {
            for idx in self.indptr[i]..self.indptr[i + 1] {
                entries.insert((i, self.indices[idx]), self.values[idx]);
            }
        }
        let mut worst = 0.0f64;
        // t(i,j) == self(j,i): compare each mirrored pair, treating entries
        // stored on only one side as paired with an implicit zero.
        for i in 0..t.n_rows {
            for idx in t.indptr[i]..t.indptr[i + 1] {
                let b = t.values[idx];
                let a = entries.remove(&(i, t.indices[idx])).unwrap_or(0.0);
                worst = worst.max((a - b).abs() / a.abs().max(b.abs()).max(1.0));
            }
        }
        for a in entries.into_values() {
            worst = worst.max(a.abs() / a.abs().max(1.0));
        }
        worst
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Checks the CSR invariants over borrowed components, with no allocation:
/// indptr shape and monotonicity, strictly increasing in-bounds column
/// indices per row, matching array lengths, and finite values. Returns
/// `(check, detail)` on failure so callers can wrap it as a construction
/// error ([`SparseError::InvalidStructure`]) or a post-construction one
/// ([`SparseError::Corrupted`]).
///
/// This is the single implementation behind [`CsrMatrix::from_raw_parts`]
/// and [`CsrMatrix::validate`]; it is public so tests can probe corrupted
/// raw arrays directly (constructing a corrupt `CsrMatrix` instance would
/// trip the unchecked builder's `debug_assert!` first).
pub fn validate_parts(
    n_rows: usize,
    n_cols: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f64],
) -> std::result::Result<(), (&'static str, String)> {
    if indptr.len() != n_rows + 1 {
        return Err((
            "indptr",
            format!(
                "indptr length {} != n_rows + 1 = {}",
                indptr.len(),
                n_rows + 1
            ),
        ));
    }
    if indptr[0] != 0 {
        return Err(("indptr", "indptr[0] must be 0".to_string()));
    }
    if indptr[n_rows] != indices.len() || indices.len() != values.len() {
        return Err((
            "indptr",
            format!(
                "indptr end {} vs indices {} vs values {}",
                indptr[n_rows],
                indices.len(),
                values.len()
            ),
        ));
    }
    for (row, w) in indptr.windows(2).enumerate() {
        if w[1] < w[0] {
            return Err((
                "indptr",
                format!("indptr decreases at row {row}: {} -> {}", w[0], w[1]),
            ));
        }
    }
    for row in 0..n_rows {
        let cols = &indices[indptr[row]..indptr[row + 1]];
        for pair in cols.windows(2) {
            if pair[1] <= pair[0] {
                return Err((
                    "columns",
                    format!(
                        "row {row} has unsorted or duplicate column indices \
                         ({} then {})",
                        pair[0], pair[1]
                    ),
                ));
            }
        }
        if let Some(&last) = cols.last() {
            if last as usize >= n_cols {
                return Err((
                    "bounds",
                    format!("row {row} has column index {last} >= n_cols {n_cols}"),
                ));
            }
        }
        let vals = &values[indptr[row]..indptr[row + 1]];
        for (k, v) in vals.iter().enumerate() {
            if !v.is_finite() {
                return Err((
                    "value",
                    format!("row {row} col {} has non-finite value {v}", cols[k]),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        CsrMatrix::from_dense(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![3.0, 4.0, 0.0],
        ])
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = CsrMatrix::zeros(3, 4);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_nnz(2), 0);
        m.validate().unwrap();
    }

    #[test]
    fn identity_is_diagonal_of_ones() {
        let m = CsrMatrix::identity(4);
        assert_eq!(m.nnz(), 4);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 1.0);
        }
        assert!(m.is_symmetric(0.0));
        m.validate().unwrap();
    }

    #[test]
    fn max_asymmetry_measures_worst_mirrored_pair() {
        // Symmetric matrix: zero asymmetry.
        let s = CsrMatrix::from_dense(&[vec![0.0, 2.0], vec![2.0, 0.0]]);
        assert_eq!(s.max_asymmetry(), 0.0);
        assert!(s.is_symmetric(0.0));
        // sample(): (0,2)=2 vs (2,0)=3 → |2−3|/3; (2,1)=4 unmatched → 4/4 = 1.
        let m = sample();
        assert!((m.max_asymmetry() - 1.0).abs() < 1e-15);
        assert!(!m.is_symmetric(0.5));
        // Slightly perturbed symmetric pair: asymmetry matches the relative
        // tolerance scale used by is_symmetric.
        let p = CsrMatrix::from_dense(&[vec![0.0, 10.0], vec![10.1, 0.0]]);
        let asym = p.max_asymmetry();
        assert!((asym - 0.1 / 10.1).abs() < 1e-12, "{asym}");
        assert!(p.is_symmetric(asym + 1e-12));
        assert!(!p.is_symmetric(asym - 1e-12));
        // Non-square: infinite.
        assert_eq!(CsrMatrix::zeros(2, 3).max_asymmetry(), f64::INFINITY);
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(
            m.to_dense(),
            vec![
                vec![1.0, 0.0, 2.0],
                vec![0.0, 0.0, 0.0],
                vec![3.0, 4.0, 0.0]
            ]
        );
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn mul_vec_transposed_matches_dense() {
        let m = sample();
        let y = m.mul_vec_transposed(&[1.0, 2.0, 3.0]).unwrap();
        // Aᵀ x with A as in sample():
        // col0: 1*1 + 3*3 = 10; col1: 4*3 = 12; col2: 2*1 = 2
        assert_eq!(y, vec![10.0, 12.0, 2.0]);
    }

    #[test]
    fn mul_vec_rejects_bad_dims() {
        let m = sample();
        assert!(m.mul_vec(&[1.0]).is_err());
        assert!(m.mul_vec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn sums_and_counts() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
        assert_eq!(m.row_counts(), vec![2, 0, 2]);
        assert_eq!(m.col_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn from_raw_parts_rejects_malformed() {
        // bad indptr length
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // indptr not starting at zero
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![1, 1], vec![], vec![]).is_err());
        // decreasing indptr
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // column out of bounds
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // duplicate columns in a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // unsorted columns in a row
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // values/indices length mismatch
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 1], vec![0], vec![]).is_err());
        // non-finite value
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![f64::NAN]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![0], vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn validate_parts_names_the_violated_invariant() {
        let (check, detail) = validate_parts(2, 2, &[0, 2, 1], &[0], &[1.0]).unwrap_err();
        assert_eq!(check, "indptr");
        assert!(detail.contains("decreases"), "{detail}");
        let (check, detail) = validate_parts(1, 3, &[0, 2], &[2, 0], &[1.0, 1.0]).unwrap_err();
        assert_eq!(check, "columns");
        assert!(detail.contains("row 0"), "{detail}");
        let (check, detail) = validate_parts(1, 3, &[0, 2], &[1, 1], &[1.0, 1.0]).unwrap_err();
        assert_eq!(check, "columns");
        assert!(
            detail.contains("duplicate") || detail.contains("unsorted"),
            "{detail}"
        );
        let (check, _) = validate_parts(1, 2, &[0, 1], &[5], &[1.0]).unwrap_err();
        assert_eq!(check, "bounds");
        let (check, detail) = validate_parts(1, 2, &[0, 1], &[1], &[f64::NAN]).unwrap_err();
        assert_eq!(check, "value");
        assert!(detail.contains("NaN"), "{detail}");
    }

    #[test]
    fn validate_detects_post_construction_nan_corruption() {
        let mut m = sample();
        m.validate().unwrap();
        m.values_mut()[1] = f64::NAN;
        let err = m.validate().unwrap_err();
        match err {
            SparseError::Corrupted { check, ref detail } => {
                assert_eq!(check, "value");
                assert!(detail.contains("row 0"), "{detail}");
            }
            other => panic!("expected Corrupted, got {other:?}"),
        }
    }

    #[test]
    fn validate_graph_rejects_negative_weights_but_validate_allows_them() {
        // Laplacian-style matrix: negative off-diagonals are structurally
        // valid, just not a graph.
        let l = CsrMatrix::from_dense(&[vec![2.0, -1.0], vec![-1.0, 2.0]]);
        l.validate().unwrap();
        let err = l.validate_graph().unwrap_err();
        match err {
            SparseError::Corrupted { check, ref detail } => {
                assert_eq!(check, "nonnegative");
                assert!(detail.contains("-1"), "{detail}");
            }
            other => panic!("expected Corrupted, got {other:?}"),
        }
        l.validate_symmetric().unwrap_err();
    }

    #[test]
    fn validate_symmetric_requires_bit_identical_mirrors() {
        let mut s = CsrMatrix::from_dense(&[vec![0.0, 2.0], vec![2.0, 1.0]]);
        s.validate_symmetric().unwrap();
        // One ULP of asymmetry is corruption under the SYRK mirror
        // contract, even though is_symmetric() would tolerate it.
        s.values_mut()[0] = f64::from_bits(2.0f64.to_bits() + 1);
        assert!(s.is_symmetric(1e-9));
        let err = s.validate_symmetric().unwrap_err();
        assert!(
            matches!(
                err,
                SparseError::Corrupted {
                    check: "symmetry",
                    ..
                }
            ),
            "{err:?}"
        );
        // Structural asymmetry is reported too.
        let a = sample();
        let err = a.validate_symmetric().unwrap_err();
        assert!(
            matches!(
                err,
                SparseError::Corrupted {
                    check: "symmetry",
                    ..
                }
            ),
            "{err:?}"
        );
        // Non-square matrices cannot be symmetric.
        let err = CsrMatrix::zeros(2, 3).validate_symmetric().unwrap_err();
        assert!(
            matches!(
                err,
                SparseError::Corrupted {
                    check: "symmetry",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrMatrix::from_dense(&[vec![0.0, 2.0], vec![2.0, 1.0]]);
        assert!(sym.is_symmetric(0.0));
        let asym = CsrMatrix::from_dense(&[vec![0.0, 2.0], vec![0.0, 1.0]]);
        assert!(!asym.is_symmetric(0.0));
        let rect = CsrMatrix::zeros(2, 3);
        assert!(!rect.is_symmetric(0.0));
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let m = sample();
        let expected = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((m.frobenius_norm() - expected).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_entries_in_row_major_order() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)]
        );
    }
}

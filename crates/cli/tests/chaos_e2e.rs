#![cfg(feature = "fault-injection")]
//! Smoke test for the chaos harness itself: a short scripted
//! kill-and-restart run against the real binary must complete with zero
//! invariant violations. The full 25-cycle sweep runs in CI's chaos
//! stage; this keeps the harness honest under plain
//! `cargo test --features fault-injection`.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symclust_chaos_e2e_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn a_short_chaos_run_reports_zero_violations() {
    let dir = temp_dir("short");
    let out = Command::new(env!("CARGO_BIN_EXE_symclust"))
        .args([
            "chaos",
            "--seed",
            "7",
            "--cycles",
            "4",
            "--dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("run symclust chaos");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "chaos run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("chaos: done") && stdout.contains("0 violation(s)"),
        "expected a zero-violation summary\nstdout:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_seeds_are_reproducible_across_runs() {
    let run = |dir: &PathBuf| {
        let out = Command::new(env!("CARGO_BIN_EXE_symclust"))
            .args([
                "chaos",
                "--seed",
                "11",
                "--cycles",
                "3",
                "--dir",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("run symclust chaos");
        assert!(
            out.status.success(),
            "chaos run failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a_dir = temp_dir("repro_a");
    let b_dir = temp_dir("repro_b");
    let a = run(&a_dir);
    let b = run(&b_dir);
    assert_eq!(a, b, "same seed must produce an identical chaos report");
    std::fs::remove_dir_all(&a_dir).ok();
    std::fs::remove_dir_all(&b_dir).ok();
}

//! Protocol framing under partial I/O: request bytes trickling in one
//! at a time, several requests landing in one segment, and connections
//! that die (or stall) mid-line must never yield a malformed frame, a
//! spurious response, or a hung daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use symclust_cli::server::{Endpoint, ServeOptions, Server};
use symclust_engine::json::parse_object;

static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "symclust_partial_io_{}_{tag}_{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(tag: &str) -> (Server, PathBuf) {
    let dir = temp_dir(tag);
    let mut opts = ServeOptions::unix(dir.join("sock"), dir.join("store"));
    // One worker makes queued responses FIFO, which the coalescing test
    // leans on to tell reordering apart from out-of-band health.
    opts.workers = 1;
    let server = Server::start(opts).unwrap();
    (server, dir)
}

fn connect(server: &Server) -> UnixStream {
    match server.endpoint() {
        Endpoint::Unix(path) => UnixStream::connect(path).unwrap(),
        Endpoint::Tcp(_) => unreachable!("these tests use unix sockets"),
    }
}

fn read_response(stream: &UnixStream) -> String {
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    line.trim_end().to_string()
}

/// A request delivered one byte at a time — dozens of short reads on
/// the server side — still parses into exactly one well-formed frame.
#[test]
fn byte_by_byte_writes_yield_one_well_formed_response() {
    let (server, dir) = start("bytewise");
    let mut c = connect(&server);
    let request = b"{\"op\":\"stats\",\"id\":\"slow\"}\n";
    for &b in request.iter() {
        c.write_all(&[b]).unwrap();
        c.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let resp = read_response(&c);
    let fields = parse_object(&resp).unwrap_or_else(|e| panic!("malformed frame {resp}: {e}"));
    assert_eq!(fields["ok"].as_bool(), Some(true), "{resp}");
    assert_eq!(fields["id"].as_str(), Some("slow"), "{resp}");
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// Several requests coalesced into one write (the mirror image of a
/// short read) are answered one intact frame each. Ordering is asserted
/// only per class: health is answered out-of-band by the reader thread
/// and may legally overtake queued work, but queued work stays FIFO
/// relative to itself and no frame may be torn or merged.
#[test]
fn coalesced_requests_get_one_frame_each() {
    let (server, dir) = start("coalesced");
    let mut c = connect(&server);
    c.write_all(
        concat!(
            r#"{"op":"stats","id":"a"}"#,
            "\n",
            r#"{"op":"health","id":"b"}"#,
            "\n",
            r#"{"op":"stats","id":"c"}"#,
            "\n"
        )
        .as_bytes(),
    )
    .unwrap();
    let mut reader = BufReader::new(c.try_clone().unwrap());
    let mut ids = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let fields =
            parse_object(line.trim_end()).unwrap_or_else(|e| panic!("malformed frame {line}: {e}"));
        assert_eq!(fields["ok"].as_bool(), Some(true), "{line}");
        ids.push(fields["id"].as_str().unwrap().to_string());
    }
    let mut sorted = ids.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        ["a", "b", "c"],
        "each request answered exactly once"
    );
    let queued: Vec<&String> = ids.iter().filter(|id| *id != "b").collect();
    assert_eq!(
        queued,
        [&"a".to_string(), &"c".to_string()],
        "queued work stays FIFO: {ids:?}"
    );
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A response trickled out of the client's receive buffer one byte at a
/// time is still a complete newline-terminated frame.
#[test]
fn responses_survive_byte_by_byte_client_reads() {
    let (server, dir) = start("bytewise_read");
    let mut c = connect(&server);
    c.write_all(b"{\"op\":\"health\"}\n").unwrap();
    let mut buf = Vec::new();
    let mut one = [0u8; 1];
    loop {
        let n = c.read(&mut one).unwrap();
        assert!(n > 0, "connection closed before the frame completed");
        if one[0] == b'\n' {
            break;
        }
        buf.push(one[0]);
    }
    let resp = String::from_utf8(buf).unwrap();
    let fields = parse_object(&resp).unwrap_or_else(|e| panic!("malformed frame {resp}: {e}"));
    assert_eq!(fields["state"].as_str(), Some("ready"), "{resp}");
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A connection that dies mid-line must not produce a response, must
/// not be seen as a (truncated) valid request, and must leave the
/// daemon fully serviceable for the next client.
#[test]
fn interrupted_writes_never_become_truncated_requests() {
    let (server, dir) = start("interrupted");
    {
        let mut c = connect(&server);
        // A prefix of a syntactically valid stats request, then gone.
        c.write_all(br#"{"op":"stat"#).unwrap();
        c.flush().unwrap();
    } // dropped: half-line dies with the connection
    {
        let mut c = connect(&server);
        // A complete frame followed by a dangling fragment.
        c.write_all(b"{\"op\":\"stats\",\"id\":\"whole\"}\n{\"op\":\"shutd")
            .unwrap();
        let resp = read_response(&c);
        assert!(resp.contains(r#""id":"whole""#), "{resp}");
    }
    // The daemon took no damage — and crucially, the dangling
    // `{"op":"shutd` fragment was never parsed as a shutdown.
    let c = connect(&server);
    (&c).write_all(b"{\"op\":\"health\"}\n").unwrap();
    let resp = read_response(&c);
    assert!(resp.contains(r#""state":"ready""#), "{resp}");
    assert_eq!(
        server.metrics().counter("serve.requests").get(),
        1,
        "only the one complete frame may have been admitted"
    );
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// With a read timeout configured, a client that stalls forever halfway
/// through a line is disconnected instead of pinning its reader thread.
#[test]
fn stalled_half_lines_hit_the_read_deadline() {
    let dir = temp_dir("stall");
    let mut opts = ServeOptions::unix(dir.join("sock"), dir.join("store"));
    opts.read_timeout_ms = Some(150);
    let server = Server::start(opts).unwrap();
    let mut c = connect(&server);
    c.write_all(br#"{"op":"he"#).unwrap();
    c.flush().unwrap();
    // The server must close the connection once the deadline fires; a
    // blocking read on our side then sees EOF rather than hanging.
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    let n = c.read(&mut buf).expect("server must close, not stall");
    assert_eq!(n, 0, "expected EOF, got data: {:?}", &buf[..n]);
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

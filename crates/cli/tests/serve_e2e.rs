//! End-to-end tests for `symclust serve` over real unix sockets.
//!
//! These drive the daemon exactly the way a client process would —
//! newline-delimited JSON over a socket — and pin down the subsystem's
//! three load-bearing promises:
//!
//! 1. identical requests get **byte-identical responses**, whether
//!    computed, served from memory, or served from the disk store —
//!    including across a daemon restart;
//! 2. a store hit runs **no kernel** (`spgemm.calls` stays zero on the
//!    serving daemon);
//! 3. a **corrupted blob** is detected, quarantined, and transparently
//!    recomputed — same response bytes, never garbage.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use symclust_cli::server::{Endpoint, ServeOptions, Server};
use symclust_engine::fingerprint::graph_fingerprint;
use symclust_engine::json::{parse_object, JsonValue};
use symclust_graph::io::read_edge_list;

static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("symclust_e2e_{}_{tag}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A protocol client. The reader must live as long as the connection —
/// responses can arrive back-to-back (e.g. `overloaded` rejections
/// written while an earlier request still computes), and a throwaway
/// `BufReader` would swallow the lines buffered past the first one.
struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = match server.endpoint() {
            Endpoint::Unix(path) => UnixStream::connect(path).unwrap(),
            Endpoint::Tcp(_) => unreachable!("e2e tests use unix sockets"),
        };
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, request: &str) {
        self.stream.write_all(request.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn read(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "daemon closed the connection");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, request: &str) -> String {
        self.send(request);
        self.read()
    }
}

fn field<'a>(fields: &'a std::collections::HashMap<String, JsonValue>, key: &str) -> &'a str {
    fields
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?}"))
}

const SMALL_EDGES: &str = "0 1\n1 2\n2 3\n3 0\n0 2\n1 3\n4 0\n4 2\n";

/// A graph big enough that uploads and cold bibliometric symmetrization
/// take real wall time even in release builds — the lever the deadline
/// and overload tests use to hold the single worker busy.
fn big_edges() -> String {
    let n = 3000usize;
    let mut s = String::with_capacity(n * 60 * 12);
    for i in 0..n {
        for d in 1..=60 {
            s.push_str(&format!("{i} {}\n", (i + d * 7) % n));
        }
    }
    s
}

fn upload_request(edges: &str) -> String {
    let mut obj = symclust_engine::json::JsonObject::new();
    obj.string("op", "upload-graph");
    obj.string("edges", edges);
    obj.finish()
}

/// The acceptance scenario: two identical `symmetrize` requests from
/// different connections produce byte-identical responses; the second is
/// served from the store with `spgemm.calls` unchanged. Then the store
/// survives a daemon restart, and a corrupted blob is quarantined and
/// recomputed — still byte-identically.
#[test]
fn store_hits_are_byte_identical_and_run_no_kernel_across_restarts() {
    let dir = temp_dir("accept");
    let opts = |tag: &str| {
        let mut o = ServeOptions::unix(dir.join(format!("sock-{tag}")), dir.join("store"));
        o.workers = 2;
        o
    };

    // --- Daemon A: cold compute. ---
    let a = Server::start(opts("a")).unwrap();
    let mut conn1 = Client::connect(&a);
    let upload = conn1.roundtrip(&upload_request(SMALL_EDGES));
    let graph = field(&parse_object(&upload).unwrap(), "graph").to_string();
    let sym_req = format!(r#"{{"op":"symmetrize","graph":"{graph}","method":"bib","id":"r"}}"#);

    let cold = conn1.roundtrip(&sym_req);
    assert!(cold.contains(r#""ok":true"#), "{cold}");
    let spgemm_cold = a.metrics().counter("spgemm.calls").get();
    assert!(spgemm_cold > 0, "cold bibliometric must run SpGEMM");

    // Second, *different* connection: same request, same bytes, and the
    // kernel does not run again.
    let mut conn2 = Client::connect(&a);
    let warm = conn2.roundtrip(&sym_req);
    assert_eq!(
        cold, warm,
        "responses must be byte-identical across connections"
    );
    assert_eq!(
        a.metrics().counter("spgemm.calls").get(),
        spgemm_cold,
        "a cache hit must not run SpGEMM"
    );
    a.shutdown();
    a.join();

    // --- Daemon B: fresh process over the same store. The upload and
    // the artifact both come back from disk; no kernel runs at all. ---
    let b = Server::start(opts("b")).unwrap();
    let mut conn = Client::connect(&b);
    let restarted = conn.roundtrip(&sym_req);
    assert_eq!(cold, restarted, "restart must not change response bytes");
    assert_eq!(
        b.metrics().counter("spgemm.calls").get(),
        0,
        "daemon B must serve the artifact from disk, not recompute it"
    );
    let stats = parse_object(&conn.roundtrip(r#"{"op":"stats"}"#)).unwrap();
    assert!(
        stats["store-hits"].as_f64().unwrap() >= 1.0,
        "store stats must record the disk hit: {stats:?}"
    );
    b.shutdown();
    b.join();

    // --- Corrupt the symmetrize blob on disk. ---
    let sym_key = field(&parse_object(&cold).unwrap(), "key").to_string();
    let blob_path = dir
        .join("store")
        .join("blobs")
        .join("matrix")
        .join(format!("{sym_key}.blob"));
    let mut blob = std::fs::read(&blob_path).unwrap();
    let mid = blob.len() / 2;
    blob[mid] ^= 0xFF;
    std::fs::write(&blob_path, &blob).unwrap();

    // --- Daemon C: the corruption is detected, quarantined, and the
    // artifact recomputed — the response is still byte-identical. ---
    let c = Server::start(opts("c")).unwrap();
    let mut conn = Client::connect(&c);
    let recovered = conn.roundtrip(&sym_req);
    assert_eq!(
        cold, recovered,
        "recomputed artifact must serialize identically"
    );
    assert!(
        c.metrics().counter("spgemm.calls").get() > 0,
        "the corrupted blob must be recomputed, not served"
    );
    let stats = parse_object(&conn.roundtrip(r#"{"op":"stats"}"#)).unwrap();
    assert!(
        stats["store-quarantined"].as_f64().unwrap() >= 1.0,
        "corruption must be counted: {stats:?}"
    );
    let quarantined: Vec<_> = std::fs::read_dir(dir.join("store").join("quarantine"))
        .unwrap()
        .collect();
    assert!(
        !quarantined.is_empty(),
        "the corrupt blob must be preserved as evidence"
    );
    // The recompute republished a fresh blob under the freed key; it
    // must decode cleanly and differ from the corrupted bytes.
    let republished = std::fs::read(&blob_path).unwrap();
    assert_ne!(
        republished, blob,
        "the corrupt bytes must not be served again"
    );
    use symclust_store::Artifact as _;
    symclust_sparse::CsrMatrix::decode(&republished).expect("republished blob must verify");
    c.shutdown();
    c.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// `cluster` and `query-membership` responses are deterministic too, and
/// membership queries resolve against artifacts restored from disk.
#[test]
fn clustering_artifacts_survive_restarts_and_serve_membership_queries() {
    let dir = temp_dir("cluster");
    let opts = |tag: &str| ServeOptions::unix(dir.join(format!("sock-{tag}")), dir.join("store"));

    let a = Server::start(opts("a")).unwrap();
    let mut conn = Client::connect(&a);
    let upload = conn.roundtrip(&upload_request(SMALL_EDGES));
    let graph = field(&parse_object(&upload).unwrap(), "graph").to_string();
    let cl_req =
        format!(r#"{{"op":"cluster","graph":"{graph}","method":"aat","algo":"metis","k":2}}"#);
    let cold = conn.roundtrip(&cl_req);
    assert!(cold.contains(r#""ok":true"#), "{cold}");
    let key = field(&parse_object(&cold).unwrap(), "key").to_string();
    let member_req = format!(r#"{{"op":"query-membership","key":"{key}","node":1}}"#);
    let member_cold = conn.roundtrip(&member_req);
    assert!(member_cold.contains(r#""cluster":"#), "{member_cold}");
    a.shutdown();
    a.join();

    // Fresh daemon: both the cluster request and a direct membership
    // query are answered from the store, byte-identically.
    let b = Server::start(opts("b")).unwrap();
    let mut conn = Client::connect(&b);
    let member_warm = conn.roundtrip(&member_req);
    assert_eq!(member_cold, member_warm);
    let warm = conn.roundtrip(&cl_req);
    assert_eq!(cold, warm);
    assert_eq!(b.metrics().counter("spgemm.calls").get(), 0);
    b.shutdown();
    b.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// A request whose deadline expires while an earlier request holds the
/// single worker is answered `deadline`, not computed.
#[test]
fn deadlines_expire_in_the_queue_and_are_reported() {
    let dir = temp_dir("deadline");
    let mut opts = ServeOptions::unix(dir.join("sock"), dir.join("store"));
    opts.workers = 1;
    let server = Server::start(opts).unwrap();

    let edges = big_edges();
    let fp = graph_fingerprint(&read_edge_list(edges.as_bytes()).unwrap());
    let mut conn = Client::connect(&server);
    // The upload parse keeps the only worker busy long past 1ms, so the
    // timed request's deadline expires while it waits its FIFO turn.
    conn.send(&upload_request(&edges));
    let timed = format!(
        r#"{{"op":"symmetrize","graph":"{fp:016x}","method":"bib","timeout-ms":1,"id":"t"}}"#
    );
    conn.send(&timed);

    let first = conn.read();
    assert!(first.contains(r#""op":"upload-graph""#), "{first}");
    let second = conn.read();
    assert!(second.contains(r#""error":"deadline""#), "{second}");
    assert!(
        server.metrics().counter("serve.deadline_exceeded").get() >= 1,
        "deadline must be counted"
    );
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// With one worker and a one-deep queue, excess requests are refused
/// with an explicit `overloaded` response instead of queuing unboundedly.
#[test]
fn full_admission_queue_answers_overloaded() {
    let dir = temp_dir("overload");
    let mut opts = ServeOptions::unix(dir.join("sock"), dir.join("store"));
    opts.workers = 1;
    opts.queue_cap = 1;
    let server = Server::start(opts).unwrap();

    let edges = big_edges();
    let mut conn = Client::connect(&server);
    // r1 occupies the worker (or the queue slot) for a long time; some
    // of the rapid-fire followers must bounce off the full queue.
    conn.send(&format!(
        r#"{{"op":"upload-graph","edges":"{}","id":"r1"}}"#,
        symclust_engine::json::escape(&edges)
    ));
    for id in ["r2", "r3", "r4"] {
        conn.send(&format!(r#"{{"op":"stats","id":"{id}"}}"#));
    }

    let mut by_id = std::collections::HashMap::new();
    for _ in 0..4 {
        let line = conn.read();
        let fields = parse_object(&line).unwrap();
        by_id.insert(field(&fields, "id").to_string(), line);
    }
    assert!(by_id["r1"].contains(r#""ok":true"#), "{:?}", by_id["r1"]);
    let overloaded = by_id
        .values()
        .filter(|l| l.contains(r#""error":"overloaded""#))
        .count();
    assert!(
        overloaded >= 1,
        "at least one rapid-fire request must be refused: {by_id:?}"
    );
    assert_eq!(
        server.metrics().counter("serve.overloaded").get(),
        overloaded as u64
    );
    server.shutdown();
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

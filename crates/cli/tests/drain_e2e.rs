//! Graceful-degradation e2e: a real `symclust serve` process receiving
//! SIGTERM must drain — stop accepting, finish admitted work, persist
//! stats, unlink its socket — and exit zero. Exercises the installed
//! signal handler, which in-process `Server` tests cannot reach.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symclust_drain_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(socket: &Path, store: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_symclust"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
            "--drain-ms",
            "2000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn symclust serve")
}

fn wait_for_socket(child: &mut Child, socket: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(s) = UnixStream::connect(socket) {
            return s;
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited before becoming ready: {status}");
        }
        assert!(Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn wait_for_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            child.wait().ok();
            panic!("daemon did not exit within 10s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_drains_persists_stats_and_unlinks_the_socket() {
    let dir = temp_dir("sigterm");
    let socket = dir.join("sock");
    let store = dir.join("store");
    let mut child = spawn_daemon(&socket, &store);

    // Do one real piece of work so the drain has stats worth persisting.
    let mut conn = wait_for_socket(&mut child, &socket);
    conn.write_all(b"{\"op\":\"upload-graph\",\"graph\":\"g\",\"edges\":\"0 1\\n1 2\\n2 0\\n\"}\n")
        .unwrap();
    let mut reply = String::new();
    BufReader::new(conn.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains(r#""ok":true"#), "{reply}");

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    let status = wait_for_exit(&mut child);
    assert!(
        status.success(),
        "daemon exited non-zero after SIGTERM: {status}"
    );
    assert!(
        !socket.exists(),
        "socket file must be unlinked by the drain"
    );
    let stats = store.join("stats.json");
    assert!(stats.exists(), "stats.json must be persisted before exit");
    let body = std::fs::read_to_string(&stats).unwrap();
    assert!(
        body.trim_start().starts_with('{') && body.trim_end().ends_with('}'),
        "stats.json must be a complete document, got: {body}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn completed_drain_wakes_the_watchdog_before_its_deadline() {
    // Regression: the drain watchdog used to sleep the full `drain_ms`
    // even when the worker pool had already drained. Now `Server::join`
    // reaps the watchdog, which parks on a condvar the last worker
    // notifies — so with a 10-minute drain deadline the daemon must
    // still exit within seconds of an uncontended shutdown.
    let dir = temp_dir("watchdog");
    let socket = dir.join("sock");
    let store = dir.join("store");
    let mut child = Command::new(env!("CARGO_BIN_EXE_symclust"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
            "--drain-ms",
            "600000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn symclust serve");

    let mut conn = wait_for_socket(&mut child, &socket);
    conn.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut reply = String::new();
    BufReader::new(conn.try_clone().unwrap())
        .read_line(&mut reply)
        .unwrap();
    assert!(reply.contains(r#""ok":true"#), "{reply}");

    // wait_for_exit's 10s ceiling *is* the assertion: far below the
    // 600s drain deadline the old sleeping watchdog would have held.
    let status = wait_for_exit(&mut child);
    assert!(status.success(), "daemon exited non-zero: {status}");
    assert!(!socket.exists(), "socket file must be unlinked");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigint_is_an_equivalent_drain_trigger() {
    let dir = temp_dir("sigint");
    let socket = dir.join("sock");
    let store = dir.join("store");
    let mut child = spawn_daemon(&socket, &store);
    drop(wait_for_socket(&mut child, &socket));

    let int = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .expect("send SIGINT");
    assert!(int.success(), "kill -INT failed");

    let status = wait_for_exit(&mut child);
    assert!(
        status.success(),
        "daemon exited non-zero after SIGINT: {status}"
    );
    assert!(!socket.exists(), "socket file must be unlinked");
    std::fs::remove_dir_all(&dir).ok();
}

#![warn(missing_docs)]

//! Library backing the `symclust` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; everything (argument
//! parsing, subcommands, file formats) lives here so it can be unit-tested
//! without spawning processes.
//!
//! ```text
//! symclust generate    --model cora --output edges.txt --truth truth.txt
//! symclust stats       --input edges.txt
//! symclust symmetrize  --input edges.txt --method dd --target-degree 60 --output sym.txt
//! symclust cluster     --input sym.txt --algo metis --k 70 --output clusters.txt
//! symclust pipeline    --input edges.txt --truth truth.txt --clusterers mlrmcl,metis
//! symclust eval        --clusters clusters.txt --truth truth.txt
//! symclust nibble      --input edges.txt --seed-node 0
//! symclust serve       --socket /tmp/symclust.sock --store /var/cache/symclust
//! symclust client      --socket /tmp/symclust.sock --op stats
//! ```

pub mod args;
pub mod chaos;
pub mod commands;
pub mod formats;
pub mod protocol;
pub mod server;

use args::ParsedArgs;

/// Entry point: dispatches a full argument vector (excluding argv\[0\]).
/// Returns the process exit code.
pub fn run(argv: &[String]) -> i32 {
    let Some((subcommand, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return 2;
    };
    let parsed = match ParsedArgs::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let result = match subcommand.as_str() {
        "generate" => commands::generate(&parsed),
        "stats" => commands::stats(&parsed),
        "symmetrize" => commands::symmetrize(&parsed),
        "cluster" => commands::cluster(&parsed),
        "pipeline" => commands::pipeline(&parsed),
        "eval" => commands::eval(&parsed),
        "nibble" => commands::nibble(&parsed),
        "serve" => commands::serve(&parsed),
        "client" => commands::client(&parsed),
        "chaos" => chaos::chaos(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return 0;
        }
        other => Err(format!("unknown subcommand '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// The top-level usage string.
pub fn usage() -> &'static str {
    "symclust — clustering directed graphs by symmetrization (EDBT 2011)

USAGE:
  symclust <subcommand> [--flag value]...

SUBCOMMANDS:
  generate    synthesize a directed graph
              --model dsbm|kronecker|cora|wikipedia|flickr|livejournal
              --nodes N --clusters K --seed S
              --output FILE [--truth FILE]
  stats       print Table-1-style statistics of an edge list
              --input FILE
  symmetrize  transform a directed edge list into an undirected one
              --input FILE --method aat|rw|bib|dd --output FILE
              [--alpha A --beta B] [--threshold T | --target-degree D]
  cluster     cluster an undirected (symmetrized) edge list
              --input FILE --algo mlrmcl|metis|graclus|spectral
              [--k K | --inflation I] [--tolerance T] --output FILE
  pipeline    sweep all four symmetrizations x clusterers concurrently,
              computing each symmetrization once (artifact cache)
              (--input FILE [--truth FILE] | --model NAME [--nodes N])
              [--clusterers mlrmcl,metis,graclus] [--k K] [--inflation I]
              [--target-degree D | --threshold T] [--prune T]
              [--threads N] [--sym-threads N] [--sym-accum adaptive|dense|sparse]
              [--sym-panel-rows N] [--timeout-secs S] [--retries N]
              [--memory-budget ENTRIES] [--resume JOURNAL.jsonl]
              [--events FILE] [--records FILE] [--quiet]
              [--metrics] [--metrics-out FILE.json] [--paranoid]
  eval        score a clustering against ground truth
              --clusters FILE --truth FILE
  nibble      local cluster around one node (PageRank-Nibble)
              --input FILE --seed-node N [--directed true|false]
  serve       long-running clustering daemon over a unix socket
              (newline-delimited flat JSON; artifacts cached in a
              disk-backed content-addressed store; SIGTERM/SIGINT and
              the shutdown op drain: admitted work finishes, stats
              persist, the socket is unlinked)
              [--socket PATH | --tcp ADDR] [--store DIR]
              [--workers N] [--queue-cap N] [--timeout-ms MS]
              [--store-budget-bytes B] [--drain-ms MS]
              [--read-timeout-ms MS]
  client      send one request to a running daemon, print the response
              (retries connect failures and overloaded pushback with
              deterministic exponential backoff)
              (--socket PATH | --tcp ADDR) [--retries N]
              (--json LINE | --op OP [--graph KEY] [--method M]
               [--algo A] [--k K] [--inflation I] [--budget B]
               [--edges-file FILE] [--key KEY] [--node N]
               [--id ID] [--timeout-ms MS])
              ops: upload-graph symmetrize cluster query-membership
               stats health shutdown
  chaos       scripted kill-and-restart loops against a real daemon
              under deterministic I/O fault injection, asserting
              crash-consistency invariants after every cycle (needs a
              binary built with --features fault-injection)
              [--seed N] [--cycles C] [--dir D] [--budget-bytes B]
              [--keep]
  help        print this message"
}

//! On-disk formats for clusterings and ground truth.
//!
//! *Clustering file*: one `node cluster` pair per line.
//! *Ground-truth file*: one `node category` pair per line; nodes may appear
//! on multiple lines (overlapping categories), and nodes that never appear
//! are unlabeled. Lines starting with `#` are comments in both formats.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use symclust_graph::GroundTruth;

/// Writes a clustering as `node cluster` lines.
pub fn write_clustering<W: Write>(assignments: &[u32], writer: W) -> Result<(), String> {
    let mut buf = BufWriter::new(writer);
    writeln!(buf, "# symclust clustering: {} nodes", assignments.len())
        .map_err(|e| e.to_string())?;
    for (node, &c) in assignments.iter().enumerate() {
        writeln!(buf, "{node} {c}").map_err(|e| e.to_string())?;
    }
    buf.flush().map_err(|e| e.to_string())
}

/// Reads a clustering written by [`write_clustering`]. Returns dense
/// assignments indexed by node id; missing nodes default to a fresh
/// singleton cluster.
pub fn read_clustering<R: Read>(reader: R) -> Result<Vec<u32>, String> {
    let mut pairs: Vec<(usize, u32)> = Vec::new();
    let mut max_node = 0usize;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let node: usize = parts
            .next()
            .ok_or(format!("line {}: empty", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad node: {e}", lineno + 1))?;
        let cluster: u32 = parts
            .next()
            .ok_or(format!("line {}: missing cluster", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad cluster: {e}", lineno + 1))?;
        max_node = max_node.max(node);
        pairs.push((node, cluster));
    }
    if pairs.is_empty() {
        return Ok(Vec::new());
    }
    let n = max_node + 1;
    let mut assignments = vec![u32::MAX; n];
    let mut max_cluster = 0u32;
    for (node, c) in pairs {
        assignments[node] = c;
        max_cluster = max_cluster.max(c);
    }
    // Unlisted nodes become singletons after the listed clusters.
    let mut next = max_cluster + 1;
    for a in assignments.iter_mut() {
        if *a == u32::MAX {
            *a = next;
            next += 1;
        }
    }
    Ok(assignments)
}

/// Writes ground truth as `node category` lines.
pub fn write_ground_truth<W: Write>(truth: &GroundTruth, writer: W) -> Result<(), String> {
    let mut buf = BufWriter::new(writer);
    writeln!(
        buf,
        "# symclust ground truth: {} nodes, {} categories",
        truth.n_nodes(),
        truth.n_categories()
    )
    .map_err(|e| e.to_string())?;
    for (cat, members) in truth.categories().iter().enumerate() {
        for &m in members {
            writeln!(buf, "{m} {cat}").map_err(|e| e.to_string())?;
        }
    }
    buf.flush().map_err(|e| e.to_string())
}

/// Reads ground truth written by [`write_ground_truth`]. `n_nodes` must be
/// at least `max node id + 1`; pass 0 to infer it from the file.
pub fn read_ground_truth<R: Read>(reader: R, n_nodes: usize) -> Result<GroundTruth, String> {
    let mut pairs: Vec<(u32, usize)> = Vec::new();
    let mut max_node = 0usize;
    let mut max_cat = 0usize;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let node: usize = parts
            .next()
            .ok_or(format!("line {}: empty", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad node: {e}", lineno + 1))?;
        let cat: usize = parts
            .next()
            .ok_or(format!("line {}: missing category", lineno + 1))?
            .parse()
            .map_err(|e| format!("line {}: bad category: {e}", lineno + 1))?;
        max_node = max_node.max(node);
        max_cat = max_cat.max(cat);
        pairs.push((node as u32, cat));
    }
    let n = if n_nodes == 0 { max_node + 1 } else { n_nodes };
    let mut categories = vec![Vec::new(); max_cat + 1];
    for (node, cat) in pairs {
        categories[cat].push(node);
    }
    categories.retain(|c| !c.is_empty());
    GroundTruth::new(n, categories).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_roundtrip() {
        let assignments = vec![0u32, 1, 0, 2];
        let mut buf = Vec::new();
        write_clustering(&assignments, &mut buf).unwrap();
        let back = read_clustering(buf.as_slice()).unwrap();
        assert_eq!(back, assignments);
    }

    #[test]
    fn clustering_missing_nodes_become_singletons() {
        let input = "0 0\n2 0\n";
        let back = read_clustering(input.as_bytes()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], 0);
        assert_eq!(back[2], 0);
        assert_ne!(back[1], 0);
    }

    #[test]
    fn clustering_rejects_garbage() {
        assert!(read_clustering("abc def\n".as_bytes()).is_err());
        assert!(read_clustering("0\n".as_bytes()).is_err());
        assert_eq!(
            read_clustering("# empty\n".as_bytes()).unwrap(),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn ground_truth_roundtrip_with_overlap() {
        let truth = GroundTruth::new(5, vec![vec![0, 1], vec![1, 2], vec![4]]).unwrap();
        let mut buf = Vec::new();
        write_ground_truth(&truth, &mut buf).unwrap();
        let back = read_ground_truth(buf.as_slice(), 5).unwrap();
        assert_eq!(back.n_categories(), 3);
        assert_eq!(back.members(0), &[0, 1]);
        assert_eq!(back.members(1), &[1, 2]);
        assert_eq!(back.node_categories()[1], vec![0, 1]);
        // Node 3 is unlabeled.
        assert!(back.node_categories()[3].is_empty());
    }

    #[test]
    fn ground_truth_infers_node_count() {
        let input = "0 0\n7 1\n";
        let gt = read_ground_truth(input.as_bytes(), 0).unwrap();
        assert_eq!(gt.n_nodes(), 8);
        assert_eq!(gt.n_categories(), 2);
    }
}

//! `symclust chaos`: a scripted kill-and-restart harness that drives a
//! *real* daemon (child process, real unix sockets) under the store's
//! deterministic I/O fault injector and checks crash-consistency
//! invariants after every cycle.
//!
//! One run is `--cycles` rounds against one persistent store directory:
//!
//! 1. a fault-free **reference run** records the byte-exact responses of
//!    a deterministic workload (upload → symmetrize ×2 → cluster →
//!    query-membership);
//! 2. each cycle derives a [`FaultSpec`] from `--seed` (rotating over
//!    crash-at, EIO, persistent ENOSPC, and short-read families via
//!    [`mix`]), runs the workload against a daemon child carrying that
//!    spec in `SYMCLUST_FAULTFS`, and tolerates whatever the fault does
//!    to the transport — but any *successful* response must still be
//!    byte-identical to the reference (a divergent OK response means
//!    corrupt data was served);
//! 3. after the child is gone (crashed or drained), the harness checks
//!    the store directly: `stats.json` is absent or parseable, every
//!    published blob decodes cleanly, and — when `--budget-bytes` is
//!    set — a reopen re-enforces the LRU budget;
//! 4. a fault-free restart must report `health` ready/non-degraded and
//!    replay the full workload byte-identically.
//!
//! Any violation makes the run exit nonzero with every violation
//! listed. The binary must be built with the `fault-injection` feature;
//! a passthrough shim is refused rather than silently "passing".

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use symclust_cluster::Clustering;
use symclust_engine::faultplan::{mix, FaultErrno, FaultSpec};
use symclust_engine::json::{parse_object, JsonObject, JsonValue};
use symclust_sparse::CsrMatrix;
use symclust_store::{faultfs, Artifact, DiskStore, StoreOptions};

use crate::args::ParsedArgs;

type CmdResult = Result<(), String>;

/// How long one request may take before the harness gives up on the
/// connection (generous: the workload graph is tiny).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// How long to wait for a spawned daemon to accept connections (or
/// exit) before declaring the cycle stuck.
const STARTUP_TIMEOUT: Duration = Duration::from_secs(10);

/// `symclust chaos --seed N --cycles C [--dir D] [--budget-bytes B]
/// [--keep]`.
pub fn chaos(args: &ParsedArgs) -> CmdResult {
    if !faultfs::INJECTION_COMPILED {
        return Err(
            "this binary was built without the fault injector, so a chaos run would \
             test nothing; rebuild with `cargo build --release --features \
             symclust-cli/fault-injection` and rerun"
                .into(),
        );
    }
    if std::env::var_os("SYMCLUST_FAULTFS").is_some() {
        return Err(
            "SYMCLUST_FAULTFS is set in this environment; the harness must stay \
             fault-free itself (it hands each cycle's spec to the daemon child) — \
             unset it and rerun"
                .into(),
        );
    }
    let seed: u64 = args.get_or("seed", 42u64)?;
    let cycles: u64 = args.get_or("cycles", 25u64)?;
    let keep: bool = args.get_or("keep", false)?;
    let budget: Option<u64> = args.get::<u64>("budget-bytes")?;
    let (dir, ephemeral) = match args.optional("dir") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("symclust_chaos_{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    let harness = Harness {
        dir: dir.clone(),
        budget,
    };
    let reference = harness.reference_run(seed)?;
    println!(
        "chaos: seed {seed}, {cycles} cycle(s); reference run recorded {} responses",
        reference.responses.len()
    );

    let mut violations: Vec<String> = Vec::new();
    let mut crashes = 0u64;
    let mut startup_failures = 0u64;
    for c in 1..=cycles {
        let spec = cycle_spec(seed, c);
        let outcome = harness.faulted_cycle(c, &spec, &reference, &mut violations)?;
        match outcome {
            CycleOutcome::Crashed => crashes += 1,
            CycleOutcome::FailedToStart => startup_failures += 1,
            CycleOutcome::Survived => {}
        }
        println!(
            "chaos: cycle {c}/{cycles} [{}] {} ({} violation(s) so far)",
            spec.render(),
            outcome.label(),
            violations.len()
        );
    }

    let quarantined = harness.final_quarantine_count();
    println!(
        "chaos: done — {cycles} cycle(s), {crashes} crash(es), {startup_failures} \
         startup failure(s), {quarantined} blob(s) quarantined, {} violation(s)",
        violations.len()
    );
    if !keep && ephemeral && violations.is_empty() {
        std::fs::remove_dir_all(&dir).ok();
    } else if !violations.is_empty() {
        println!("chaos: keeping {} for inspection", dir.display());
    }
    if violations.is_empty() {
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("{} invariant violation(s)", violations.len()))
    }
}

/// The fault schedule for cycle `c`: family and target operation are
/// both derived from the run seed via [`mix`], so a failing cycle can be
/// re-run in isolation from its printed spec alone. Ops land in `0..80`;
/// a target past the workload's op count is a legitimate no-fault cycle.
fn cycle_spec(seed: u64, cycle: u64) -> FaultSpec {
    let op = mix(seed, 2 * cycle + 1) % 80;
    let mut spec = FaultSpec {
        seed: mix(seed, cycle ^ 0x5eed),
        ..FaultSpec::default()
    };
    match mix(seed, cycle) % 4 {
        0 => spec.crash_at = Some(op),
        1 => spec.err_at = Some((op, FaultErrno::Eio)),
        2 => spec.enospc_after = Some(op),
        _ => spec.short_read_at = Some(op),
    }
    spec
}

enum CycleOutcome {
    Survived,
    Crashed,
    FailedToStart,
}

impl CycleOutcome {
    fn label(&self) -> &'static str {
        match self {
            CycleOutcome::Survived => "survived",
            CycleOutcome::Crashed => "crashed",
            CycleOutcome::FailedToStart => "failed to start",
        }
    }
}

/// The recorded fault-free workload: request lines and their byte-exact
/// responses, in order.
struct Reference {
    requests: Vec<String>,
    responses: Vec<String>,
}

struct Harness {
    dir: PathBuf,
    budget: Option<u64>,
}

impl Harness {
    fn sock(&self) -> PathBuf {
        self.dir.join("sock")
    }

    fn store_dir(&self) -> PathBuf {
        self.dir.join("store")
    }

    fn spawn_daemon(&self, fault_spec: Option<&FaultSpec>) -> Result<Child, String> {
        let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
        let mut cmd = Command::new(exe);
        cmd.arg("serve")
            .arg("--socket")
            .arg(self.sock())
            .arg("--store")
            .arg(self.store_dir())
            // One worker keeps the filesystem op order deterministic, so
            // "operation K" names the same syscall in every run.
            .args(["--workers", "1", "--drain-ms", "500"]);
        if let Some(b) = self.budget {
            cmd.args(["--store-budget-bytes", &b.to_string()]);
        }
        match fault_spec {
            Some(spec) => cmd.env("SYMCLUST_FAULTFS", spec.render()),
            None => cmd.env_remove("SYMCLUST_FAULTFS"),
        };
        cmd.stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawning daemon: {e}"))
    }

    /// Waits for the daemon to accept connections. `Ok(false)` means it
    /// exited first (a startup-time fault); a child that does neither
    /// within [`STARTUP_TIMEOUT`] is killed and reported the same way.
    fn wait_ready(&self, child: &mut Child) -> Result<bool, String> {
        let deadline = Instant::now() + STARTUP_TIMEOUT;
        loop {
            if let Some(_status) = child.try_wait().map_err(|e| e.to_string())? {
                return Ok(false);
            }
            if UnixStream::connect(self.sock()).is_ok() {
                return Ok(true);
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                let _ = child.wait();
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// One request over a fresh connection, so a mid-request crash only
    /// takes down this exchange.
    fn request(&self, line: &str) -> Result<String, String> {
        let mut stream = UnixStream::connect(self.sock()).map_err(|e| format!("connect: {e}"))?;
        stream.set_read_timeout(Some(REQUEST_TIMEOUT)).ok();
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .map_err(|e| format!("receive: {e}"))?;
        let response = response.trim_end();
        if response.is_empty() {
            return Err("connection closed without a response".into());
        }
        Ok(response.to_string())
    }

    /// Reaps the child: `Ok(true)` for a clean exit, `Ok(false)` for a
    /// crash (or a hang that had to be killed).
    fn reap(&self, child: &mut Child) -> Result<bool, String> {
        let deadline = Instant::now() + STARTUP_TIMEOUT;
        loop {
            if let Some(status) = child.try_wait().map_err(|e| e.to_string())? {
                return Ok(status.success());
            }
            if Instant::now() > deadline {
                let _ = child.kill();
                let _ = child.wait();
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// The fault-free cycle 0: run the workload once and record every
    /// response byte-for-byte.
    fn reference_run(&self, seed: u64) -> Result<Reference, String> {
        let mut child = self.spawn_daemon(None)?;
        if !self.wait_ready(&mut child)? {
            return Err("reference daemon failed to start".into());
        }
        let run = (|| -> Result<Reference, String> {
            let upload = upload_request(&workload_edges(seed));
            let upload_resp = self.request(&upload)?;
            let graph = response_field(&upload_resp, "graph")
                .ok_or_else(|| format!("reference upload failed: {upload_resp}"))?;

            let mut requests = vec![
                upload,
                symmetrize_request(&graph, "bib", "w1"),
                symmetrize_request(&graph, "dd", "w2"),
                cluster_request(&graph, "w3"),
            ];
            let mut responses = vec![upload_resp];
            for req in &requests[1..] {
                let resp = self.request(req)?;
                if !is_ok_response(&resp) {
                    return Err(format!("reference request failed: {resp}"));
                }
                responses.push(resp);
            }
            let cluster_key = response_field(&responses[3], "key")
                .ok_or_else(|| format!("reference cluster has no key: {}", responses[3]))?;
            let member = membership_request(&cluster_key, "w4");
            let member_resp = self.request(&member)?;
            if !is_ok_response(&member_resp) {
                return Err(format!("reference membership failed: {member_resp}"));
            }
            requests.push(member);
            responses.push(member_resp);
            Ok(Reference {
                requests,
                responses,
            })
        })();
        let _ = self.request(r#"{"op":"shutdown"}"#);
        let clean = self.reap(&mut child)?;
        let reference = run?;
        if !clean {
            return Err("reference daemon did not shut down cleanly".into());
        }
        Ok(reference)
    }

    /// One faulted cycle: run the workload under `spec`, reap the child,
    /// check the store on disk, then restart fault-free and replay.
    fn faulted_cycle(
        &self,
        cycle: u64,
        spec: &FaultSpec,
        reference: &Reference,
        violations: &mut Vec<String>,
    ) -> Result<CycleOutcome, String> {
        let mut child = self.spawn_daemon(Some(spec))?;
        let ready = self.wait_ready(&mut child)?;
        let mut outcome = if ready {
            CycleOutcome::Survived
        } else {
            CycleOutcome::FailedToStart
        };
        if ready {
            for (i, req) in reference.requests.iter().enumerate() {
                match self.request(req) {
                    // An error response or a dead connection is what a
                    // fault is *supposed* to look like. A successful
                    // response that differs from the reference is not.
                    Ok(resp) if is_ok_response(&resp) && resp != reference.responses[i] => {
                        violations.push(format!(
                            "cycle {cycle} [{}]: request {i} got a divergent OK response\n  \
                             got:      {resp}\n  expected: {}",
                            spec.render(),
                            reference.responses[i]
                        ));
                    }
                    Ok(_) | Err(_) => {}
                }
            }
            let _ = self.request(r#"{"op":"shutdown"}"#);
            if !self.reap(&mut child)? {
                outcome = CycleOutcome::Crashed;
            }
        } else {
            let _ = self.reap(&mut child)?;
        }

        self.check_disk_invariants(cycle, violations);
        self.replay(cycle, reference, violations)?;
        Ok(outcome)
    }

    /// Direct on-disk checks between daemon lifetimes: the stats sidecar
    /// is never half-written, published blobs always decode, and a
    /// budgeted reopen re-enforces the LRU budget.
    fn check_disk_invariants(&self, cycle: u64, violations: &mut Vec<String>) {
        let store = self.store_dir();
        let stats = store.join("stats.json");
        match std::fs::read_to_string(&stats) {
            Err(_) => {} // absent is fine (e.g. crashed before first persist)
            Ok(text) => {
                if parse_object(text.trim()).is_err() {
                    violations.push(format!(
                        "cycle {cycle}: stats.json is torn or corrupt: {text:?}"
                    ));
                }
            }
        }
        self.check_blobs(
            cycle,
            &store.join("blobs").join("matrix"),
            violations,
            |b| CsrMatrix::decode(b).map(|_| ()).map_err(|e| e.to_string()),
        );
        self.check_blobs(
            cycle,
            &store.join("blobs").join("clustering"),
            violations,
            |b| Clustering::decode(b).map(|_| ()).map_err(|e| e.to_string()),
        );
        if let Some(budget) = self.budget {
            match DiskStore::open(
                &store,
                StoreOptions {
                    byte_budget: Some(budget),
                },
            ) {
                Err(e) => violations.push(format!("cycle {cycle}: store failed to reopen: {e}")),
                Ok(reopened) => {
                    let bytes = reopened.stats().bytes;
                    if bytes > budget {
                        violations.push(format!(
                            "cycle {cycle}: store holds {bytes} bytes after reopen, \
                             budget is {budget}"
                        ));
                    }
                }
            }
        }
    }

    /// Every *published* blob in `dir` must decode; `.tmp-*` leftovers
    /// from a crash are legitimate (the store sweeps them on reopen).
    fn check_blobs(
        &self,
        cycle: u64,
        dir: &Path,
        violations: &mut Vec<String>,
        decode: impl Fn(&[u8]) -> Result<(), String>,
    ) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return; // store may not have published this kind yet
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") {
                continue;
            }
            match std::fs::read(entry.path()) {
                Err(e) => violations.push(format!(
                    "cycle {cycle}: published blob {name} unreadable: {e}"
                )),
                Ok(bytes) => {
                    if let Err(e) = decode(&bytes) {
                        violations.push(format!(
                            "cycle {cycle}: published blob {name} is corrupt: {e}"
                        ));
                    }
                }
            }
        }
    }

    /// Fault-free restart after a faulted cycle: health must come back
    /// ready and non-degraded, and the whole workload must replay
    /// byte-identically.
    fn replay(
        &self,
        cycle: u64,
        reference: &Reference,
        violations: &mut Vec<String>,
    ) -> Result<(), String> {
        let mut child = self.spawn_daemon(None)?;
        if !self.wait_ready(&mut child)? {
            violations.push(format!(
                "cycle {cycle}: daemon failed to restart fault-free"
            ));
            return Ok(());
        }
        match self.request(r#"{"op":"health"}"#) {
            Err(e) => violations.push(format!("cycle {cycle}: health probe failed: {e}")),
            Ok(health) => {
                if response_field(&health, "state").as_deref() != Some("ready") {
                    violations.push(format!(
                        "cycle {cycle}: restarted daemon not ready: {health}"
                    ));
                }
                if parse_object(&health)
                    .ok()
                    .and_then(|f| f.get("store-degraded").and_then(JsonValue::as_bool))
                    != Some(false)
                {
                    violations.push(format!(
                        "cycle {cycle}: restarted daemon still degraded: {health}"
                    ));
                }
            }
        }
        for (i, req) in reference.requests.iter().enumerate() {
            match self.request(req) {
                Ok(resp) if resp == reference.responses[i] => {}
                Ok(resp) => violations.push(format!(
                    "cycle {cycle} replay: request {i} diverged\n  got:      {resp}\n  \
                     expected: {}",
                    reference.responses[i]
                )),
                Err(e) => violations.push(format!("cycle {cycle} replay: request {i} failed: {e}")),
            }
        }
        let _ = self.request(r#"{"op":"shutdown"}"#);
        if !self.reap(&mut child)? {
            violations.push(format!(
                "cycle {cycle}: fault-free replay daemon did not exit cleanly"
            ));
        }
        Ok(())
    }

    /// Cumulative quarantine count for the summary line, read from the
    /// persisted sidecar (counters survive restarts).
    fn final_quarantine_count(&self) -> u64 {
        std::fs::read_to_string(self.store_dir().join("stats.json"))
            .ok()
            .and_then(|text| parse_object(text.trim()).ok())
            .and_then(|f| f.get("quarantined").and_then(JsonValue::as_f64))
            .map_or(0, |v| v as u64)
    }
}

/// The deterministic workload graph: a ring over 24 nodes plus one
/// seeded chord per node — small enough that a full cycle is fast,
/// asymmetric enough that every symmetrization does real work.
fn workload_edges(seed: u64) -> String {
    let n = 24u64;
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!("{} {}\n", i, (i + 1) % n));
        let chord = (i + 2 + mix(seed, i) % (n - 3)) % n;
        if chord != i && chord != (i + 1) % n {
            out.push_str(&format!("{i} {chord}\n"));
        }
    }
    out
}

fn upload_request(edges: &str) -> String {
    let mut o = JsonObject::new();
    o.string("op", "upload-graph");
    o.string("id", "w0");
    o.string("edges", edges);
    o.finish()
}

fn symmetrize_request(graph: &str, method: &str, id: &str) -> String {
    let mut o = JsonObject::new();
    o.string("op", "symmetrize");
    o.string("id", id);
    o.string("graph", graph);
    o.string("method", method);
    o.finish()
}

fn cluster_request(graph: &str, id: &str) -> String {
    let mut o = JsonObject::new();
    o.string("op", "cluster");
    o.string("id", id);
    o.string("graph", graph);
    o.string("method", "aat");
    o.string("algo", "metis");
    o.number("k", 3.0);
    o.finish()
}

fn membership_request(key: &str, id: &str) -> String {
    let mut o = JsonObject::new();
    o.string("op", "query-membership");
    o.string("id", id);
    o.string("key", key);
    o.number("node", 0.0);
    o.finish()
}

fn is_ok_response(response: &str) -> bool {
    parse_object(response)
        .ok()
        .and_then(|f| f.get("ok").and_then(JsonValue::as_bool))
        == Some(true)
}

fn response_field(response: &str, key: &str) -> Option<String> {
    parse_object(response)
        .ok()?
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_specs_are_deterministic_and_cover_every_family() {
        let mut crash = 0;
        let mut eio = 0;
        let mut enospc = 0;
        let mut short = 0;
        for c in 1..=25 {
            let spec = cycle_spec(42, c);
            assert_eq!(spec, cycle_spec(42, c), "cycle {c} not deterministic");
            // Every spec round-trips through the env-var encoding.
            assert_eq!(FaultSpec::parse(&spec.render()), Ok(spec));
            match spec {
                FaultSpec {
                    crash_at: Some(_), ..
                } => crash += 1,
                FaultSpec {
                    err_at: Some(_), ..
                } => eio += 1,
                FaultSpec {
                    enospc_after: Some(_),
                    ..
                } => enospc += 1,
                FaultSpec {
                    short_read_at: Some(_),
                    ..
                } => short += 1,
                _ => panic!("cycle {c} produced an empty spec"),
            }
        }
        assert!(
            crash > 0 && eio > 0 && enospc > 0 && short > 0,
            "25 seed-42 cycles must exercise all four fault families \
             ({crash}/{eio}/{enospc}/{short})"
        );
    }

    #[test]
    fn workload_is_deterministic_and_parseable() {
        let a = workload_edges(42);
        assert_eq!(a, workload_edges(42));
        assert_ne!(a, workload_edges(43));
        let g = symclust_graph::io::read_edge_list(a.as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 24);
        assert!(g.n_edges() > 24, "chords must add edges beyond the ring");
    }

    #[test]
    fn request_builders_emit_parseable_protocol_lines() {
        for line in [
            upload_request("0 1\n1 0\n"),
            symmetrize_request("00000000000000ff", "bib", "w1"),
            cluster_request("00000000000000ff", "w3"),
            membership_request("00000000000000aa", "w4"),
        ] {
            crate::protocol::parse_request(&line)
                .unwrap_or_else(|e| panic!("builder emitted a bad line {line}: {e}"));
        }
    }
}

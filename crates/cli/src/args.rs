//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--flag value` pairs.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    flags: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses a flat list of `--flag value` pairs.
    pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = &args[i];
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let Some(value) = args.get(i + 1) else {
                return Err(format!("flag --{name} is missing a value"));
            };
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
            i += 2;
        }
        Ok(ParsedArgs { flags })
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Optional typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Optional typed flag.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn parses_flag_value_pairs() {
        let a = ParsedArgs::parse(&s(&["--input", "x.txt", "--k", "70"])).unwrap();
        assert_eq!(a.required("input").unwrap(), "x.txt");
        assert_eq!(a.get_or::<usize>("k", 0).unwrap(), 70);
        assert_eq!(a.get_or::<usize>("missing", 5).unwrap(), 5);
        assert_eq!(a.optional("nope"), None);
    }

    #[test]
    fn rejects_bare_values_and_missing_values() {
        assert!(ParsedArgs::parse(&s(&["input"])).is_err());
        assert!(ParsedArgs::parse(&s(&["--input"])).is_err());
        assert!(ParsedArgs::parse(&s(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn typed_parse_errors_are_reported() {
        let a = ParsedArgs::parse(&s(&["--k", "seventy"])).unwrap();
        assert!(a.get_or::<usize>("k", 0).is_err());
        assert!(a.get::<f64>("k").is_err());
        let b = ParsedArgs::parse(&s(&["--t", "0.5"])).unwrap();
        assert_eq!(b.get::<f64>("t").unwrap(), Some(0.5));
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let a = ParsedArgs::parse(&[]).unwrap();
        assert!(a.required("input").is_err());
    }
}

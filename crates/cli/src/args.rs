//! Minimal `--flag value` argument parsing (no external dependencies).
//!
//! A flag immediately followed by another flag (or by the end of the
//! argument list) is a bare boolean switch and parses as `"true"`, so
//! `--quiet` and `--quiet true` are equivalent.

use std::collections::HashMap;

/// Parsed `--flag value` pairs.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    flags: HashMap<String, String>,
}

impl ParsedArgs {
    /// Parses a flat list of `--flag value` pairs and bare `--flag`
    /// boolean switches.
    pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = &args[i];
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let (value, consumed) = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => (v.clone(), 2),
                _ => ("true".to_string(), 1),
            };
            if flags.insert(name.to_string(), value).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
            i += consumed;
        }
        Ok(ParsedArgs { flags })
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Optional typed flag with default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }

    /// Optional typed flag.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn parses_flag_value_pairs() {
        let a = ParsedArgs::parse(&s(&["--input", "x.txt", "--k", "70"])).unwrap();
        assert_eq!(a.required("input").unwrap(), "x.txt");
        assert_eq!(a.get_or::<usize>("k", 0).unwrap(), 70);
        assert_eq!(a.get_or::<usize>("missing", 5).unwrap(), 5);
        assert_eq!(a.optional("nope"), None);
    }

    #[test]
    fn rejects_bare_values_and_duplicates() {
        assert!(ParsedArgs::parse(&s(&["input"])).is_err());
        assert!(ParsedArgs::parse(&s(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn bare_flags_parse_as_boolean_switches() {
        let a =
            ParsedArgs::parse(&s(&["--metrics", "--metrics-out", "m.json", "--quiet"])).unwrap();
        assert!(a.get_or("metrics", false).unwrap());
        assert_eq!(a.required("metrics-out").unwrap(), "m.json");
        assert!(a.get_or("quiet", false).unwrap());
        // Explicit values still work, including negative numbers.
        let b = ParsedArgs::parse(&s(&["--quiet", "false", "--threshold", "-1"])).unwrap();
        assert!(!b.get_or("quiet", true).unwrap());
        assert_eq!(b.get::<f64>("threshold").unwrap(), Some(-1.0));
    }

    #[test]
    fn typed_parse_errors_are_reported() {
        let a = ParsedArgs::parse(&s(&["--k", "seventy"])).unwrap();
        assert!(a.get_or::<usize>("k", 0).is_err());
        assert!(a.get::<f64>("k").is_err());
        let b = ParsedArgs::parse(&s(&["--t", "0.5"])).unwrap();
        assert_eq!(b.get::<f64>("t").unwrap(), Some(0.5));
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let a = ParsedArgs::parse(&[]).unwrap();
        assert!(a.required("input").is_err());
    }
}

//! The `symclust serve` daemon: a long-running clustering service over a
//! unix socket (TCP behind a flag) backed by the disk artifact store.
//!
//! Architecture (DESIGN.md §14):
//!
//! - one **accept thread** hands each connection to its own **reader
//!   thread**, which parses request lines and enqueues jobs;
//! - admission is a single bounded FIFO queue shared by every
//!   connection — fair (global arrival order) and explicit about
//!   pressure: a full queue answers `overloaded` immediately instead of
//!   stalling the reader;
//! - a fixed **worker pool** drains the queue; each request runs under
//!   its own [`CancelToken`], deadline-armed from `timeout-ms` (or the
//!   server default), and the reader cancels every in-flight token of a
//!   connection the moment its client disconnects;
//! - artifacts flow through the two-tier cache ([`TieredCache`]): L1
//!   memory → verified disk blob → kernel. Hits run no kernel at all, so
//!   a repeated request is served without touching `spgemm.calls`.
//!
//! Responses are deterministic (only content-derived fields — see
//! [`crate::protocol`]); cache behavior is visible through the `stats`
//! op and the `serve.*` / `store.*` metrics, never through response
//! bytes.
//!
//! Shutdown is a **drain**, not a halt: `shutdown` requests, SIGTERM,
//! and SIGINT all flip one flag, after which the accept loop exits,
//! readers refuse new work (`health` excepted), and workers finish the
//! admitted queue before exiting — bounded by a drain deadline that
//! cancels whatever is still in flight. The last act of
//! [`Server::join`] persists the store's stats sidecar so restart
//! counters carry over. The `health` op is answered inline by the
//! reader thread, out-of-band of the admission queue, so probes work
//! even when the queue is full or the daemon is draining.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use symclust_cluster::Clustering;
use symclust_engine::fingerprint::{graph_fingerprint, matrix_fingerprint, Fnv64};
use symclust_graph::io::read_edge_list;
use symclust_graph::{DiGraph, UnGraph};
use symclust_obs::MetricsRegistry;
use symclust_sparse::{CancelToken, CsrMatrix};
use symclust_store::{
    cluster_cached, cluster_key, symmetrize_cached, DiskStore, StoreOptions, TieredCache,
};

use crate::protocol::{self, Envelope, ErrorCode, Request};

/// Metric names the daemon emits (documented in DESIGN.md §11).
pub mod metric_names {
    /// Counter: connections accepted.
    pub const SERVE_CONNECTIONS: &str = "serve.connections";
    /// Counter: requests dequeued by a worker.
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Counter: error responses sent (any error code).
    pub const SERVE_ERRORS: &str = "serve.errors";
    /// Counter: requests rejected because the admission queue was full.
    pub const SERVE_OVERLOADED: &str = "serve.overloaded";
    /// Counter: requests that hit their deadline.
    pub const SERVE_DEADLINE: &str = "serve.deadline_exceeded";
    /// Counter: requests cancelled by client disconnect.
    pub const SERVE_CANCELLED: &str = "serve.cancelled";
    /// Gauge: high-water mark of the admission queue depth.
    pub const SERVE_QUEUE_DEPTH_HWM: &str = "serve.queue_depth_hwm";
}

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum BindAddr {
    /// A unix-domain socket at this path (the default transport).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7878` (behind `--tcp`).
    Tcp(String),
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listening address.
    pub bind: BindAddr,
    /// Root directory of the artifact store.
    pub store_dir: PathBuf,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Bounded admission-queue capacity; a full queue answers
    /// `overloaded`.
    pub queue_cap: usize,
    /// Default per-request deadline when the request carries none.
    pub default_timeout_ms: Option<u64>,
    /// Store eviction budget in bytes (`None` = unbounded).
    pub store_budget_bytes: Option<u64>,
    /// Drain deadline: how long a shutdown waits for admitted work
    /// before cancelling whatever is still in flight.
    pub drain_ms: u64,
    /// Per-connection read timeout; a connection that stalls mid-line
    /// longer than this is closed (`None` = wait forever).
    pub read_timeout_ms: Option<u64>,
}

impl ServeOptions {
    /// Defaults: unix socket `path`, store beside it, 2 workers,
    /// 64-deep queue, no default deadline, unbounded store, 2 s drain,
    /// no read timeout.
    pub fn unix(socket: impl Into<PathBuf>, store_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            bind: BindAddr::Unix(socket.into()),
            store_dir: store_dir.into(),
            workers: 2,
            queue_cap: 64,
            default_timeout_ms: None,
            store_budget_bytes: None,
            drain_ms: 2000,
            read_timeout_ms: None,
        }
    }
}

/// The concrete endpoint after binding (the unix path, or the TCP
/// address with any `:0` port resolved).
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// Bound unix socket path.
    Unix(PathBuf),
    /// Bound TCP address.
    Tcp(std::net::SocketAddr),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Per-connection registry of in-flight request tokens. The reader
/// cancels all of them when the client disconnects; workers release
/// their slot when the request finishes so the registry stays small on
/// long-lived connections.
struct ConnTokens {
    slots: Mutex<Vec<Option<CancelToken>>>,
}

impl ConnTokens {
    fn new() -> Self {
        ConnTokens {
            slots: Mutex::new(Vec::new()),
        }
    }

    fn register(&self, token: CancelToken) -> usize {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(free) = slots.iter().position(Option::is_none) {
            slots[free] = Some(token);
            free
        } else {
            slots.push(Some(token));
            slots.len() - 1
        }
    }

    fn release(&self, slot: usize) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = slots.get_mut(slot) {
            *s = None;
        }
    }

    fn cancel_all(&self) {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        for token in slots.iter().flatten() {
            token.cancel();
        }
    }
}

/// Counts live workers so the drain watchdog can wake the moment the
/// pool finishes instead of sleeping the full `drain_ms`: the last
/// worker to exit notifies the condvar, and a completed drain leaves no
/// sleeping thread behind.
struct DrainLatch {
    workers_left: Mutex<usize>,
    drained: Condvar,
}

impl DrainLatch {
    fn new(workers: usize) -> Self {
        DrainLatch {
            workers_left: Mutex::new(workers),
            drained: Condvar::new(),
        }
    }

    fn worker_exited(&self) {
        let mut left = self
            .workers_left
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *left = left.saturating_sub(1);
        if *left == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every worker has exited or `ms` elapses; returns
    /// `true` when the drain completed before the deadline.
    fn wait_drained(&self, ms: u64) -> bool {
        let left = self
            .workers_left
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (left, _timeout) = self
            .drained
            .wait_timeout_while(left, Duration::from_millis(ms), |left| *left > 0)
            .unwrap_or_else(PoisonError::into_inner);
        *left == 0
    }
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One admitted request, owned by a worker once dequeued.
struct Job {
    env: Envelope,
    token: CancelToken,
    client_gone: Arc<AtomicBool>,
    writer: SharedWriter,
    registry: Arc<ConnTokens>,
    slot: usize,
    /// Slot in the server-wide [`ServerState::active`] registry, which
    /// the drain watchdog cancels when the deadline passes.
    active_slot: usize,
}

impl Job {
    /// Releases both registry slots (per-connection and server-wide);
    /// every exit path of a job must end here exactly once.
    fn release(&self, state: &ServerState) {
        self.registry.release(self.slot);
        state.active.release(self.active_slot);
    }
}

/// Shared daemon state.
struct ServerState {
    endpoint: Endpoint,
    store: Arc<DiskStore>,
    sym_cache: TieredCache<CsrMatrix>,
    cluster_cache: TieredCache<Clustering>,
    graphs: Mutex<HashMap<u64, Arc<DiGraph>>>,
    metrics: MetricsRegistry,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    default_timeout_ms: Option<u64>,
    workers: usize,
    drain_ms: u64,
    read_timeout_ms: Option<u64>,
    /// Every in-flight request's token, across all connections — what
    /// the drain watchdog cancels when the deadline passes.
    active: ConnTokens,
    /// Wakes the drain watchdog as soon as the worker pool exits.
    drain: DrainLatch,
    /// The drain watchdog's handle, so [`Server::join`] can reap it.
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl ServerState {
    /// Resolves a graph fingerprint: in-memory map first, then the disk
    /// store (uploads are persisted as matrix blobs under their own
    /// fingerprint, so they survive restarts). A blob whose content does
    /// not hash back to `fp` is *not* a graph upload — it is some stage
    /// artifact that happens to share the namespace — and is refused.
    fn resolve_graph(&self, fp: u64) -> Option<Arc<DiGraph>> {
        {
            let graphs = self.graphs.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(g) = graphs.get(&fp) {
                return Some(Arc::clone(g));
            }
        }
        let adj = self.store.load::<CsrMatrix>(fp)?;
        let g = DiGraph::from_adjacency(adj).ok()?;
        if graph_fingerprint(&g) != fp {
            return None;
        }
        let g = Arc::new(g);
        let mut graphs = self.graphs.lock().unwrap_or_else(PoisonError::into_inner);
        Some(Arc::clone(graphs.entry(fp).or_insert(g)))
    }
}

/// Begins the drain: flips the shutdown flag, arms the drain-deadline
/// watchdog (which cancels every still-active token once `drain_ms`
/// passes), and wakes the accept loop with a throwaway connection so it
/// observes the flag. Idempotent — the `shutdown` op, SIGTERM/SIGINT,
/// and [`Server::shutdown`] all funnel here. The watchdog parks on the
/// [`DrainLatch`] condvar rather than sleeping the full `drain_ms`, so
/// a drain that finishes early wakes it immediately and no cancel fires.
fn begin_shutdown(state: &Arc<ServerState>) {
    if state.shutdown.swap(true, Ordering::AcqRel) {
        return;
    }
    let watchdog = Arc::clone(state);
    let handle = std::thread::spawn(move || {
        if !watchdog.drain.wait_drained(watchdog.drain_ms) {
            watchdog.active.cancel_all();
        }
    });
    *state
        .watchdog
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(handle);
    match &state.endpoint {
        Endpoint::Unix(p) => drop(UnixStream::connect(p)),
        Endpoint::Tcp(a) => drop(TcpStream::connect(a)),
    }
}

/// SIGTERM/SIGINT handling without any signal-crate dependency: the
/// handler only flips one static flag (the async-signal-safe minimum),
/// and [`Server::drain_on_termination`] polls it from an ordinary
/// thread, translating "the operator asked us to stop" into the same
/// drain path as the `shutdown` op.
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::Release);
    }

    /// Installs the SIGTERM/SIGINT handlers. Call once, before serving.
    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    /// Whether a termination signal has arrived since [`install`].
    pub fn termination_requested() -> bool {
        TERMINATE.load(Ordering::Acquire)
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A running daemon: call [`Server::start`], then [`Server::join`] to
/// block until a `shutdown` request (or [`Server::shutdown`]) stops it.
pub struct Server {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns. The
    /// endpoint is live once this returns.
    pub fn start(opts: ServeOptions) -> Result<Server, String> {
        let (listener, endpoint) = bind(&opts.bind)?;
        let store = DiskStore::open(
            &opts.store_dir,
            StoreOptions {
                byte_budget: opts.store_budget_bytes,
            },
        )
        .map_err(|e| format!("cannot open store at {}: {e}", opts.store_dir.display()))?;
        let metrics = MetricsRegistry::new();
        let store = Arc::new(store.with_metrics(metrics.clone()));
        let state = Arc::new(ServerState {
            endpoint,
            store: Arc::clone(&store),
            sym_cache: TieredCache::new(Arc::clone(&store)),
            cluster_cache: TieredCache::new(store),
            graphs: Mutex::new(HashMap::new()),
            metrics,
            shutdown: AtomicBool::new(false),
            queue_depth: AtomicUsize::new(0),
            default_timeout_ms: opts.default_timeout_ms,
            workers: opts.workers.max(1),
            drain_ms: opts.drain_ms,
            read_timeout_ms: opts.read_timeout_ms,
            active: ConnTokens::new(),
            drain: DrainLatch::new(opts.workers.max(1)),
            watchdog: Mutex::new(None),
        });

        let (tx, rx) = sync_channel::<Job>(opts.queue_cap.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..opts.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&state, &rx))
            })
            .collect();
        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(listener, &state, &tx))
        };
        Ok(Server {
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound endpoint (prints as `unix:<path>` or `tcp:<addr>`).
    pub fn endpoint(&self) -> Endpoint {
        self.state.endpoint.clone()
    }

    /// The daemon's metrics registry (shared with the store).
    pub fn metrics(&self) -> MetricsRegistry {
        self.state.metrics.clone()
    }

    /// The artifact store behind the daemon.
    pub fn store(&self) -> Arc<DiskStore> {
        Arc::clone(&self.state.store)
    }

    /// Programmatic shutdown (same path as the `shutdown` op).
    pub fn shutdown(&self) {
        begin_shutdown(&self.state);
    }

    /// Spawns a watcher thread that begins the drain when a SIGTERM or
    /// SIGINT handled by [`signals::install`] arrives. The thread exits
    /// once the daemon is draining for any reason.
    pub fn drain_on_termination(&self) {
        let state = Arc::clone(&self.state);
        std::thread::spawn(move || loop {
            if state.shutdown.load(Ordering::Acquire) {
                break;
            }
            if signals::termination_requested() {
                begin_shutdown(&state);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    /// Blocks until the daemon has drained and all threads exited, then
    /// persists the store's stats sidecar so counters survive restart.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The latch has been notified by now, so this returns promptly
        // even when `drain_ms` is large.
        let watchdog = self
            .state
            .watchdog
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = watchdog {
            let _ = handle.join();
        }
        self.state.store.flush_stats();
    }
}

fn bind(addr: &BindAddr) -> Result<(Listener, Endpoint), String> {
    match addr {
        BindAddr::Unix(path) => {
            if path.exists() {
                // A connectable socket means another daemon is alive;
                // a dead one is stale and safe to replace.
                if UnixStream::connect(path).is_ok() {
                    return Err(format!("socket {} is already being served", path.display()));
                }
                std::fs::remove_file(path)
                    .map_err(|e| format!("cannot remove stale socket {}: {e}", path.display()))?;
            }
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
            Ok((Listener::Unix(listener), Endpoint::Unix(path.clone())))
        }
        BindAddr::Tcp(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("cannot resolve bound address: {e}"))?;
            Ok((Listener::Tcp(listener), Endpoint::Tcp(local)))
        }
    }
}

fn accept_loop(listener: Listener, state: &Arc<ServerState>, queue: &SyncSender<Job>) {
    let read_timeout = state.read_timeout_ms.map(Duration::from_millis);
    loop {
        let split: std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> = match &listener
        {
            Listener::Unix(l) => l.accept().and_then(|(s, _)| {
                s.set_read_timeout(read_timeout)?;
                let r = s.try_clone()?;
                Ok((Box::new(r) as _, Box::new(s) as _))
            }),
            Listener::Tcp(l) => l.accept().and_then(|(s, _)| {
                s.set_read_timeout(read_timeout)?;
                let r = s.try_clone()?;
                Ok((Box::new(r) as _, Box::new(s) as _))
            }),
        };
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok((reader, writer)) = split else {
            continue;
        };
        let state = Arc::clone(state);
        let queue = queue.clone();
        std::thread::spawn(move || handle_connection(&state, &queue, reader, writer));
    }
    if let Endpoint::Unix(path) = &state.endpoint {
        let _ = std::fs::remove_file(path);
    }
}

fn write_line(writer: &SharedWriter, line: &str) {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

fn handle_connection(
    state: &Arc<ServerState>,
    queue: &SyncSender<Job>,
    reader: Box<dyn Read + Send>,
    writer: Box<dyn Write + Send>,
) {
    state.metrics.counter(metric_names::SERVE_CONNECTIONS).inc();
    let writer: SharedWriter = Arc::new(Mutex::new(writer));
    let registry = Arc::new(ConnTokens::new());
    let client_gone = Arc::new(AtomicBool::new(false));
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let env = match protocol::parse_request(trimmed) {
            Ok(env) => env,
            Err(detail) => {
                state.metrics.counter(metric_names::SERVE_ERRORS).inc();
                write_line(
                    &writer,
                    &protocol::response_error(None, None, ErrorCode::BadRequest, &detail),
                );
                continue;
            }
        };
        // Health is answered here, out-of-band of the admission queue:
        // a probe must work when the queue is full and while draining.
        if matches!(env.request, Request::Health) {
            write_line(&writer, &health_response(state, &env));
            continue;
        }
        // Once draining, no new work is admitted; queued work finishes.
        if state.shutdown.load(Ordering::Acquire) {
            state.metrics.counter(metric_names::SERVE_ERRORS).inc();
            write_line(
                &writer,
                &protocol::response_error(
                    Some(protocol::op_name(&env.request)),
                    env.id.as_deref(),
                    ErrorCode::Internal,
                    "daemon is draining; no new work admitted",
                ),
            );
            continue;
        }
        let token = match env.timeout_ms.or(state.default_timeout_ms) {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let slot = registry.register(token.clone());
        let active_slot = state.active.register(token.clone());
        let job = Job {
            env,
            token,
            client_gone: Arc::clone(&client_gone),
            writer: Arc::clone(&writer),
            registry: Arc::clone(&registry),
            slot,
            active_slot,
        };
        // Count the job in *before* sending: a worker may dequeue (and
        // decrement) the instant try_send returns.
        let depth = state.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        state
            .metrics
            .gauge(metric_names::SERVE_QUEUE_DEPTH_HWM)
            .record_max(depth as f64);
        match queue.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                state.metrics.counter(metric_names::SERVE_OVERLOADED).inc();
                state.metrics.counter(metric_names::SERVE_ERRORS).inc();
                write_line(
                    &job.writer,
                    &protocol::response_overloaded(
                        Some(protocol::op_name(&job.env.request)),
                        job.env.id.as_deref(),
                        "admission queue is full; retry later",
                    ),
                );
                job.release(state);
            }
            Err(TrySendError::Disconnected(job)) => {
                state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                write_line(
                    &job.writer,
                    &protocol::response_error(
                        Some(protocol::op_name(&job.env.request)),
                        job.env.id.as_deref(),
                        ErrorCode::Internal,
                        "daemon is shutting down",
                    ),
                );
                job.release(state);
                break;
            }
        }
    }
    // Client is gone: cancel whatever of its requests is still queued or
    // computing so workers stop burning kernel time for nobody.
    client_gone.store(true, Ordering::Release);
    registry.cancel_all();
}

fn worker_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv_timeout(Duration::from_millis(100))
        };
        let job = match job {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                // Drain semantics: a worker only exits on an *empty*
                // queue once shutdown has begun, so every admitted
                // request gets a response (the drain watchdog bounds
                // how long a stuck one can hold the pool up).
                if state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        state.metrics.counter(metric_names::SERVE_REQUESTS).inc();
        let is_shutdown = matches!(job.env.request, Request::Shutdown);
        if job.client_gone.load(Ordering::Acquire) {
            // Nobody is listening; don't run the kernel, don't respond.
            state.metrics.counter(metric_names::SERVE_CANCELLED).inc();
        } else {
            let response = execute(state, &job);
            write_line(&job.writer, &response);
        }
        job.release(state);
        if is_shutdown {
            // Begin the drain but keep looping: this worker helps
            // finish whatever was admitted before the flag flipped.
            begin_shutdown(state);
        }
    }
    state.drain.worker_exited();
}

/// Renders the `health` response from live daemon state. Deliberately
/// *not* part of the byte-determinism contract — a probe reports queue
/// depth and drain progress, which change between identical requests.
fn health_response(state: &ServerState, env: &Envelope) -> String {
    let draining = state.shutdown.load(Ordering::Acquire);
    let mut resp = protocol::response_ok("health", env.id.as_deref());
    resp.string("state", if draining { "draining" } else { "ready" });
    resp.number(
        "queue-depth",
        state.queue_depth.load(Ordering::Relaxed) as f64,
    );
    resp.number("workers", state.workers as f64);
    resp.boolean("store-degraded", state.store.is_degraded());
    resp.number("store-blobs", state.store.stats().blobs as f64);
    resp.finish()
}

/// Maps a kernel failure onto the wire error-code set: a tripped token
/// is `cancelled` when the client vanished, `deadline` when the clock
/// ran out; everything else is `internal`.
fn kernel_error(state: &ServerState, job: &Job, op: &str, cancelled: bool, detail: &str) -> String {
    state.metrics.counter(metric_names::SERVE_ERRORS).inc();
    let code = if cancelled {
        if job.client_gone.load(Ordering::Acquire) {
            state.metrics.counter(metric_names::SERVE_CANCELLED).inc();
            ErrorCode::Cancelled
        } else {
            state.metrics.counter(metric_names::SERVE_DEADLINE).inc();
            ErrorCode::Deadline
        }
    } else {
        ErrorCode::Internal
    };
    protocol::response_error(Some(op), job.env.id.as_deref(), code, detail)
}

fn client_error(state: &ServerState, job: &Job, op: &str, code: ErrorCode, detail: &str) -> String {
    state.metrics.counter(metric_names::SERVE_ERRORS).inc();
    protocol::response_error(Some(op), job.env.id.as_deref(), code, detail)
}

/// Number of undirected edges in a symmetric adjacency (off-diagonal
/// entries count once per pair, self-loops once).
fn undirected_edge_count(m: &CsrMatrix) -> usize {
    let mut diag = 0usize;
    for r in 0..m.n_rows() {
        if m.get(r, r) != 0.0 {
            diag += 1;
        }
    }
    (m.nnz() - diag) / 2 + diag
}

/// Content checksum of a clustering, spelled into `cluster` responses so
/// clients can compare results without fetching assignments.
fn clustering_checksum(c: &Clustering) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(c.n_clusters() as u64)
        .write_u64(u64::from(c.converged()));
    for &a in c.assignments() {
        h.write_u64(u64::from(a));
    }
    h.finish()
}

/// Executes one request and renders its response line. Every branch
/// returns a complete, deterministic line — content-derived fields only.
fn execute(state: &ServerState, job: &Job) -> String {
    let op = protocol::op_name(&job.env.request);
    let id = job.env.id.as_deref();
    // A deadline that expired while the job sat in the queue is the same
    // failure as one that expires mid-kernel.
    if job.token.is_cancelled() {
        return kernel_error(state, job, op, true, "deadline expired before execution");
    }
    match &job.env.request {
        Request::UploadGraph { edges } => match read_edge_list(edges.as_bytes()) {
            Err(e) => client_error(
                state,
                job,
                op,
                ErrorCode::BadRequest,
                &format!("bad edge list: {e}"),
            ),
            Ok(g) => {
                let fp = graph_fingerprint(&g);
                // Persist the adjacency under its own fingerprint so the
                // upload survives a daemon restart; publication failure
                // degrades to memory-only (counted by the store).
                let _ = state.store.put(fp, g.adjacency());
                let mut resp = protocol::response_ok(op, id);
                resp.string("graph", &protocol::key_hex(fp));
                resp.number("nodes", g.n_nodes() as f64);
                resp.number("edges", g.n_edges() as f64);
                state
                    .graphs
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(fp, Arc::new(g));
                resp.finish()
            }
        },
        Request::Symmetrize {
            graph_fp,
            method,
            budget,
        } => {
            let Some(g) = state.resolve_graph(*graph_fp) else {
                return client_error(
                    state,
                    job,
                    op,
                    ErrorCode::NotFound,
                    "unknown graph fingerprint; upload-graph first",
                );
            };
            match symmetrize_cached(
                &state.sym_cache,
                &g,
                *graph_fp,
                method,
                *budget,
                &job.token,
                Some(&state.metrics),
            ) {
                Err(e) => kernel_error(state, job, op, e.is_cancelled(), &e.to_string()),
                Ok((m, _tier, key)) => {
                    let mut resp = protocol::response_ok(op, id);
                    resp.string("key", &protocol::key_hex(key));
                    resp.number("nodes", m.n_rows() as f64);
                    resp.number("edges", undirected_edge_count(&m) as f64);
                    resp.string("checksum", &protocol::key_hex(matrix_fingerprint(&m)));
                    resp.finish()
                }
            }
        }
        Request::Cluster {
            graph_fp,
            method,
            budget,
            clusterer,
        } => {
            let Some(g) = state.resolve_graph(*graph_fp) else {
                return client_error(
                    state,
                    job,
                    op,
                    ErrorCode::NotFound,
                    "unknown graph fingerprint; upload-graph first",
                );
            };
            let (adj, sym_key) = match symmetrize_cached(
                &state.sym_cache,
                &g,
                *graph_fp,
                method,
                *budget,
                &job.token,
                Some(&state.metrics),
            ) {
                Err(e) => return kernel_error(state, job, op, e.is_cancelled(), &e.to_string()),
                Ok((m, _tier, key)) => (m, key),
            };
            let ckey = cluster_key(sym_key, clusterer);
            // Probe both tiers before paying for the UnGraph clone the
            // cold compute path needs.
            let clustering = match state.cluster_cache.get(ckey) {
                Some((c, _tier)) => c,
                None => {
                    let ungraph = UnGraph::from_symmetric_unchecked((*adj).clone());
                    match cluster_cached(
                        &state.cluster_cache,
                        &ungraph,
                        sym_key,
                        clusterer,
                        &job.token,
                        Some(&state.metrics),
                    ) {
                        Err(e) => {
                            return kernel_error(state, job, op, e.is_cancelled(), &e.to_string())
                        }
                        Ok((c, _tier, _key)) => c,
                    }
                }
            };
            let mut resp = protocol::response_ok(op, id);
            resp.string("key", &protocol::key_hex(ckey));
            resp.string("sym-key", &protocol::key_hex(sym_key));
            resp.number("nodes", clustering.n_nodes() as f64);
            resp.number("clusters", clustering.n_clusters() as f64);
            resp.boolean("converged", clustering.converged());
            resp.string(
                "checksum",
                &protocol::key_hex(clustering_checksum(&clustering)),
            );
            resp.finish()
        }
        Request::QueryMembership { cluster_key, node } => {
            let Some((clustering, _tier)) = state.cluster_cache.get(*cluster_key) else {
                return client_error(
                    state,
                    job,
                    op,
                    ErrorCode::NotFound,
                    "unknown clustering artifact; run cluster first",
                );
            };
            if *node >= clustering.n_nodes() {
                return client_error(
                    state,
                    job,
                    op,
                    ErrorCode::BadRequest,
                    &format!(
                        "node {node} out of range (clustering covers {} nodes)",
                        clustering.n_nodes()
                    ),
                );
            }
            let mut resp = protocol::response_ok(op, id);
            resp.string("key", &protocol::key_hex(*cluster_key));
            resp.number("node", *node as f64);
            resp.number("cluster", f64::from(clustering.cluster_of(*node)));
            resp.finish()
        }
        Request::Stats => {
            let s = state.store.stats();
            let mut resp = protocol::response_ok(op, id);
            resp.number("store-hits", s.hits as f64);
            resp.number("store-misses", s.misses as f64);
            resp.number("store-puts", s.puts as f64);
            resp.number("store-evictions", s.evictions as f64);
            resp.number("store-quarantined", s.quarantined as f64);
            resp.number("store-blobs", s.blobs as f64);
            resp.number("store-bytes", s.bytes as f64);
            resp.number("store-stats-persist-errors", s.stats_persist_errors as f64);
            resp.boolean("store-degraded", s.degraded);
            resp.number(
                "graphs",
                state
                    .graphs
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len() as f64,
            );
            resp.number(
                "requests",
                state.metrics.counter(metric_names::SERVE_REQUESTS).get() as f64,
            );
            resp.number(
                "overloaded",
                state.metrics.counter(metric_names::SERVE_OVERLOADED).get() as f64,
            );
            resp.finish()
        }
        // Health never reaches the queue (the reader answers it inline);
        // this arm only exists so the match stays exhaustive.
        Request::Health => health_response(state, &job.env),
        Request::Shutdown => protocol::response_ok(op, id).finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "symclust_serve_test_{}_{tag}_{n}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start(tag: &str) -> (Server, PathBuf) {
        let dir = temp_dir(tag);
        let server =
            Server::start(ServeOptions::unix(dir.join("sock"), dir.join("store"))).unwrap();
        (server, dir)
    }

    fn roundtrip(stream: &mut UnixStream, request: &str) -> String {
        use std::io::Write as _;
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    fn connect(server: &Server) -> UnixStream {
        match server.endpoint() {
            Endpoint::Unix(path) => UnixStream::connect(path).unwrap(),
            Endpoint::Tcp(_) => unreachable!("tests use unix sockets"),
        }
    }

    #[test]
    fn upload_symmetrize_query_roundtrip() {
        let (server, dir) = start("roundtrip");
        let mut c = connect(&server);
        let upload = roundtrip(
            &mut c,
            r#"{"op":"upload-graph","edges":"0 1\n1 2\n2 0\n3 0\n","id":"u1"}"#,
        );
        assert!(upload.contains(r#""ok":true"#), "{upload}");
        let fields = symclust_engine::json::parse_object(&upload).unwrap();
        let graph = fields["graph"].as_str().unwrap().to_string();

        let sym = roundtrip(
            &mut c,
            &format!(r#"{{"op":"symmetrize","graph":"{graph}","method":"aat"}}"#),
        );
        assert!(sym.contains(r#""ok":true"#), "{sym}");

        let cl = roundtrip(
            &mut c,
            &format!(r#"{{"op":"cluster","graph":"{graph}","method":"aat","algo":"metis","k":2}}"#),
        );
        assert!(cl.contains(r#""ok":true"#), "{cl}");
        let cl_fields = symclust_engine::json::parse_object(&cl).unwrap();
        let key = cl_fields["key"].as_str().unwrap().to_string();

        let member = roundtrip(
            &mut c,
            &format!(r#"{{"op":"query-membership","key":"{key}","node":0}}"#),
        );
        assert!(member.contains(r#""cluster":"#), "{member}");

        let missing = roundtrip(
            &mut c,
            r#"{"op":"query-membership","key":"00000000000000aa","node":0}"#,
        );
        assert!(missing.contains(r#""error":"not-found""#), "{missing}");

        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_requests_get_byte_identical_responses_across_connections() {
        let (server, dir) = start("identical");
        let mut a = connect(&server);
        let upload = roundtrip(
            &mut a,
            r#"{"op":"upload-graph","edges":"0 1\n1 2\n2 3\n3 0\n0 2\n"}"#,
        );
        let graph = symclust_engine::json::parse_object(&upload).unwrap()["graph"]
            .as_str()
            .unwrap()
            .to_string();
        let req = format!(r#"{{"op":"symmetrize","graph":"{graph}","method":"bib"}}"#);
        let cold = roundtrip(&mut a, &req);

        let mut b = connect(&server);
        let warm = roundtrip(&mut b, &req);
        assert_eq!(cold, warm, "hit and miss must serialize identically");

        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_lines_and_unknown_graphs_are_named_errors() {
        let (server, dir) = start("errors");
        let mut c = connect(&server);
        let bad = roundtrip(&mut c, "this is not json");
        assert!(bad.contains(r#""error":"bad-request""#), "{bad}");
        let missing = roundtrip(
            &mut c,
            r#"{"op":"symmetrize","graph":"00000000000000ff","method":"aat"}"#,
        );
        assert!(missing.contains(r#""error":"not-found""#), "{missing}");
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_op_stops_the_daemon_and_removes_the_socket() {
        let (server, dir) = start("shutdown");
        let path = match server.endpoint() {
            Endpoint::Unix(p) => p,
            Endpoint::Tcp(_) => unreachable!(),
        };
        let mut c = connect(&server);
        let resp = roundtrip(&mut c, r#"{"op":"shutdown"}"#);
        assert!(resp.contains(r#""ok":true"#), "{resp}");
        server.join();
        assert!(!path.exists(), "socket file must be cleaned up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_socket_files_are_replaced_but_live_ones_are_not() {
        let dir = temp_dir("stale");
        let sock = dir.join("sock");
        std::fs::write(&sock, b"").unwrap(); // a dead non-socket file
        let server =
            Server::start(ServeOptions::unix(&sock, dir.join("store"))).expect("stale replaced");
        let err = match Server::start(ServeOptions::unix(&sock, dir.join("store2"))) {
            Err(e) => e,
            Ok(_) => panic!("live socket must refuse a second daemon"),
        };
        assert!(err.contains("already"), "{err}");
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resolve_graph_refuses_blobs_that_are_not_uploads() {
        let (server, dir) = start("resolve");
        // Store a matrix under a key that is not its own fingerprint —
        // the shape of every symmetrize artifact in the store.
        let m = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let bogus_key = 0x1234;
        assert_ne!(matrix_fingerprint(&m), bogus_key);
        server.store().put(bogus_key, &m).unwrap();
        let mut c = connect(&server);
        let resp = roundtrip(
            &mut c,
            r#"{"op":"symmetrize","graph":"0000000000001234","method":"aat"}"#,
        );
        assert!(resp.contains(r#""error":"not-found""#), "{resp}");
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn health_reports_ready_state_and_pool_shape() {
        let (server, dir) = start("health");
        let mut c = connect(&server);
        let h = roundtrip(&mut c, r#"{"op":"health","id":"h1"}"#);
        let fields = symclust_engine::json::parse_object(&h).unwrap();
        assert_eq!(fields["ok"].as_bool(), Some(true));
        assert_eq!(fields["state"].as_str(), Some("ready"));
        assert_eq!(fields["id"].as_str(), Some("h1"));
        assert_eq!(fields["workers"].as_f64(), Some(2.0));
        assert_eq!(fields["store-degraded"].as_bool(), Some(false));
        assert!(fields["queue-depth"].as_f64().is_some(), "{h}");
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn draining_daemon_answers_health_but_refuses_new_work() {
        let (server, dir) = start("drain_refuse");
        let mut c = connect(&server);
        assert!(roundtrip(&mut c, r#"{"op":"health"}"#).contains(r#""state":"ready""#));
        server.shutdown();
        // The connection predates the drain, so its reader still
        // answers health probes inline — but admits nothing new.
        let h = roundtrip(&mut c, r#"{"op":"health"}"#);
        assert!(h.contains(r#""state":"draining""#), "{h}");
        let refused = roundtrip(&mut c, r#"{"op":"stats"}"#);
        assert!(refused.contains(r#""error":"internal""#), "{refused}");
        assert!(refused.contains("draining"), "{refused}");
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_drains_queued_work_and_persists_stats() {
        let dir = temp_dir("drain_queue");
        let mut opts = ServeOptions::unix(dir.join("sock"), dir.join("store"));
        opts.workers = 1;
        let server = Server::start(opts).unwrap();
        let mut c = connect(&server);
        // Pipeline a real request and the shutdown in one write: the
        // single worker must answer both before exiting.
        use std::io::Write as _;
        c.write_all(
            concat!(
                r#"{"op":"upload-graph","edges":"0 1\n1 0\n","id":"u"}"#,
                "\n",
                r#"{"op":"shutdown","id":"s"}"#,
                "\n"
            )
            .as_bytes(),
        )
        .unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.contains(r#""ok":true"#), "{first}");
        assert!(first.contains("upload-graph"), "{first}");
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert!(second.contains(r#""ok":true"#), "{second}");
        assert!(second.contains("shutdown"), "{second}");
        server.join();
        // join()'s last act: the stats sidecar is on disk.
        assert!(
            dir.join("store").join("stats.json").exists(),
            "drain must persist stats.json"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stalled_connections_are_closed_when_read_timeout_is_set() {
        let dir = temp_dir("read_timeout");
        let mut opts = ServeOptions::unix(dir.join("sock"), dir.join("store"));
        opts.read_timeout_ms = Some(100);
        let server = Server::start(opts).unwrap();
        let mut c = connect(&server);
        // Half a request line, never completed: the reader's timeout
        // must fire and close the connection instead of hanging.
        use std::io::Write as _;
        c.write_all(br#"{"op":"heal"#).unwrap();
        let mut reader = BufReader::new(c.try_clone().unwrap());
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "server must close the stalled connection: {line}");
        server.shutdown();
        server.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edge_count_helper_counts_pairs_once_and_loops_once() {
        // 0-1 edge plus a self-loop at 2.
        let m = CsrMatrix::from_dense(&[
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        assert_eq!(undirected_edge_count(&m), 2);
    }
}

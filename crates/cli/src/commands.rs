//! Subcommand implementations for the `symclust` CLI.

use crate::args::ParsedArgs;
use crate::formats;
use crate::protocol;
use crate::server::{BindAddr, ServeOptions, Server};
use symclust_cluster::{
    pagerank_nibble, pagerank_nibble_directed, ClusterAlgorithm, NibbleOptions, SpectralClustering,
};
use symclust_core::{select_threshold, DegreeDiscountedOptions, DiscountExponent};
use symclust_engine::{
    print_records, select_thresholds, Clusterer, Engine, EngineOptions, PipelineInput,
    PipelineSpec, RetryPolicy, SymMethod,
};
use symclust_eval::avg_f_score;
use symclust_graph::generators::{
    kronecker_graph, shared_link_dsbm, KroneckerConfig, SharedLinkDsbmConfig,
};
use symclust_graph::stats::GraphStats;
use symclust_graph::{io, DiGraph, GroundTruth, UnGraph};

type CmdResult = Result<(), String>;

/// Default symmetry tolerance for `read_ungraph`, overridable per
/// subcommand with `--tolerance`.
const DEFAULT_SYMMETRY_TOLERANCE: f64 = 1e-9;

fn read_digraph(path: &str) -> Result<DiGraph, String> {
    io::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))
}

fn read_ungraph(path: &str, tolerance: f64) -> Result<UnGraph, String> {
    let g = read_digraph(path)?;
    // Symmetrized edge lists store both directions; accept either and
    // symmetrize structurally if needed.
    let adj = g.into_adjacency();
    if adj.is_symmetric(1e-9) {
        Ok(UnGraph::from_symmetric_unchecked(adj))
    } else if adj.is_symmetric(tolerance) {
        // Asymmetry within the user's tolerance is numerical noise:
        // canonicalize to (A + Aᵀ)/2 so downstream code sees an exactly
        // symmetric matrix.
        let t = symclust_sparse::ops::transpose(&adj);
        let avg = symclust_sparse::ops::add_scaled(&adj, 0.5, &t, 0.5)
            .map_err(|e| format!("symmetrizing {path}: {e}"))?;
        Ok(UnGraph::from_symmetric_unchecked(avg))
    } else {
        Err(format!(
            "{path} is not symmetric (max asymmetry {:.3e} exceeds tolerance {tolerance:.3e}) — \
             run `symclust symmetrize` first, or raise --tolerance if the \
             asymmetry is numerical noise",
            adj.max_asymmetry()
        ))
    }
}

/// Builds the synthetic dataset selected by `--model`/`--nodes`/`--seed`
/// (shared by `generate` and `pipeline`). Returns the model name with the
/// graph and optional ground truth.
fn build_model(args: &ParsedArgs) -> Result<(String, DiGraph, Option<GroundTruth>), String> {
    let model = args.get_or("model", "dsbm".to_string())?;
    let seed: u64 = args.get_or("seed", 42u64)?;
    let nodes: Option<usize> = args.get("nodes")?;

    let (graph, truth): (DiGraph, Option<GroundTruth>) = match model.as_str() {
        "dsbm" => {
            let cfg = SharedLinkDsbmConfig {
                n_nodes: nodes.unwrap_or(1000),
                n_clusters: args.get_or("clusters", 20usize)?,
                seed,
                ..Default::default()
            };
            let g = shared_link_dsbm(&cfg).map_err(|e| e.to_string())?;
            (g.graph, Some(g.truth))
        }
        "kronecker" => {
            let cfg = KroneckerConfig {
                levels: args.get_or("levels", 12u32)?,
                n_edges: args.get_or("edges", 40_000usize)?,
                seed,
                ..Default::default()
            };
            (kronecker_graph(&cfg).map_err(|e| e.to_string())?, None)
        }
        "cora" => {
            let d = symclust_datasets::cora_like_scaled(nodes.unwrap_or(2100));
            (d.graph, d.truth)
        }
        "wikipedia" => {
            let d = symclust_datasets::wikipedia_like_scaled(nodes.unwrap_or(9000));
            (d.graph, d.truth)
        }
        "flickr" => {
            let d = symclust_datasets::flickr_like_scaled(nodes.unwrap_or(15_000));
            (d.graph, d.truth)
        }
        "livejournal" => {
            let d = symclust_datasets::livejournal_like_scaled(nodes.unwrap_or(20_000));
            (d.graph, d.truth)
        }
        other => return Err(format!("unknown model '{other}'")),
    };
    Ok((model, graph, truth))
}

/// `symclust generate`.
pub fn generate(args: &ParsedArgs) -> CmdResult {
    let output = args.required("output")?;
    let (model, graph, truth) = build_model(args)?;
    io::write_edge_list_file(&graph, output).map_err(|e| e.to_string())?;
    println!(
        "wrote {} nodes / {} edges to {output}",
        graph.n_nodes(),
        graph.n_edges()
    );
    if let Some(truth_path) = args.optional("truth") {
        match truth {
            Some(t) => {
                let file = std::fs::File::create(truth_path).map_err(|e| e.to_string())?;
                formats::write_ground_truth(&t, file)?;
                println!("wrote {} categories to {truth_path}", t.n_categories());
            }
            None => return Err(format!("model '{model}' has no ground truth")),
        }
    }
    Ok(())
}

/// `symclust stats`.
pub fn stats(args: &ParsedArgs) -> CmdResult {
    let g = read_digraph(args.required("input")?)?;
    let s = GraphStats::of(&g);
    println!("nodes:              {}", s.n_nodes);
    println!("edges:              {}", s.n_edges);
    println!("% symmetric links:  {:.1}", s.percent_symmetric);
    println!("max in-degree:      {}", s.max_in_degree);
    println!("max out-degree:     {}", s.max_out_degree);
    println!("mean total degree:  {:.2}", s.mean_degree);
    println!(
        "similarity flops:   {} (Σ dᵢ², §3.6 cost bound)",
        g.similarity_flops()
    );
    Ok(())
}

/// Maps a CLI method name onto the engine's [`SymMethod`] registry.
fn parse_sym_method(
    method: &str,
    alpha: f64,
    beta: f64,
    threshold: f64,
) -> Result<SymMethod, String> {
    match method {
        "aat" => Ok(SymMethod::PlusTranspose),
        "rw" => Ok(SymMethod::RandomWalk),
        "bib" => Ok(SymMethod::Bibliometric { threshold }),
        "dd" => Ok(SymMethod::DegreeDiscounted {
            alpha,
            beta,
            threshold,
        }),
        other => Err(format!("unknown method '{other}' (aat|rw|bib|dd)")),
    }
}

/// `symclust symmetrize`.
pub fn symmetrize(args: &ParsedArgs) -> CmdResult {
    let g = read_digraph(args.required("input")?)?;
    let output = args.required("output")?;
    let method = args.get_or("method", "dd".to_string())?;
    let alpha: f64 = args.get_or("alpha", 0.5)?;
    let beta: f64 = args.get_or("beta", 0.5)?;
    let mut threshold: f64 = args.get_or("threshold", 0.0)?;

    // §5.3.1 sample-based threshold selection when a target degree is given.
    if let Some(target) = args.get::<f64>("target-degree")? {
        let opts = match method.as_str() {
            "bib" => DegreeDiscountedOptions {
                alpha: DiscountExponent::Power(0.0),
                beta: DiscountExponent::Power(0.0),
                add_identity: true,
                ..Default::default()
            },
            _ => DegreeDiscountedOptions {
                alpha: DiscountExponent::Power(alpha),
                beta: DiscountExponent::Power(beta),
                ..Default::default()
            },
        };
        threshold = select_threshold(&g, &opts, target, 120, 7)
            .map_err(|e| e.to_string())?
            .threshold;
        println!("selected threshold {threshold:.6} for target degree {target}");
    }

    // Construction is delegated to the engine's method registry so the
    // CLI, bench harness, and pipeline executor share one factory.
    let sym = parse_sym_method(&method, alpha, beta, threshold)?
        .build()
        .symmetrize(&g)
        .map_err(|e| e.to_string())?;

    let out_graph = DiGraph::from_adjacency(sym.adjacency().clone()).map_err(|e| e.to_string())?;
    io::write_edge_list_file(&out_graph, output).map_err(|e| e.to_string())?;
    println!(
        "{}: {} undirected edges, {} singletons, {:.3}s -> {output}",
        sym.method(),
        sym.n_edges(),
        sym.n_singletons(),
        sym.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `symclust cluster`.
pub fn cluster(args: &ParsedArgs) -> CmdResult {
    let tolerance: f64 = args.get_or("tolerance", DEFAULT_SYMMETRY_TOLERANCE)?;
    let g = read_ungraph(args.required("input")?, tolerance)?;
    let output = args.required("output")?;
    let algo = args.get_or("algo", "mlrmcl".to_string())?;
    let k: usize = args.get_or("k", 0usize)?;
    if k == 0 && matches!(algo.as_str(), "metis" | "graclus" | "spectral") {
        return Err(format!("--k is required for {algo}"));
    }
    // The paper's three main clusterers come from the engine's registry;
    // spectral is CLI-only.
    let clustering = match algo.as_str() {
        "mlrmcl" => {
            let inflation: f64 = args.get_or("inflation", 2.0)?;
            Clusterer::MlrMcl { inflation }.build().cluster_ungraph(&g)
        }
        "metis" => Clusterer::Metis { k }.build().cluster_ungraph(&g),
        "graclus" => Clusterer::Graclus { k }.build().cluster_ungraph(&g),
        "spectral" => SpectralClustering::with_k(k).cluster_ungraph(&g),
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    .map_err(|e| e.to_string())?;
    let file = std::fs::File::create(output).map_err(|e| e.to_string())?;
    formats::write_clustering(clustering.assignments(), file)?;
    println!(
        "{algo}: {} clusters over {} nodes -> {output}",
        clustering.n_clusters(),
        clustering.n_nodes()
    );
    Ok(())
}

/// `symclust pipeline`: run a full symmetrization × clusterer sweep
/// through the concurrent engine, rendering structured events live.
pub fn pipeline(args: &ParsedArgs) -> CmdResult {
    // Dataset: an edge list (with optional ground truth) or a synthetic model.
    let (name, graph, truth) = if let Some(input) = args.optional("input") {
        let g = read_digraph(input)?;
        let truth = match args.optional("truth") {
            Some(path) => {
                let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
                Some(formats::read_ground_truth(file, g.n_nodes())?)
            }
            None => None,
        };
        (input.to_string(), g, truth)
    } else {
        build_model(args)?
    };

    // Thresholds for the similarity methods: sample-selected toward a
    // target average degree, or fixed via --threshold (default 0 = keep all).
    let (bib_t, dd_t) = match args.get::<f64>("target-degree")? {
        Some(target) => {
            let (bib_t, dd_t) = select_thresholds(&graph, target);
            println!("selected thresholds: bibliometric {bib_t:.6}, degree-discounted {dd_t:.6}");
            (bib_t, dd_t)
        }
        None => {
            let t: f64 = args.get_or("threshold", 0.0)?;
            (t, t)
        }
    };

    let k_default = truth
        .as_ref()
        .map(|t| t.n_categories())
        .filter(|&k| k > 1)
        .unwrap_or(20);
    let k: usize = args.get_or("k", k_default)?;
    let inflation: f64 = args.get_or("inflation", 2.0)?;
    let clusterer_list = args.get_or("clusterers", "mlrmcl,metis".to_string())?;
    let mut clusterers = Vec::new();
    for c in clusterer_list.split(',').filter(|s| !s.trim().is_empty()) {
        clusterers.push(match c.trim() {
            "mlrmcl" => Clusterer::MlrMcl { inflation },
            "metis" => Clusterer::Metis { k },
            "graclus" => Clusterer::Graclus { k },
            other => {
                return Err(format!(
                    "unknown clusterer '{other}' (mlrmcl|metis|graclus)"
                ))
            }
        });
    }
    if clusterers.is_empty() {
        return Err("--clusterers must name at least one of mlrmcl|metis|graclus".into());
    }

    let spec = PipelineSpec {
        methods: SymMethod::lineup(bib_t, dd_t),
        clusterers,
        extra_prune: args.get::<f64>("prune")?,
    };
    let retries: usize = args.get_or("retries", RetryPolicy::default().max_attempts)?;
    if retries == 0 {
        return Err("--retries must be at least 1 (it counts total attempts)".into());
    }
    let opts = EngineOptions {
        threads: args.get_or("threads", 0usize)?,
        stage_deadline: args
            .get::<f64>("timeout-secs")?
            .map(std::time::Duration::from_secs_f64),
        retry: RetryPolicy {
            max_attempts: retries,
            ..Default::default()
        },
        memory_budget: args.get::<usize>("memory-budget")?,
        spgemm_threads: args.get::<usize>("sym-threads")?,
        spgemm_accum: args.get::<symclust_sparse::AccumStrategy>("sym-accum")?,
        spgemm_panel: args.get::<usize>("sym-panel-rows")?.map(|rows| {
            // Start from the env plan so `--sym-panel-rows` composes with a
            // SYMCLUST_MEMORY_BUDGET spill budget set in the environment.
            let mut plan = symclust_sparse::PanelPlan::from_env();
            plan.panel_rows = Some(rows);
            plan
        }),
        journal: args.optional("resume").map(std::path::PathBuf::from),
        metrics: None,
        paranoid: args.get_or("paranoid", false)?,
    };
    let quiet: bool = args.get_or("quiet", false)?;

    let engine = Engine::new(opts);
    let input = PipelineInput::new(name, graph, truth);
    let event_log = std::sync::Mutex::new(String::new());
    let run_start = std::time::Instant::now();
    let result = engine.run(&input, &spec, &|e| {
        if !quiet {
            println!("{}", e.render());
        }
        let mut buf = event_log.lock().unwrap();
        buf.push_str(&e.to_json());
        buf.push('\n');
    });
    let wall_secs = run_start.elapsed().as_secs_f64();

    if let Some(path) = args.optional("events") {
        std::fs::write(path, event_log.into_inner().unwrap())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote event stream to {path}");
    }
    if let Some(path) = args.optional("records") {
        let mut out = String::new();
        for r in &result.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {} records to {path}", result.records.len());
    }

    if args.get_or("metrics", false)? {
        println!("\n{}", result.metrics.render_table());
        let fallbacks = result
            .metrics
            .counter("spgemm.degraded_fallbacks")
            .unwrap_or(0);
        let steals = result.metrics.counter("spgemm.sched_steals");
        if let Some(steals) = steals {
            println!(
                "(work-stealing scheduler: {steals} row block(s) stolen across parallel \
                 SpGEMM calls; 0 means the static split was already balanced)"
            );
        }
        if fallbacks > 0 {
            println!(
                "warning: {fallbacks} SpGEMM product(s) exceeded the memory \
                 budget and fell back to adaptive thresholding (degraded \
                 results; see spgemm.budget_compactions)"
            );
        }
    }
    if let Some(path) = args.optional("metrics-out") {
        // The stable flat key scheme (DESIGN.md §11), plus the run's wall
        // time — the contract `scripts/bench_gate.sh` regresses against.
        let mut obj = symclust_engine::json::JsonObject::new();
        for (key, value) in result.metrics.to_flat() {
            obj.number(&key, value);
        }
        obj.number("wall_secs", wall_secs);
        std::fs::write(path, obj.finish()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote metrics to {path}");
    }

    print_records("pipeline results", &result.records);
    println!(
        "\ncache: {} hits / {} misses ({} deduplicated in flight); \
         stages skipped: {}; chains resumed: {}",
        result.cache.hits, result.cache.misses, result.cache.dedups, result.skipped, result.resumed
    );
    let degraded = result.records.iter().filter(|r| r.degraded).count();
    if degraded > 0 {
        println!(
            "{degraded} record(s) ran in degraded (budget-limited) mode — \
             see the notes column"
        );
    }
    for (label, err) in &result.failures {
        eprintln!("warning: stage `{label}` failed: {err}");
    }
    if result.records.is_empty() {
        if let Some((label, err)) = result.failures.first() {
            return Err(format!(
                "no chain completed; first failure: `{label}`: {err}"
            ));
        }
        if result.skipped > 0 {
            return Err("no chain completed within the per-stage deadline".into());
        }
    }
    Ok(())
}

/// `symclust eval`.
pub fn eval(args: &ParsedArgs) -> CmdResult {
    let clusters_path = args.required("clusters")?;
    let truth_path = args.required("truth")?;
    let assignments =
        formats::read_clustering(std::fs::File::open(clusters_path).map_err(|e| e.to_string())?)?;
    let truth = formats::read_ground_truth(
        std::fs::File::open(truth_path).map_err(|e| e.to_string())?,
        assignments.len(),
    )?;
    let report = avg_f_score(&assignments, &truth);
    println!("clusters:          {}", report.n_clusters);
    println!("avg F-score:       {:.2}", report.avg_f);
    let matched = report.best_match.iter().filter(|m| m.is_some()).count();
    println!("matched clusters:  {matched}/{}", report.n_clusters);
    Ok(())
}

/// `symclust nibble`.
pub fn nibble(args: &ParsedArgs) -> CmdResult {
    let input = args.required("input")?;
    let seed_node: usize = args.get_or("seed-node", 0usize)?;
    let directed: bool = args.get_or("directed", true)?;
    let opts = NibbleOptions {
        alpha: args.get_or("alpha", 0.15)?,
        epsilon: args.get_or("epsilon", 1e-5)?,
        max_cluster_size: args.get_or("max-size", 0usize)?,
    };
    let cluster = if directed {
        let g = read_digraph(input)?;
        pagerank_nibble_directed(&g, seed_node, &opts)
    } else {
        let tolerance: f64 = args.get_or("tolerance", DEFAULT_SYMMETRY_TOLERANCE)?;
        let g = read_ungraph(input, tolerance)?;
        pagerank_nibble(&g, seed_node, &opts)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "local cluster around {seed_node}: {} members, conductance {:.4} ({} pushes)",
        cluster.members.len(),
        cluster.conductance,
        cluster.pushes
    );
    println!("{:?}", cluster.members);
    Ok(())
}

/// `symclust serve`: run the clustering daemon until a `shutdown`
/// request, SIGTERM/SIGINT (both drain: admitted work finishes, stats
/// persist, the socket is unlinked), or SIGKILL (the store recovers
/// stale temp files on reopen).
pub fn serve(args: &ParsedArgs) -> CmdResult {
    let bind = match (args.optional("socket"), args.optional("tcp")) {
        (Some(_), Some(_)) => return Err("--socket and --tcp are mutually exclusive".into()),
        (None, Some(addr)) => BindAddr::Tcp(addr.to_string()),
        (socket, None) => BindAddr::Unix(socket.unwrap_or("symclust.sock").into()),
    };
    let opts = ServeOptions {
        bind,
        store_dir: args.optional("store").unwrap_or(".symclust-store").into(),
        workers: args.get_or("workers", 2usize)?,
        queue_cap: args.get_or("queue-cap", 64usize)?,
        default_timeout_ms: args.get::<u64>("timeout-ms")?,
        store_budget_bytes: args.get::<u64>("store-budget-bytes")?,
        drain_ms: args.get_or("drain-ms", 2000u64)?,
        read_timeout_ms: args.get::<u64>("read-timeout-ms")?,
    };
    crate::server::signals::install();
    let daemon = Server::start(opts)?;
    daemon.drain_on_termination();
    // The ready line is what scripts wait for; flush past any pipe
    // buffering before blocking in join.
    println!("symclust serve: listening on {}", daemon.endpoint());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    daemon.join();
    println!("symclust serve: shut down");
    Ok(())
}

/// `symclust client`: send one request line to a running daemon and
/// print the raw response line. Exits nonzero when the daemon answers
/// with an error response.
///
/// Transient failures — a refused/absent socket, or an `overloaded`
/// pushback — are retried up to `--retries` total attempts with the
/// engine's deterministic exponential backoff ([`RetryPolicy`]); an
/// `overloaded` response's `retry-after-ms` hint is honored as a floor
/// on the delay. Errors *after* the request was sent are never retried
/// (the op may have executed).
pub fn client(args: &ParsedArgs) -> CmdResult {
    let line = match args.optional("json") {
        Some(j) => j.to_string(),
        None => build_request_line(args)?,
    };
    // Parse locally first so a typo fails with the protocol's own
    // message instead of a daemon round-trip.
    protocol::parse_request(&line).map_err(|e| format!("bad request: {e}"))?;
    let retries: usize = args.get_or("retries", RetryPolicy::default().max_attempts)?;
    if retries == 0 {
        return Err("--retries must be at least 1 (it counts total attempts)".into());
    }
    let policy = RetryPolicy {
        max_attempts: retries,
        ..Default::default()
    };
    let mut attempt = 1usize;
    let response = loop {
        match client_send_once(args, &line) {
            Ok(response) => match overloaded_retry_after(&response) {
                Some(hint_ms) if attempt < retries => {
                    let delay = policy.delay_ms(0, attempt).max(hint_ms);
                    eprintln!(
                        "daemon overloaded; retrying in {delay} ms (attempt {attempt}/{retries})"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                    attempt += 1;
                }
                _ => break response,
            },
            Err(e) if attempt < retries && e.starts_with("connecting to") => {
                let delay = policy.delay_ms(0, attempt);
                eprintln!("{e}; retrying in {delay} ms (attempt {attempt}/{retries})");
                std::thread::sleep(std::time::Duration::from_millis(delay));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    };
    println!("{response}");
    let fields = symclust_engine::json::parse_object(&response)
        .map_err(|e| format!("unparseable response: {e}"))?;
    if fields
        .get("ok")
        .and_then(symclust_engine::json::JsonValue::as_bool)
        == Some(true)
    {
        Ok(())
    } else {
        Err(fields
            .get("detail")
            .and_then(symclust_engine::json::JsonValue::as_str)
            .unwrap_or("server returned an error")
            .to_string())
    }
}

/// One connect-send-receive round: connection failures come back with a
/// "connecting to" prefix so the retry loop can tell them apart from
/// post-send failures (which must not be retried).
fn client_send_once(args: &ParsedArgs, line: &str) -> Result<String, String> {
    match (args.optional("socket"), args.optional("tcp")) {
        (Some(_), Some(_)) => Err("--socket and --tcp are mutually exclusive".into()),
        (None, Some(addr)) => {
            let stream = std::net::TcpStream::connect(addr)
                .map_err(|e| format!("connecting to {addr}: {e}"))?;
            request_response(stream, line)
        }
        (socket, None) => {
            let path = socket.unwrap_or("symclust.sock");
            let stream = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("connecting to {path}: {e}"))?;
            request_response(stream, line)
        }
    }
}

/// If `response` is an `overloaded` error line, returns its
/// `retry-after-ms` hint (falling back to the protocol default).
fn overloaded_retry_after(response: &str) -> Option<u64> {
    let fields = symclust_engine::json::parse_object(response).ok()?;
    if fields
        .get("error")
        .and_then(symclust_engine::json::JsonValue::as_str)
        != Some("overloaded")
    {
        return None;
    }
    Some(
        fields
            .get("retry-after-ms")
            .and_then(symclust_engine::json::JsonValue::as_f64)
            .map_or(protocol::RETRY_AFTER_MS, |ms| ms.max(0.0) as u64),
    )
}

fn request_response<S: std::io::Read + std::io::Write>(
    mut stream: S,
    line: &str,
) -> Result<String, String> {
    use std::io::BufRead;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("sending request: {e}"))?;
    let mut response = String::new();
    std::io::BufReader::new(stream)
        .read_line(&mut response)
        .map_err(|e| format!("reading response: {e}"))?;
    let response = response.trim_end();
    if response.is_empty() {
        return Err("daemon closed the connection without responding".into());
    }
    Ok(response.to_string())
}

/// Builds a request line from `--op` plus op-specific flags (the
/// flag-based alternative to passing `--json` verbatim).
fn build_request_line(args: &ParsedArgs) -> Result<String, String> {
    let op = args.required("op")?;
    let mut obj = symclust_engine::json::JsonObject::new();
    obj.string("op", op);
    if let Some(id) = args.optional("id") {
        obj.string("id", id);
    }
    if let Some(t) = args.get::<u64>("timeout-ms")? {
        obj.number("timeout-ms", t as f64);
    }
    match op {
        "upload-graph" => {
            let path = args.required("edges-file")?;
            let edges =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            obj.string("edges", &edges);
        }
        "symmetrize" | "cluster" => {
            obj.string("graph", args.required("graph")?);
            obj.string("method", args.optional("method").unwrap_or("aat"));
            for key in ["alpha", "beta", "threshold", "inflation"] {
                if let Some(v) = args.get::<f64>(key)? {
                    obj.number(key, v);
                }
            }
            for key in ["budget", "k"] {
                if let Some(v) = args.get::<u64>(key)? {
                    obj.number(key, v as f64);
                }
            }
            if op == "cluster" {
                obj.string("algo", args.optional("algo").unwrap_or("mlrmcl"));
            }
        }
        "query-membership" => {
            obj.string("key", args.required("key")?);
            obj.number("node", args.get_or("node", 0usize)? as f64);
        }
        "stats" | "health" | "shutdown" => {}
        other => return Err(format!("unknown op '{other}' for --op")),
    }
    Ok(obj.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> ParsedArgs {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        ParsedArgs::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("symclust_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_cli_pipeline() {
        let edges = tmp("edges.txt");
        let truth = tmp("truth.txt");
        let sym = tmp("sym.txt");
        let clusters = tmp("clusters.txt");

        generate(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("clusters", "6"),
            ("output", &edges),
            ("truth", &truth),
        ]))
        .unwrap();
        stats(&args(&[("input", &edges)])).unwrap();
        symmetrize(&args(&[
            ("input", &edges),
            ("method", "dd"),
            ("output", &sym),
        ]))
        .unwrap();
        cluster(&args(&[
            ("input", &sym),
            ("algo", "metis"),
            ("k", "6"),
            ("output", &clusters),
        ]))
        .unwrap();
        eval(&args(&[("clusters", &clusters), ("truth", &truth)])).unwrap();
        nibble(&args(&[("input", &edges), ("seed-node", "0")])).unwrap();
    }

    #[test]
    fn symmetrize_with_target_degree() {
        let edges = tmp("edges2.txt");
        let sym = tmp("sym2.txt");
        generate(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("output", &edges),
        ]))
        .unwrap();
        symmetrize(&args(&[
            ("input", &edges),
            ("method", "dd"),
            ("target-degree", "20"),
            ("output", &sym),
        ]))
        .unwrap();
        let g = read_ungraph(&sym, DEFAULT_SYMMETRY_TOLERANCE).unwrap();
        let avg = 2.0 * g.n_edges() as f64 / g.n_nodes() as f64;
        assert!(avg < 60.0, "avg degree {avg} far above target");
    }

    #[test]
    fn cluster_rejects_asymmetric_input() {
        let edges = tmp("edges3.txt");
        // A deliberately asymmetric edge list.
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        let err = cluster(&args(&[
            ("input", &edges),
            ("algo", "metis"),
            ("k", "2"),
            ("output", &tmp("never.txt")),
        ]))
        .unwrap_err();
        assert!(err.contains("not symmetric"), "{err}");
        // The diagnostic reports how asymmetric the input actually is.
        assert!(err.contains("max asymmetry"), "{err}");
        assert!(err.contains("1.000e0") || err.contains("1e0"), "{err}");
    }

    #[test]
    fn cluster_tolerance_flag_admits_near_symmetric_input() {
        let edges = tmp("edges_tol.txt");
        // Symmetric structure with a small numeric mismatch: asymmetry
        // |1.0 − 1.0001| well under a loose tolerance.
        std::fs::write(&edges, "0 1 1.0\n1 0 1.0001\n1 2 2.0\n2 1 2.0\n").unwrap();
        let strict = cluster(&args(&[
            ("input", &edges),
            ("algo", "metis"),
            ("k", "2"),
            ("output", &tmp("never2.txt")),
        ]))
        .unwrap_err();
        assert!(strict.contains("not symmetric"), "{strict}");
        cluster(&args(&[
            ("input", &edges),
            ("algo", "metis"),
            ("k", "2"),
            ("tolerance", "0.01"),
            ("output", &tmp("tol_clusters.txt")),
        ]))
        .unwrap();
    }

    #[test]
    fn pipeline_sweeps_and_writes_events_and_records() {
        let events = tmp("pipeline_events.jsonl");
        let records = tmp("pipeline_records.jsonl");
        pipeline(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("clusters", "6"),
            ("clusterers", "metis,graclus"),
            ("quiet", "true"),
            ("events", &events),
            ("records", &records),
        ]))
        .unwrap();
        // 4 methods × 2 clusterers = 8 records; cache hits keep the
        // symmetrizations at 4 computations.
        let recs = std::fs::read_to_string(&records).unwrap();
        assert_eq!(recs.lines().count(), 8, "{recs}");
        assert!(recs.lines().all(|l| l.contains("\"f_score\":")));
        let evs = std::fs::read_to_string(&events).unwrap();
        let hits = evs.lines().filter(|l| l.contains("\"cache_hit\"")).count();
        assert_eq!(hits, 4, "{evs}");
        assert!(evs.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn pipeline_metrics_table_and_json_cover_all_layers() {
        let metrics_out = tmp("pipeline_metrics.json");
        // Bare switches: `--metrics` with no value, as on a real command
        // line (`symclust pipeline --metrics --metrics-out m.json`).
        let flat: Vec<String> = [
            "--model",
            "dsbm",
            "--nodes",
            "300",
            "--clusters",
            "6",
            "--clusterers",
            "mlrmcl,metis",
            "--quiet",
            "--metrics",
            "--metrics-out",
            &metrics_out,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        pipeline(&ParsedArgs::parse(&flat).unwrap()).unwrap();

        let json = std::fs::read_to_string(&metrics_out).unwrap();
        let obj = symclust_engine::json::parse_object(&json).unwrap();
        let num = |key: &str| -> f64 {
            obj.get(key)
                .unwrap_or_else(|| panic!("missing key {key} in {json}"))
                .as_f64()
                .unwrap()
        };
        // SpGEMM work counters from the similarity symmetrizations:
        // bibliometric + degree-discounted are one fused two-term SYRK
        // product each (DESIGN.md §12).
        assert!(num("counter.spgemm.flops") > 0.0);
        assert!(num("counter.spgemm.nnz_final") > 0.0);
        assert!(num("counter.spgemm.calls") >= 2.0);
        assert_eq!(num("counter.spgemm.syrk_calls"), 2.0);
        assert!(num("counter.spgemm.syrk_mirrored_nnz") > 0.0);
        // Engine cache counters: 4 methods × 2 clusterers, each
        // symmetrization computed once.
        assert_eq!(num("counter.engine.cache_misses"), 4.0);
        assert_eq!(num("counter.engine.cache_hits"), 4.0);
        // Per-stage span timings and the run wall time.
        for kind in ["load", "symmetrize", "cluster", "evaluate"] {
            assert!(num(&format!("span.stage.{kind}.count")) > 0.0);
            assert!(num(&format!("span.stage.{kind}.total_secs")) >= 0.0);
        }
        assert!(num("wall_secs") > 0.0);
        // MCL counters from the mlrmcl chains.
        assert_eq!(num("counter.mcl.runs"), 4.0);
    }

    #[test]
    fn paranoid_validation_is_pure_observation() {
        // DESIGN.md §13: `--paranoid` re-validates every symmetrize/prune
        // output but must not observably change the run — zero new
        // metrics keys (so BENCH_pipeline.json and the bench baseline are
        // untouched) and bit-identical deterministic counters.
        let run = |paranoid: bool, out: &str| {
            let mut flat: Vec<String> = [
                "--model",
                "dsbm",
                "--nodes",
                "200",
                "--clusters",
                "4",
                "--clusterers",
                "metis",
                "--quiet",
                "--metrics-out",
                out,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            if paranoid {
                flat.push("--paranoid".to_string());
            }
            pipeline(&ParsedArgs::parse(&flat).unwrap()).unwrap();
        };
        let plain_out = tmp("metrics_plain.json");
        let paranoid_out = tmp("metrics_paranoid.json");
        run(false, &plain_out);
        run(true, &paranoid_out);
        let parse = |path: &str| {
            symclust_engine::json::parse_object(&std::fs::read_to_string(path).unwrap()).unwrap()
        };
        let plain = parse(&plain_out);
        let paranoid = parse(&paranoid_out);

        let keys = |m: &std::collections::HashMap<String, symclust_engine::json::JsonValue>| {
            let mut k: Vec<String> = m.keys().cloned().collect();
            k.sort();
            k
        };
        assert_eq!(
            keys(&plain),
            keys(&paranoid),
            "--paranoid changed the metrics key set"
        );

        // Scheduling-dependent counters vary run to run with or without
        // the flag (same exclusions as the bench gate's exact-match set).
        const SCHEDULING_DEPENDENT: &[&str] = &[
            "counter.spgemm.sched_steals",
            "counter.engine.inflight_dedups",
            "counter.engine.queue_depth_hwm",
        ];
        for (key, value) in &plain {
            if !key.starts_with("counter.") || SCHEDULING_DEPENDENT.contains(&key.as_str()) {
                continue;
            }
            assert_eq!(
                value.as_f64(),
                paranoid[key].as_f64(),
                "counter {key} differs under --paranoid"
            );
        }
    }

    #[test]
    fn pipeline_resume_skips_journaled_chains() {
        let journal = tmp("pipeline_journal.jsonl");
        std::fs::remove_file(&journal).ok();
        let events = tmp("resume_events.jsonl");
        let records = tmp("resume_records.jsonl");
        let base = [
            ("model", "dsbm"),
            ("nodes", "300"),
            ("clusters", "6"),
            ("clusterers", "metis"),
            ("quiet", "true"),
            ("resume", journal.as_str()),
        ];
        pipeline(&args(&base)).unwrap();
        // 4 methods × 1 clusterer = 4 completed chains journaled.
        let journaled = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(journaled.lines().count(), 4, "{journaled}");
        assert!(journaled.lines().all(|l| l.contains("\"chain_key\":")));

        // Second run against the same journal resumes every chain: records
        // are reproduced, but no stage beyond Load executes.
        let mut rerun = base.to_vec();
        rerun.push(("events", events.as_str()));
        rerun.push(("records", records.as_str()));
        pipeline(&args(&rerun)).unwrap();
        let recs = std::fs::read_to_string(&records).unwrap();
        assert_eq!(recs.lines().count(), 4, "{recs}");
        let evs = std::fs::read_to_string(&events).unwrap();
        let resumed = evs
            .lines()
            .filter(|l| l.contains("\"stage_resumed\""))
            .count();
        assert_eq!(resumed, 12, "3 resumed stages per chain:\n{evs}");
        let restarted = evs
            .lines()
            .filter(|l| l.contains("\"stage_started\"") && l.contains("\"symmetrize\""))
            .count();
        assert_eq!(restarted, 0, "no symmetrization may re-execute:\n{evs}");
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn pipeline_memory_budget_marks_degraded_records() {
        let records = tmp("budget_records.jsonl");
        pipeline(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("clusters", "6"),
            ("clusterers", "metis"),
            ("memory-budget", "100"),
            ("quiet", "true"),
            ("records", &records),
        ]))
        .unwrap();
        let recs = std::fs::read_to_string(&records).unwrap();
        assert_eq!(recs.lines().count(), 4, "{recs}");
        // The two SpGEMM-based similarity methods degrade under a 100-entry
        // budget; A+A' and RW never allocate a product and stay exact.
        let degraded = recs
            .lines()
            .filter(|l| l.contains("\"degraded\":true"))
            .count();
        assert_eq!(degraded, 2, "{recs}");
    }

    #[test]
    fn pipeline_rejects_zero_retries() {
        let err = pipeline(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("retries", "0"),
            ("quiet", "true"),
        ]))
        .unwrap_err();
        assert!(err.contains("--retries"), "{err}");
    }

    #[test]
    fn pipeline_rejects_unknown_clusterer() {
        let err = pipeline(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("clusterers", "metis,nope"),
            ("quiet", "true"),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown clusterer"), "{err}");
    }

    #[test]
    fn unknown_options_error_cleanly() {
        assert!(generate(&args(&[("model", "nope"), ("output", "x")])).is_err());
        let edges = tmp("edges4.txt");
        std::fs::write(&edges, "0 1\n1 0\n").unwrap();
        assert!(symmetrize(&args(&[
            ("input", &edges),
            ("method", "nope"),
            ("output", &tmp("y.txt")),
        ]))
        .is_err());
        assert!(cluster(&args(&[
            ("input", &edges),
            ("algo", "metis"),
            ("output", &tmp("z.txt")),
        ]))
        .is_err());
    }

    #[test]
    fn kronecker_generate_has_no_truth() {
        let edges = tmp("kron.txt");
        let err = generate(&args(&[
            ("model", "kronecker"),
            ("levels", "8"),
            ("edges", "500"),
            ("output", &edges),
            ("truth", &tmp("kron_truth.txt")),
        ]))
        .unwrap_err();
        assert!(err.contains("no ground truth"), "{err}");
        // Without --truth it succeeds.
        generate(&args(&[
            ("model", "kronecker"),
            ("levels", "8"),
            ("edges", "500"),
            ("output", &edges),
        ]))
        .unwrap();
    }

    #[test]
    fn overloaded_retry_hint_parses_only_overloaded_lines() {
        assert_eq!(
            overloaded_retry_after(
                r#"{"ok":false,"error":"overloaded","retry-after-ms":75,"detail":"x"}"#
            ),
            Some(75)
        );
        assert_eq!(
            overloaded_retry_after(r#"{"ok":false,"error":"overloaded","detail":"x"}"#),
            Some(protocol::RETRY_AFTER_MS)
        );
        assert_eq!(overloaded_retry_after(r#"{"ok":true,"op":"stats"}"#), None);
        assert_eq!(
            overloaded_retry_after(r#"{"ok":false,"error":"internal","detail":"x"}"#),
            None
        );
        assert_eq!(overloaded_retry_after("not json"), None);
    }

    #[test]
    fn client_rejects_zero_retries() {
        let err = client(&args(&[
            ("socket", "/nonexistent/symclust.sock"),
            ("op", "stats"),
            ("retries", "0"),
        ]))
        .unwrap_err();
        assert!(err.contains("--retries"), "{err}");
    }

    #[test]
    fn client_retries_connect_failures_then_gives_up() {
        let sock = tmp("never_served.sock");
        std::fs::remove_file(&sock).ok();
        let start = std::time::Instant::now();
        let err = client(&args(&[
            ("socket", &sock),
            ("op", "stats"),
            ("retries", "2"),
        ]))
        .unwrap_err();
        assert!(err.contains("connecting to"), "{err}");
        // Two attempts means one backoff slept in between (equal jitter
        // keeps it at >= base/2 = 25 ms).
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(25),
            "no backoff happened"
        );
    }

    #[test]
    fn serve_and_client_subcommands_roundtrip() {
        let dir = std::env::temp_dir().join(format!("symclust_cli_serve_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("sock").to_string_lossy().into_owned();
        let store = dir.join("store").to_string_lossy().into_owned();
        let edges = dir.join("edges.txt").to_string_lossy().into_owned();
        std::fs::write(&edges, "0 1\n1 2\n2 0\n").unwrap();

        let daemon = {
            let sock = sock.clone();
            let store = store.clone();
            std::thread::spawn(move || serve(&args(&[("socket", &sock), ("store", &store)])))
        };
        // Wait for the socket to come up.
        for _ in 0..200 {
            if std::os::unix::net::UnixStream::connect(&sock).is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        client(&args(&[
            ("socket", &sock),
            ("op", "upload-graph"),
            ("edges-file", &edges),
        ]))
        .unwrap();
        client(&args(&[("socket", &sock), ("op", "stats")])).unwrap();
        client(&args(&[("socket", &sock), ("op", "health")])).unwrap();
        // A daemon-side error response makes the client exit nonzero.
        let err = client(&args(&[
            ("socket", &sock),
            (
                "json",
                r#"{"op":"symmetrize","graph":"00000000000000ff","method":"aat"}"#,
            ),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown graph"), "{err}");
        // And so does a locally-invalid request, without a round-trip.
        assert!(client(&args(&[("socket", &sock), ("op", "nope")])).is_err());

        client(&args(&[("socket", &sock), ("op", "shutdown")])).unwrap();
        daemon.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

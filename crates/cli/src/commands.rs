//! Subcommand implementations for the `symclust` CLI.

use crate::args::ParsedArgs;
use crate::formats;
use symclust_cluster::{
    pagerank_nibble, pagerank_nibble_directed, ClusterAlgorithm, GraclusLike, MetisLike, MlrMcl,
    NibbleOptions, SpectralClustering,
};
use symclust_core::{
    select_threshold, Bibliometric, BibliometricOptions, DegreeDiscounted, DegreeDiscountedOptions,
    DiscountExponent, PlusTranspose, RandomWalk, Symmetrizer,
};
use symclust_eval::avg_f_score;
use symclust_graph::generators::{
    kronecker_graph, shared_link_dsbm, KroneckerConfig, SharedLinkDsbmConfig,
};
use symclust_graph::stats::GraphStats;
use symclust_graph::{io, DiGraph, GroundTruth, UnGraph};

type CmdResult = Result<(), String>;

fn read_digraph(path: &str) -> Result<DiGraph, String> {
    io::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))
}

fn read_ungraph(path: &str) -> Result<UnGraph, String> {
    let g = read_digraph(path)?;
    // Symmetrized edge lists store both directions; accept either and
    // symmetrize structurally if needed.
    let adj = g.into_adjacency();
    if adj.is_symmetric(1e-9) {
        Ok(UnGraph::from_symmetric_unchecked(adj))
    } else {
        Err(format!(
            "{path} is not symmetric — run `symclust symmetrize` first"
        ))
    }
}

/// `symclust generate`.
pub fn generate(args: &ParsedArgs) -> CmdResult {
    let model = args.get_or("model", "dsbm".to_string())?;
    let output = args.required("output")?;
    let seed: u64 = args.get_or("seed", 42u64)?;
    let nodes: Option<usize> = args.get("nodes")?;

    let (graph, truth): (DiGraph, Option<GroundTruth>) = match model.as_str() {
        "dsbm" => {
            let cfg = SharedLinkDsbmConfig {
                n_nodes: nodes.unwrap_or(1000),
                n_clusters: args.get_or("clusters", 20usize)?,
                seed,
                ..Default::default()
            };
            let g = shared_link_dsbm(&cfg).map_err(|e| e.to_string())?;
            (g.graph, Some(g.truth))
        }
        "kronecker" => {
            let cfg = KroneckerConfig {
                levels: args.get_or("levels", 12u32)?,
                n_edges: args.get_or("edges", 40_000usize)?,
                seed,
                ..Default::default()
            };
            (kronecker_graph(&cfg).map_err(|e| e.to_string())?, None)
        }
        "cora" => {
            let d = symclust_datasets::cora_like_scaled(nodes.unwrap_or(2100));
            (d.graph, d.truth)
        }
        "wikipedia" => {
            let d = symclust_datasets::wikipedia_like_scaled(nodes.unwrap_or(9000));
            (d.graph, d.truth)
        }
        "flickr" => {
            let d = symclust_datasets::flickr_like_scaled(nodes.unwrap_or(15_000));
            (d.graph, d.truth)
        }
        "livejournal" => {
            let d = symclust_datasets::livejournal_like_scaled(nodes.unwrap_or(20_000));
            (d.graph, d.truth)
        }
        other => return Err(format!("unknown model '{other}'")),
    };
    io::write_edge_list_file(&graph, output).map_err(|e| e.to_string())?;
    println!(
        "wrote {} nodes / {} edges to {output}",
        graph.n_nodes(),
        graph.n_edges()
    );
    if let Some(truth_path) = args.optional("truth") {
        match truth {
            Some(t) => {
                let file = std::fs::File::create(truth_path).map_err(|e| e.to_string())?;
                formats::write_ground_truth(&t, file)?;
                println!("wrote {} categories to {truth_path}", t.n_categories());
            }
            None => return Err(format!("model '{model}' has no ground truth")),
        }
    }
    Ok(())
}

/// `symclust stats`.
pub fn stats(args: &ParsedArgs) -> CmdResult {
    let g = read_digraph(args.required("input")?)?;
    let s = GraphStats::of(&g);
    println!("nodes:              {}", s.n_nodes);
    println!("edges:              {}", s.n_edges);
    println!("% symmetric links:  {:.1}", s.percent_symmetric);
    println!("max in-degree:      {}", s.max_in_degree);
    println!("max out-degree:     {}", s.max_out_degree);
    println!("mean total degree:  {:.2}", s.mean_degree);
    println!(
        "similarity flops:   {} (Σ dᵢ², §3.6 cost bound)",
        g.similarity_flops()
    );
    Ok(())
}

/// `symclust symmetrize`.
pub fn symmetrize(args: &ParsedArgs) -> CmdResult {
    let g = read_digraph(args.required("input")?)?;
    let output = args.required("output")?;
    let method = args.get_or("method", "dd".to_string())?;
    let alpha: f64 = args.get_or("alpha", 0.5)?;
    let beta: f64 = args.get_or("beta", 0.5)?;
    let mut threshold: f64 = args.get_or("threshold", 0.0)?;

    // §5.3.1 sample-based threshold selection when a target degree is given.
    if let Some(target) = args.get::<f64>("target-degree")? {
        let opts = match method.as_str() {
            "bib" => DegreeDiscountedOptions {
                alpha: DiscountExponent::Power(0.0),
                beta: DiscountExponent::Power(0.0),
                add_identity: true,
                ..Default::default()
            },
            _ => DegreeDiscountedOptions {
                alpha: DiscountExponent::Power(alpha),
                beta: DiscountExponent::Power(beta),
                ..Default::default()
            },
        };
        threshold = select_threshold(&g, &opts, target, 120, 7)
            .map_err(|e| e.to_string())?
            .threshold;
        println!("selected threshold {threshold:.6} for target degree {target}");
    }

    let sym = match method.as_str() {
        "aat" => PlusTranspose.symmetrize(&g),
        "rw" => RandomWalk::default().symmetrize(&g),
        "bib" => Bibliometric {
            options: BibliometricOptions {
                threshold,
                ..Default::default()
            },
        }
        .symmetrize(&g),
        "dd" => DegreeDiscounted {
            options: DegreeDiscountedOptions {
                alpha: DiscountExponent::Power(alpha),
                beta: DiscountExponent::Power(beta),
                threshold,
                ..Default::default()
            },
        }
        .symmetrize(&g),
        other => return Err(format!("unknown method '{other}' (aat|rw|bib|dd)")),
    }
    .map_err(|e| e.to_string())?;

    let out_graph = DiGraph::from_adjacency(sym.adjacency().clone()).map_err(|e| e.to_string())?;
    io::write_edge_list_file(&out_graph, output).map_err(|e| e.to_string())?;
    println!(
        "{}: {} undirected edges, {} singletons, {:.3}s -> {output}",
        sym.method(),
        sym.n_edges(),
        sym.n_singletons(),
        sym.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `symclust cluster`.
pub fn cluster(args: &ParsedArgs) -> CmdResult {
    let g = read_ungraph(args.required("input")?)?;
    let output = args.required("output")?;
    let algo = args.get_or("algo", "mlrmcl".to_string())?;
    let k: usize = args.get_or("k", 0usize)?;
    let clustering = match algo.as_str() {
        "mlrmcl" => {
            let inflation: f64 = args.get_or("inflation", 2.0)?;
            MlrMcl::with_inflation(inflation).cluster_ungraph(&g)
        }
        "metis" => {
            if k == 0 {
                return Err("--k is required for metis".into());
            }
            MetisLike::with_k(k).cluster_ungraph(&g)
        }
        "graclus" => {
            if k == 0 {
                return Err("--k is required for graclus".into());
            }
            GraclusLike::with_k(k).cluster_ungraph(&g)
        }
        "spectral" => {
            if k == 0 {
                return Err("--k is required for spectral".into());
            }
            SpectralClustering::with_k(k).cluster_ungraph(&g)
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    }
    .map_err(|e| e.to_string())?;
    let file = std::fs::File::create(output).map_err(|e| e.to_string())?;
    formats::write_clustering(clustering.assignments(), file)?;
    println!(
        "{algo}: {} clusters over {} nodes -> {output}",
        clustering.n_clusters(),
        clustering.n_nodes()
    );
    Ok(())
}

/// `symclust eval`.
pub fn eval(args: &ParsedArgs) -> CmdResult {
    let clusters_path = args.required("clusters")?;
    let truth_path = args.required("truth")?;
    let assignments =
        formats::read_clustering(std::fs::File::open(clusters_path).map_err(|e| e.to_string())?)?;
    let truth = formats::read_ground_truth(
        std::fs::File::open(truth_path).map_err(|e| e.to_string())?,
        assignments.len(),
    )?;
    let report = avg_f_score(&assignments, &truth);
    println!("clusters:          {}", report.n_clusters);
    println!("avg F-score:       {:.2}", report.avg_f);
    let matched = report.best_match.iter().filter(|m| m.is_some()).count();
    println!("matched clusters:  {matched}/{}", report.n_clusters);
    Ok(())
}

/// `symclust nibble`.
pub fn nibble(args: &ParsedArgs) -> CmdResult {
    let input = args.required("input")?;
    let seed_node: usize = args.get_or("seed-node", 0usize)?;
    let directed: bool = args.get_or("directed", true)?;
    let opts = NibbleOptions {
        alpha: args.get_or("alpha", 0.15)?,
        epsilon: args.get_or("epsilon", 1e-5)?,
        max_cluster_size: args.get_or("max-size", 0usize)?,
    };
    let cluster = if directed {
        let g = read_digraph(input)?;
        pagerank_nibble_directed(&g, seed_node, &opts)
    } else {
        let g = read_ungraph(input)?;
        pagerank_nibble(&g, seed_node, &opts)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "local cluster around {seed_node}: {} members, conductance {:.4} ({} pushes)",
        cluster.members.len(),
        cluster.conductance,
        cluster.pushes
    );
    println!("{:?}", cluster.members);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> ParsedArgs {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        ParsedArgs::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("symclust_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn full_cli_pipeline() {
        let edges = tmp("edges.txt");
        let truth = tmp("truth.txt");
        let sym = tmp("sym.txt");
        let clusters = tmp("clusters.txt");

        generate(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("clusters", "6"),
            ("output", &edges),
            ("truth", &truth),
        ]))
        .unwrap();
        stats(&args(&[("input", &edges)])).unwrap();
        symmetrize(&args(&[
            ("input", &edges),
            ("method", "dd"),
            ("output", &sym),
        ]))
        .unwrap();
        cluster(&args(&[
            ("input", &sym),
            ("algo", "metis"),
            ("k", "6"),
            ("output", &clusters),
        ]))
        .unwrap();
        eval(&args(&[("clusters", &clusters), ("truth", &truth)])).unwrap();
        nibble(&args(&[("input", &edges), ("seed-node", "0")])).unwrap();
    }

    #[test]
    fn symmetrize_with_target_degree() {
        let edges = tmp("edges2.txt");
        let sym = tmp("sym2.txt");
        generate(&args(&[
            ("model", "dsbm"),
            ("nodes", "300"),
            ("output", &edges),
        ]))
        .unwrap();
        symmetrize(&args(&[
            ("input", &edges),
            ("method", "dd"),
            ("target-degree", "20"),
            ("output", &sym),
        ]))
        .unwrap();
        let g = read_ungraph(&sym).unwrap();
        let avg = 2.0 * g.n_edges() as f64 / g.n_nodes() as f64;
        assert!(avg < 60.0, "avg degree {avg} far above target");
    }

    #[test]
    fn cluster_rejects_asymmetric_input() {
        let edges = tmp("edges3.txt");
        // A deliberately asymmetric edge list.
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        let err = cluster(&args(&[
            ("input", &edges),
            ("algo", "metis"),
            ("k", "2"),
            ("output", &tmp("never.txt")),
        ]))
        .unwrap_err();
        assert!(err.contains("not symmetric"), "{err}");
    }

    #[test]
    fn unknown_options_error_cleanly() {
        assert!(generate(&args(&[("model", "nope"), ("output", "x")])).is_err());
        let edges = tmp("edges4.txt");
        std::fs::write(&edges, "0 1\n1 0\n").unwrap();
        assert!(symmetrize(&args(&[
            ("input", &edges),
            ("method", "nope"),
            ("output", &tmp("y.txt")),
        ]))
        .is_err());
        assert!(cluster(&args(&[
            ("input", &edges),
            ("algo", "metis"),
            ("output", &tmp("z.txt")),
        ]))
        .is_err());
    }

    #[test]
    fn kronecker_generate_has_no_truth() {
        let edges = tmp("kron.txt");
        let err = generate(&args(&[
            ("model", "kronecker"),
            ("levels", "8"),
            ("edges", "500"),
            ("output", &edges),
            ("truth", &tmp("kron_truth.txt")),
        ]))
        .unwrap_err();
        assert!(err.contains("no ground truth"), "{err}");
        // Without --truth it succeeds.
        generate(&args(&[
            ("model", "kronecker"),
            ("levels", "8"),
            ("edges", "500"),
            ("output", &edges),
        ]))
        .unwrap();
    }
}

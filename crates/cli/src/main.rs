//! The `symclust` command-line tool. All logic lives in `symclust_cli`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(symclust_cli::run(&argv));
}

//! Wire protocol for `symclust serve`: newline-delimited flat JSON.
//!
//! One request per line, one response line per request, both flat JSON
//! objects in the engine's own schema-matched dialect
//! ([`symclust_engine::json`]) — no nesting, no arrays, so the daemon
//! and client share the workspace's existing writer/parser instead of
//! growing a JSON library. Full semantics in DESIGN.md §14.
//!
//! Requests carry an `op` plus op-specific fields; `id` (echoed back
//! verbatim) and `timeout-ms` (per-request deadline) are accepted on any
//! op. Responses are **deterministic**: for a given request they contain
//! only content-derived fields (keys, dimensions, content checksums) —
//! never timings, tiers, or hit/miss markers — so two identical requests
//! produce byte-identical response lines whether they were computed,
//! served from memory, or served from the disk store. Cache behavior is
//! observable through the `stats` op and the metrics registry, not
//! through response bytes.
//!
//! Error responses use a closed set of codes:
//! `bad-request` | `not-found` | `overloaded` | `deadline` | `cancelled`
//! | `internal`.

use std::collections::HashMap;

use symclust_engine::json::{parse_object, JsonObject, JsonValue};
use symclust_engine::{Clusterer, SymMethod};

/// A parsed request line: the op payload plus the cross-cutting fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed into the response.
    pub id: Option<String>,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// The operation.
    pub request: Request,
}

/// The operations the daemon accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a directed graph (edge-list text) and persist its
    /// adjacency; later ops refer to it by the returned fingerprint.
    UploadGraph {
        /// Edge-list text, same format as the CLI's file inputs.
        edges: String,
    },
    /// Symmetrize an uploaded graph with one of the paper's methods.
    Symmetrize {
        /// Fingerprint of a previously uploaded graph.
        graph_fp: u64,
        /// The symmetrization method with its parameters.
        method: SymMethod,
        /// Optional SpGEMM output budget (stored entries).
        budget: Option<usize>,
    },
    /// Symmetrize then cluster an uploaded graph.
    Cluster {
        /// Fingerprint of a previously uploaded graph.
        graph_fp: u64,
        /// The symmetrization feeding the clusterer.
        method: SymMethod,
        /// Optional SpGEMM output budget (stored entries).
        budget: Option<usize>,
        /// The clustering algorithm with its parameters.
        clusterer: Clusterer,
    },
    /// Look up one node's cluster id in a clustering artifact.
    QueryMembership {
        /// Artifact key returned by a `cluster` response.
        cluster_key: u64,
        /// Node index.
        node: usize,
    },
    /// Store and daemon counters.
    Stats,
    /// Readiness probe: answered out-of-band of the admission queue
    /// (from atomics only), so it works even while the daemon drains or
    /// the queue is full. Excluded from the byte-determinism guarantee —
    /// it reports live state (queue depth, drain progress) by design.
    Health,
    /// Orderly daemon shutdown.
    Shutdown,
}

/// Error codes a response can carry (closed set, DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse or referenced unknown fields.
    BadRequest,
    /// A referenced graph or artifact key is unknown.
    NotFound,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The per-request deadline expired mid-computation.
    Deadline,
    /// The request was cancelled (client disconnected).
    Cancelled,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NotFound => "not-found",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Internal => "internal",
        }
    }
}

fn get_str(map: &HashMap<String, JsonValue>, key: &str) -> Result<String, String> {
    map.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn get_f64(map: &HashMap<String, JsonValue>, key: &str, default: f64) -> Result<f64, String> {
    match map.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

fn get_usize(map: &HashMap<String, JsonValue>, key: &str) -> Result<Option<usize>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(v) => {
            let x = v
                .as_f64()
                .ok_or_else(|| format!("field '{key}' must be a number"))?;
            if x < 0.0 || x.fract() != 0.0 {
                return Err(format!("field '{key}' must be a non-negative integer"));
            }
            Ok(Some(x as usize))
        }
    }
}

fn get_key_hex(map: &HashMap<String, JsonValue>, key: &str) -> Result<u64, String> {
    let hex = get_str(map, key)?;
    u64::from_str_radix(&hex, 16)
        .map_err(|_| format!("field '{key}' must be a hex key, got '{hex}'"))
}

fn parse_method(map: &HashMap<String, JsonValue>) -> Result<SymMethod, String> {
    let method = get_str(map, "method")?;
    let alpha = get_f64(map, "alpha", 0.5)?;
    let beta = get_f64(map, "beta", 0.5)?;
    let threshold = get_f64(map, "threshold", 0.0)?;
    match method.as_str() {
        "aat" => Ok(SymMethod::PlusTranspose),
        "rw" => Ok(SymMethod::RandomWalk),
        "bib" => Ok(SymMethod::Bibliometric { threshold }),
        "dd" => Ok(SymMethod::DegreeDiscounted {
            alpha,
            beta,
            threshold,
        }),
        other => Err(format!("unknown method '{other}' (aat|rw|bib|dd)")),
    }
}

fn parse_clusterer(map: &HashMap<String, JsonValue>) -> Result<Clusterer, String> {
    let algo = get_str(map, "algo")?;
    match algo.as_str() {
        "mlrmcl" => Ok(Clusterer::MlrMcl {
            inflation: get_f64(map, "inflation", 2.0)?,
        }),
        "metis" => Ok(Clusterer::Metis {
            k: get_usize(map, "k")?.ok_or("field 'k' is required for metis")?,
        }),
        "graclus" => Ok(Clusterer::Graclus {
            k: get_usize(map, "k")?.ok_or("field 'k' is required for graclus")?,
        }),
        other => Err(format!("unknown algo '{other}' (mlrmcl|metis|graclus)")),
    }
}

/// Parses one request line. Errors are client-facing `bad-request`
/// details.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let map = parse_object(line)?;
    let id = map
        .get("id")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let timeout_ms = match get_usize(&map, "timeout-ms")? {
        Some(0) => return Err("field 'timeout-ms' must be positive".into()),
        other => other.map(|t| t as u64),
    };
    let op = get_str(&map, "op")?;
    let request = match op.as_str() {
        "upload-graph" => Request::UploadGraph {
            edges: get_str(&map, "edges")?,
        },
        "symmetrize" => Request::Symmetrize {
            graph_fp: get_key_hex(&map, "graph")?,
            method: parse_method(&map)?,
            budget: get_usize(&map, "budget")?,
        },
        "cluster" => Request::Cluster {
            graph_fp: get_key_hex(&map, "graph")?,
            method: parse_method(&map)?,
            budget: get_usize(&map, "budget")?,
            clusterer: parse_clusterer(&map)?,
        },
        "query-membership" => Request::QueryMembership {
            cluster_key: get_key_hex(&map, "key")?,
            node: get_usize(&map, "node")?.ok_or("field 'node' is required")?,
        },
        "stats" => Request::Stats,
        "health" => Request::Health,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(format!(
                "unknown op '{other}' (upload-graph|symmetrize|cluster|\
                 query-membership|stats|health|shutdown)"
            ))
        }
    };
    Ok(Envelope {
        id,
        timeout_ms,
        request,
    })
}

/// The op name of a parsed request (echoed into its response).
pub fn op_name(request: &Request) -> &'static str {
    match request {
        Request::UploadGraph { .. } => "upload-graph",
        Request::Symmetrize { .. } => "symmetrize",
        Request::Cluster { .. } => "cluster",
        Request::QueryMembership { .. } => "query-membership",
        Request::Stats => "stats",
        Request::Health => "health",
        Request::Shutdown => "shutdown",
    }
}

/// Starts a success response: `ok`, `op`, and the echoed `id` come first
/// so every response line is self-describing.
pub fn response_ok(op: &str, id: Option<&str>) -> JsonObject {
    let mut obj = JsonObject::new();
    obj.boolean("ok", true);
    obj.string("op", op);
    if let Some(id) = id {
        obj.string("id", id);
    }
    obj
}

/// A complete error response line (without trailing newline).
pub fn response_error(op: Option<&str>, id: Option<&str>, code: ErrorCode, detail: &str) -> String {
    let mut obj = JsonObject::new();
    obj.boolean("ok", false);
    if let Some(op) = op {
        obj.string("op", op);
    }
    if let Some(id) = id {
        obj.string("id", id);
    }
    obj.string("error", code.as_str());
    obj.string("detail", detail);
    obj.finish()
}

/// The backoff hint an `overloaded` response carries in `retry-after-ms`.
/// One constant for now — queue pressure clears on the order of one
/// request, and a fancier adaptive hint would leak scheduling state into
/// response bytes.
pub const RETRY_AFTER_MS: u64 = 50;

/// A complete `overloaded` error line carrying the `retry-after-ms`
/// backoff hint ([`RETRY_AFTER_MS`]); clients honor it as a floor on
/// their next retry delay.
pub fn response_overloaded(op: Option<&str>, id: Option<&str>, detail: &str) -> String {
    let mut obj = JsonObject::new();
    obj.boolean("ok", false);
    if let Some(op) = op {
        obj.string("op", op);
    }
    if let Some(id) = id {
        obj.string("id", id);
    }
    obj.string("error", ErrorCode::Overloaded.as_str());
    obj.number("retry-after-ms", RETRY_AFTER_MS as f64);
    obj.string("detail", detail);
    obj.finish()
}

/// Renders a 64-bit artifact key the way every response spells it.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let e = parse_request(r#"{"op":"upload-graph","edges":"0 1\n1 0\n","id":"a"}"#).unwrap();
        assert_eq!(e.id.as_deref(), Some("a"));
        assert!(matches!(e.request, Request::UploadGraph { .. }));

        let e = parse_request(
            r#"{"op":"symmetrize","graph":"00000000000000ff","method":"bib","threshold":0.5}"#,
        )
        .unwrap();
        match e.request {
            Request::Symmetrize {
                graph_fp, method, ..
            } => {
                assert_eq!(graph_fp, 0xff);
                assert_eq!(method, SymMethod::Bibliometric { threshold: 0.5 });
            }
            other => panic!("{other:?}"),
        }

        let e = parse_request(
            r#"{"op":"cluster","graph":"1","method":"aat","algo":"metis","k":4,"timeout-ms":500}"#,
        )
        .unwrap();
        assert_eq!(e.timeout_ms, Some(500));
        match e.request {
            Request::Cluster { clusterer, .. } => {
                assert_eq!(clusterer, Clusterer::Metis { k: 4 });
            }
            other => panic!("{other:?}"),
        }

        let e = parse_request(r#"{"op":"query-membership","key":"2a","node":7}"#).unwrap();
        assert_eq!(
            e.request,
            Request::QueryMembership {
                cluster_key: 0x2a,
                node: 7
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap().request,
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#).unwrap().request,
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap().request,
            Request::Shutdown
        );
    }

    #[test]
    fn rejections_name_the_problem() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"edges":"x"}"#)
            .unwrap_err()
            .contains("op"));
        assert!(parse_request(r#"{"op":"nope"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(
            parse_request(r#"{"op":"symmetrize","graph":"zz","method":"aat"}"#)
                .unwrap_err()
                .contains("hex")
        );
        assert!(
            parse_request(r#"{"op":"symmetrize","graph":"1","method":"huh"}"#)
                .unwrap_err()
                .contains("unknown method")
        );
        assert!(
            parse_request(r#"{"op":"cluster","graph":"1","method":"aat","algo":"metis"}"#)
                .unwrap_err()
                .contains("'k'")
        );
        assert!(parse_request(r#"{"op":"stats","timeout-ms":0}"#)
            .unwrap_err()
            .contains("timeout-ms"));
        assert!(parse_request(r#"{"op":"query-membership","key":"1","node":-2}"#).is_err());
    }

    #[test]
    fn default_method_parameters_match_the_cli() {
        let e = parse_request(r#"{"op":"symmetrize","graph":"1","method":"dd"}"#).unwrap();
        match e.request {
            Request::Symmetrize { method, .. } => assert_eq!(
                method,
                SymMethod::DegreeDiscounted {
                    alpha: 0.5,
                    beta: 0.5,
                    threshold: 0.0
                }
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_are_flat_and_deterministic() {
        let mut ok = response_ok("symmetrize", Some("req-1"));
        ok.string("key", &key_hex(0x2a));
        ok.number("nodes", 10.0);
        let line = ok.finish();
        assert_eq!(
            line,
            r#"{"ok":true,"op":"symmetrize","id":"req-1","key":"000000000000002a","nodes":10}"#
        );
        // Writer output parses back with the shared flat parser.
        assert!(parse_object(&line).is_ok());

        let err = response_error(Some("cluster"), None, ErrorCode::Overloaded, "queue full");
        assert!(err.contains(r#""error":"overloaded""#));
        assert!(parse_object(&err).is_ok());
    }

    #[test]
    fn overloaded_responses_carry_the_retry_hint() {
        let line = response_overloaded(Some("cluster"), Some("r9"), "queue full");
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields["error"].as_str(), Some("overloaded"));
        assert_eq!(fields["id"].as_str(), Some("r9"));
        assert_eq!(
            fields["retry-after-ms"].as_f64(),
            Some(RETRY_AFTER_MS as f64)
        );
    }

    #[test]
    fn error_codes_are_a_closed_stable_set() {
        let codes = [
            ErrorCode::BadRequest,
            ErrorCode::NotFound,
            ErrorCode::Overloaded,
            ErrorCode::Deadline,
            ErrorCode::Cancelled,
            ErrorCode::Internal,
        ];
        let names: Vec<&str> = codes.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            names,
            [
                "bad-request",
                "not-found",
                "overloaded",
                "deadline",
                "cancelled",
                "internal"
            ]
        );
    }
}

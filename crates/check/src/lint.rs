//! Repo-invariant lint driver.
//!
//! `cargo clippy` enforces language-level hygiene; this module enforces the
//! *workspace contracts* that no generic tool knows about (DESIGN.md §13):
//!
//! 1. **kernel-cancel-token** — every public kernel entry point in
//!    `sparse`/`core`/`cluster`/`store` (SpGEMM, symmetrizations,
//!    clusterers, PageRank, Lanczos, nibble, cached-kernel wrappers) must
//!    accept a `CancelToken`, or be on the allowlist of deliberate
//!    convenience wrappers whose cancellable sibling exists.
//! 2. **metric-name-taxonomy** — every metric name registered in source
//!    (via `metric_names` constants or inline `.counter("…")`-style calls)
//!    must appear in DESIGN.md §11, and every bench-gate `EXACT_KEYS`
//!    entry must correspond to a name actually registered in source. A
//!    renamed counter therefore fails CI instead of silently flatlining a
//!    dashboard or orphaning a baseline key.
//! 3. **no-unwrap-expect** — no `.unwrap()` / `.expect(` in non-test
//!    library code; panics belong to callers, not kernels. Allowlisted:
//!    mutex-lock expects (poisoning is fatal by design) and a handful of
//!    structurally-infallible cases, each with a recorded reason.
//! 4. **cache-key-purity** — cache-key/fingerprint code must stay
//!    deterministic: no wall-clock reads and no thread counts may flow
//!    into `fingerprint.rs`, `cache.rs`, or any `*cache_params*` /
//!    `chain_key` / `stage_key` / `symmetrize_key` / `cluster_key`
//!    function body, in the engine or the store (whose on-disk content
//!    addresses are derived from the same keys). (Thread count is
//!    excluded from cache keys *on purpose* — kernels are
//!    bit-deterministic across thread counts, DESIGN.md §12.)
//! 5. **store-faultfs** — non-test library code in `crates/store` must
//!    not call `std::fs` directly; every filesystem touch goes through
//!    the `faultfs` shim so the chaos harness's deterministic fault
//!    schedules (DESIGN.md §15) actually cover it. A raw call is an
//!    unfaultable blind spot. Allowlisted: `faultfs.rs` itself, the
//!    single mediation point.
//! 6. **sparse-spillfs** — the same contract for `crates/sparse`: all
//!    scratch-file I/O goes through `spill.rs`.
//! 7. **error-code-taxonomy** — the closed protocol error-code set in
//!    `crates/cli/src/protocol.rs` must match the DESIGN.md §14 error
//!    table in both directions, mirroring the metric-taxonomy rule.
//! 8. **atomic-ordering** — every `Ordering::Relaxed` in non-test
//!    library code must carry a reason-carrying [`ALLOW_RELAXED`] entry
//!    naming the atomic and why relaxed ordering is sound there
//!    (DESIGN.md §18). An unexplained Relaxed on an atomic used for
//!    cross-thread handoff is exactly where lost-wakeup and stale-flag
//!    races hide; the audit makes each one a deliberate, documented
//!    decision.
//!
//! The scanner is line-based over comment/string-stripped source (no
//! syntax tree, zero dependencies): the rules only need signatures,
//! brace depth, and string literals, and a small scanner that CI builds
//! in two seconds beats a proc-macro stack. The stripping itself is done
//! by the token-stream lexer in [`crate::lexer`], so comments, raw
//! strings, char literals, and lifetimes are classified once, correctly,
//! for every rule. Every allowlist entry is checked for staleness — an
//! entry that matches nothing is itself a lint error, so the lists
//! cannot rot.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (see module docs).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The rules this driver enforces, with one-line summaries (for
/// `symclust-check list-rules`).
pub const RULES: &[(&str, &str)] = &[
    (
        "kernel-cancel-token",
        "public kernels in sparse/core/cluster accept a CancelToken (or are allowlisted wrappers)",
    ),
    (
        "metric-name-taxonomy",
        "metric names in source match DESIGN.md §11 and cover the bench gate EXACT_KEYS",
    ),
    (
        "no-unwrap-expect",
        "no .unwrap()/.expect( in non-test library code",
    ),
    (
        "cache-key-purity",
        "no wall-clock or thread counts in engine cache-key/fingerprint code",
    ),
    (
        "store-faultfs",
        "every filesystem call in crates/store goes through the faultfs shim",
    ),
    (
        "sparse-spillfs",
        "every filesystem call in crates/sparse goes through the spill module",
    ),
    (
        "error-code-taxonomy",
        "protocol error codes match the DESIGN.md §14 table, both directions",
    ),
    (
        "atomic-ordering",
        "every Ordering::Relaxed in library code carries a reason-carrying allowlist entry",
    ),
];

/// Public kernels allowed to omit `CancelToken`, with the reason. Every
/// entry must still match a scanned function (staleness check).
const ALLOW_NO_TOKEN: &[(&str, &str)] = &[
    (
        "spgemm",
        "serial convenience wrapper; spgemm_cancellable is the kernel entry",
    ),
    (
        "spgemm_thresholded",
        "serial convenience wrapper over the cancellable kernel",
    ),
    (
        "spgemm_parallel",
        "convenience wrapper; forwards to the cancellable runner with a fresh token",
    ),
    (
        "spgemm_nnz_upper_bound",
        "O(nnz) estimator, not a kernel; used to decide degraded mode",
    ),
    (
        "spgemm_syrk",
        "serial convenience wrapper; spgemm_syrk_observed takes the token",
    ),
    (
        "spgemm_flops",
        "O(nnz) FLOP estimator, not a kernel; used to size degraded mode",
    ),
    (
        "pagerank",
        "convenience wrapper; pagerank_cancellable is the kernel entry",
    ),
    (
        "lanczos_smallest",
        "convenience wrapper; lanczos_smallest_cancellable is the kernel entry",
    ),
    (
        "pagerank_nibble",
        "local-partitioning entry; runs in milliseconds on the push frontier",
    ),
    (
        "pagerank_nibble_directed",
        "local-partitioning entry; runs in milliseconds on the push frontier",
    ),
    (
        "cluster_of",
        "assignment lookup on a finished Clustering, not a kernel",
    ),
    (
        "cluster_digraph",
        "BestWCut baseline entry; dominated by pagerank, which bounds its own iterations",
    ),
    (
        "cluster_embedding",
        "k-means over a k-dimensional spectral embedding; negligible next to Lanczos",
    ),
    (
        "rmcl_iterate",
        "single-iteration step; the cancellable driver loops over it",
    ),
    (
        "symmetrize_key",
        "pure key derivation over the graph fingerprint; no kernel work",
    ),
    (
        "cluster_key",
        "pure key derivation over the symmetrize key; no kernel work",
    ),
];

/// `.unwrap()`/`.expect(` occurrences allowed in library code:
/// `(path suffix, raw-line needle, reason)`. Staleness-checked.
const ALLOW_UNWRAP: &[(&str, &str, &str)] = &[
    (
        "engine/src/exec.rs",
        "lock",
        "mutex poisoning is fatal by design: a poisoned worker already aborted the sweep",
    ),
    (
        "engine/src/exec.rs",
        ".expect(\"engine worker pool\")",
        "crossbeam scope join fails only on a worker panic, already caught per-stage",
    ),
    (
        "engine/src/exec.rs",
        "node has a method",
        "plan construction guarantees the field; a None is a Plan::build bug",
    ),
    (
        "engine/src/exec.rs",
        "node has a clusterer",
        "plan construction guarantees the field; a None is a Plan::build bug",
    ),
    (
        "engine/src/exec.rs",
        "node has a threshold",
        "plan construction guarantees the field; a None is a Plan::build bug",
    ),
    (
        "engine/src/exec.rs",
        ".expect(\"dependency output missing\")",
        "present by construction: the dispatcher releases a node only after its deps settled",
    ),
    (
        "engine/src/cache.rs",
        "lock",
        "mutex/condvar poisoning is fatal by design",
    ),
    (
        "engine/src/spec.rs",
        ".expect(",
        "harness-facing eager API documented to panic; engine path uses the cancellable variants",
    ),
    (
        "cli/src/commands.rs",
        ".unwrap()",
        "event-log mutex; poisoning means the event callback panicked, which aborted the run",
    ),
    (
        "obs/src/registry.rs",
        ".unwrap()",
        "metrics registry mutexes (every unwrap in this file is a lock); poisoning is fatal by design",
    ),
    (
        "obs/src/metric.rs",
        ".expect(\"histogram has buckets\")",
        "the constructor always appends the overflow bucket",
    ),
    (
        "sparse/src/spgemm.rs",
        "indptr.last().unwrap()",
        "indptr starts from a pushed 0 and is never empty",
    ),
    (
        "sparse/src/syrk.rs",
        "indptr.last().unwrap()",
        "indptr starts from a pushed 0 and is never empty",
    ),
    (
        "cluster/src/mcl.rs",
        "indptr.last().unwrap()",
        "indptr starts from a pushed 0 and is never empty",
    ),
    (
        "cluster/src/mcl.rs",
        ".expect(\"same-shape add cannot fail\")",
        "operands constructed with identical shape on the preceding lines",
    ),
    (
        "cluster/src/mcl.rs",
        ".expect(\"mcl worker panicked\")",
        "scoped-thread join fails only on a worker panic; re-raising is intended",
    ),
    (
        "cluster/src/mcl.rs",
        ".expect(\"crossbeam scope failed\")",
        "scope join fails only on a worker panic; re-raising is intended",
    ),
    (
        "cluster/src/bestwcut.rs",
        ".expect(",
        "shape/length preconditions established immediately above; candidate set non-empty by loop bounds",
    ),
    (
        "cluster/src/kmeans.rs",
        ".expect(\"at least one init\")",
        "the init loop runs n_init.max(1) >= 1 times, so best is always Some",
    ),
    (
        "cluster/src/metis_like.rs",
        ".expect(\"k >= 1\")",
        "k is validated positive at entry; max over 0..k is Some",
    ),
    (
        "cluster/src/spectral.rs",
        ".expect(",
        "diagonal-scale/add operands constructed with matching shape in this function",
    ),
    (
        "datasets/src/lib.rs",
        ".expect(\"generator config is valid\")",
        "the config literal is a compile-time constant known to be valid",
    ),
    (
        "eval/src/ncut.rs",
        ".expect(",
        "pagerank with teleport > 0 on a non-empty graph always converges",
    ),
    (
        "graph/src/generators/toy.rs",
        ".expect(",
        "static, compile-time-known edge lists and label counts",
    ),
    (
        "graph/src/ungraph.rs",
        ".expect(\"indices in range by construction\")",
        "CSR invariants were checked when the matrix was built",
    ),
    (
        "sparse/src/ops.rs",
        ".expect(\"row_sums length always matches\")",
        "row_sums is computed from the same matrix two lines above",
    ),
];

/// Raw-filesystem occurrences allowed in `crates/store` library code:
/// `(path suffix, stripped-line needle, reason)`. Staleness-checked.
const ALLOW_RAW_FS: &[(&str, &str, &str)] = &[
    (
        "store/src/faultfs.rs",
        "std::fs",
        "the shim imports the std::fs it mediates",
    ),
    (
        "store/src/faultfs.rs",
        "fs::",
        "the FaultFs shim is the single mediation point; raw calls live only here",
    ),
];

/// Raw-filesystem occurrences allowed in `crates/sparse` library code:
/// `(path suffix, stripped-line needle, reason)`. Staleness-checked. The
/// out-of-core panel path (DESIGN.md §17) funnels all scratch-file I/O
/// through `spill.rs` so its cleanup guarantees (RAII removal on success,
/// error, cancellation and panic) cannot be bypassed by a kernel opening
/// files directly.
const ALLOW_SPARSE_RAW_FS: &[(&str, &str, &str)] = &[
    (
        "sparse/src/spill.rs",
        "std::fs",
        "the spill module imports the std::fs it mediates",
    ),
    (
        "sparse/src/spill.rs",
        "fs::",
        "the spill module is the single scratch-I/O mediation point; raw calls live only here",
    ),
];

/// Tokens banned from cache-key/fingerprint code, with the reason shown in
/// the violation.
const CACHE_KEY_BANNED: &[(&str, &str)] = &[
    (
        "Instant::now",
        "wall clock would make keys differ across runs",
    ),
    (
        "SystemTime",
        "wall clock would make keys differ across runs",
    ),
    (
        "available_parallelism",
        "thread count is machine-dependent and excluded from keys by design",
    ),
    (
        "spgemm_threads",
        "thread count must not reach cache keys (kernels are bit-deterministic across threads)",
    ),
    (
        "n_threads",
        "thread count must not reach cache keys (kernels are bit-deterministic across threads)",
    ),
    (
        "spgemm_accum",
        "accumulator strategy must not reach cache keys (strategies are bit-identical)",
    ),
    (
        "AccumStrategy",
        "accumulator strategy must not reach cache keys (strategies are bit-identical)",
    ),
    (
        "SYMCLUST_ACCUM",
        "the accumulator env knob must not reach cache keys (strategies are bit-identical)",
    ),
    (
        "PanelPlan",
        "the out-of-core panel plan must not reach cache keys (the panel path is bit-identical)",
    ),
    (
        "spgemm_panel",
        "the out-of-core panel plan must not reach cache keys (the panel path is bit-identical)",
    ),
    (
        "SYMCLUST_PANEL_ROWS",
        "the panel-size env knob must not reach cache keys (the panel path is bit-identical)",
    ),
    (
        "SYMCLUST_MEMORY_BUDGET",
        "the spill-budget env knob must not reach cache keys (the panel path is bit-identical)",
    ),
];

/// Name fragments that mark a `pub fn` as a kernel entry point for the
/// cancel-token rule.
const KERNEL_NAME_PATTERNS: &[&str] = &[
    "spgemm",
    "symmetrize",
    "cluster_",
    "pagerank",
    "lanczos",
    "nibble",
    "mcl_",
];

/// Metric-name prefixes governed by the taxonomy rule.
const METRIC_PREFIXES: &[&str] = &[
    "spgemm.", "prune.", "sym.", "mcl.", "engine.", "store.", "serve.",
];

/// The `Ordering::Relaxed` audit: `(path suffix, needle, reason)`.
///
/// Every `Ordering::Relaxed` in non-test library code must be covered by
/// an entry whose needle appears in a small window of code ending at the
/// occurrence (the window absorbs multi-line `compare_exchange` calls
/// whose ordering arguments sit on their own lines). The reason must say
/// why relaxed ordering is sound — which is always some variant of "this
/// atomic publishes no cross-thread data; only its own value matters".
/// Anything that *does* publish data (flags gating reads of other memory,
/// queue handoffs) must use Acquire/Release and never lands here. Entries
/// that match nothing fail the lint, so the audit cannot rot.
const ALLOW_RELAXED: &[(&str, &str, &str)] = &[
    (
        "obs/src/metric.rs",
        "self.value",
        "counter cell: monotonic word read only for reporting, publishes nothing",
    ),
    (
        "obs/src/metric.rs",
        "self.bits",
        "gauge cell: single f64-bits word, last-writer-wins by design, publishes nothing",
    ),
    (
        "obs/src/metric.rs",
        "compare_exchange_weak",
        "max/sum CAS retry loop on one independent cell; failure path only re-reads the same word",
    ),
    (
        "obs/src/metric.rs",
        "buckets",
        "histogram bucket counters: independent monotonic words, snapshot tolerance is documented",
    ),
    (
        "obs/src/metric.rs",
        "self.count",
        "histogram count: monotonic word, snapshots may tear vs sum by design",
    ),
    (
        "obs/src/metric.rs",
        "sum_bits",
        "histogram sum: f64-bits word updated via its own CAS loop, publishes nothing",
    ),
    (
        "engine/src/cache.rs",
        "hits",
        "cache-hit statistic: monotonic counter read only for reporting",
    ),
    (
        "engine/src/cache.rs",
        "misses",
        "cache-miss statistic: monotonic counter read only for reporting",
    ),
    (
        "engine/src/cache.rs",
        "dedups",
        "dedup statistic: monotonic counter read only for reporting",
    ),
    (
        "cli/src/server.rs",
        "queue_depth",
        "advisory depth gauge for health/overload reporting; admission correctness rides on the channel, not this counter",
    ),
    (
        "sparse/src/spill.rs",
        "SPILL_DIR_SEQ",
        "process-unique scratch-dir suffix: atomicity gives uniqueness, ordering is irrelevant",
    ),
    (
        "sparse/src/cancel.rs",
        "polls",
        "deadline-poll throttle counter; cancellation itself is published with Release and observed with Acquire",
    ),
    (
        "store/src/disk.rs",
        "next_seq",
        "LRU recency sequence: atomicity gives unique ticks, ordering is irrelevant",
    ),
    (
        "store/src/disk.rs",
        "degraded",
        "sticky degraded-mode flag and its probe counter carry no payload; observers need only eventual visibility",
    ),
    (
        "store/src/disk.rs",
        "hits",
        "store-hit statistic: monotonic counter read only for stats reporting",
    ),
    (
        "store/src/disk.rs",
        "misses",
        "store-miss statistic: monotonic counter read only for stats reporting",
    ),
    (
        "store/src/disk.rs",
        "puts",
        "store-put statistic: monotonic counter read only for stats reporting",
    ),
    (
        "store/src/disk.rs",
        "evictions",
        "eviction statistic: monotonic counter read only for stats reporting",
    ),
    (
        "store/src/disk.rs",
        "quarantined",
        "quarantine statistic: monotonic counter read only for stats reporting",
    ),
    (
        "store/src/disk.rs",
        "put_errors",
        "put-error statistic: monotonic counter read only for stats reporting",
    ),
    (
        "store/src/disk.rs",
        "stats_persist_errors",
        "stats-persist-error statistic: monotonic counter read only for stats reporting",
    ),
];

/// How many code lines (ending at the occurrence) an [`ALLOW_RELAXED`]
/// needle may appear in. Absorbs multi-line atomic calls whose
/// `Ordering::Relaxed` arguments sit on their own lines (the widest in
/// tree: `compare_exchange_weak` with one argument per line, where the
/// failure ordering is four lines below the receiver).
const RELAXED_WINDOW: usize = 5;

/// Runs every rule over the workspace rooted at `root`. Returns the sorted
/// violation list (empty = clean).
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    let sources = collect_sources(root)?;
    let mut violations = Vec::new();
    violations.extend(rule_kernel_cancel_token(&sources));
    violations.extend(rule_metric_taxonomy(root, &sources)?);
    violations.extend(rule_no_unwrap_expect(&sources));
    violations.extend(rule_cache_key_purity(&sources));
    violations.extend(rule_store_faultfs(&sources));
    violations.extend(rule_sparse_spillfs(&sources));
    violations.extend(rule_error_code_taxonomy(root)?);
    violations.extend(rule_atomic_ordering(&sources));
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(violations)
}

/// Locates the workspace root by walking up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// One scanned source file: raw text, comment/string-stripped text (same
/// byte layout, contents blanked), and the line index where the trailing
/// `#[cfg(test)] mod tests` region starts (`usize::MAX` if none).
struct SourceFile {
    rel_path: String,
    raw_lines: Vec<String>,
    code_lines: Vec<String>,
    test_start: usize,
}

impl SourceFile {
    fn crate_name(&self) -> &str {
        // "crates/<name>/src/..."
        self.rel_path.split('/').nth(1).unwrap_or("")
    }

    fn is_bin(&self) -> bool {
        self.rel_path.contains("/bin/") || self.rel_path.ends_with("/main.rs")
    }

    /// Lines of non-test library code, `(line_no_1based, code, raw)`.
    fn lib_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.code_lines
            .iter()
            .zip(self.raw_lines.iter())
            .enumerate()
            .take(self.test_start)
            .map(|(i, (code, raw))| (i + 1, code.as_str(), raw.as_str()))
    }
}

fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let mut sources = Vec::new();
    for path in files {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let stripped = strip_comments_and_strings(&text);
        let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
        let code_lines: Vec<String> = stripped.lines().map(str::to_string).collect();
        let test_start = code_lines
            .iter()
            .enumerate()
            .position(|(i, l)| {
                // `#[cfg(test)]` marks the trailing tests region. The
                // feature-gated variant `#[cfg(all(test, feature = …))]`
                // counts only when it gates a `mod` — the same attribute
                // on a single item (e.g. a shared test lock) is followed
                // by more library code that must stay scanned.
                l.contains("#[cfg(test)]")
                    || (l.contains("#[cfg(all(test")
                        && code_lines
                            .get(i + 1)
                            .is_some_and(|next| next.trim_start().starts_with("mod ")))
            })
            .unwrap_or(usize::MAX);
        sources.push(SourceFile {
            rel_path,
            raw_lines,
            code_lines,
            test_start,
        });
    }
    sources.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(sources)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Replaces the contents of comments and string/char literals with spaces,
/// preserving newlines, delimiters, and byte-for-byte line layout, so later
/// passes can match tokens without tripping over prose. Backed by the
/// token-stream lexer in [`crate::lexer`].
pub fn strip_comments_and_strings(text: &str) -> String {
    crate::lexer::strip(text)
}

/// Extracts the string literals of `text` (non-raw, single-line), in order,
/// as `(line_no_1based, literal)`. Backed by [`crate::lexer`].
pub fn string_literals(text: &str) -> Vec<(usize, String)> {
    crate::lexer::string_literals(text)
}

// ---------------------------------------------------------------- rule 1

/// A `pub fn` signature joined onto one line.
struct PubFn {
    name: String,
    signature: String,
    line: usize,
}

fn collect_pub_fns(file: &SourceFile) -> Vec<PubFn> {
    let mut fns = Vec::new();
    let lines: Vec<&str> = file
        .code_lines
        .iter()
        .take(file.test_start)
        .map(String::as_str)
        .collect();
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with("pub fn ") {
            continue;
        }
        let name: String = trimmed["pub fn ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Join lines until the signature's opening brace or trailing `;`.
        let mut signature = String::new();
        for joined in lines.iter().skip(i).take(24) {
            signature.push_str(joined.trim());
            signature.push(' ');
            if joined.contains('{') || joined.trim_end().ends_with(';') {
                break;
            }
        }
        fns.push(PubFn {
            name,
            signature,
            line: i + 1,
        });
    }
    fns
}

fn rule_kernel_cancel_token(sources: &[SourceFile]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut allow_hits = vec![false; ALLOW_NO_TOKEN.len()];
    for file in sources {
        if !matches!(file.crate_name(), "sparse" | "core" | "cluster" | "store") {
            continue;
        }
        for f in collect_pub_fns(file) {
            let is_kernel = KERNEL_NAME_PATTERNS.iter().any(|p| f.name.contains(p));
            if !is_kernel {
                continue;
            }
            if f.signature.contains("CancelToken") {
                continue;
            }
            if let Some(pos) = ALLOW_NO_TOKEN.iter().position(|(n, _)| *n == f.name) {
                allow_hits[pos] = true;
                continue;
            }
            violations.push(Violation {
                rule: "kernel-cancel-token",
                file: file.rel_path.clone(),
                line: f.line,
                message: format!(
                    "public kernel `{}` does not accept a CancelToken; add one \
                     (or allowlist it in crates/check with the reason a \
                     cancellable sibling exists)",
                    f.name
                ),
            });
        }
    }
    for (hit, (name, _)) in allow_hits.iter().zip(ALLOW_NO_TOKEN) {
        if !hit {
            violations.push(Violation {
                rule: "kernel-cancel-token",
                file: "crates/check/src/lint.rs".into(),
                line: 0,
                message: format!("stale allowlist entry `{name}` matches no public kernel"),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------- rule 2

/// Collects metric names registered by source: `pub const` literals inside
/// `mod metric_names` blocks, plus inline literals passed to registry
/// calls.
fn registered_metric_names(sources: &[SourceFile]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in sources {
        let mut in_metric_mod = false;
        let mut depth_at_entry = 0isize;
        let mut depth = 0isize;
        for (lineno, code, raw) in file.lib_lines() {
            if code.contains("mod metric_names") {
                in_metric_mod = true;
                depth_at_entry = depth;
            }
            depth += code.matches('{').count() as isize;
            depth -= code.matches('}').count() as isize;
            let take_literals = (in_metric_mod && code.contains("pub const"))
                || [".counter(\"", ".gauge(\"", ".histogram(\"", ".span(\""]
                    .iter()
                    .any(|c| raw.contains(*c));
            if take_literals {
                for (_, lit) in string_literals(raw) {
                    if looks_like_metric_name(&lit) {
                        names.insert(lit);
                    }
                }
            }
            let _ = lineno;
            if in_metric_mod && depth <= depth_at_entry && code.contains('}') {
                in_metric_mod = false;
            }
        }
    }
    names
}

fn looks_like_metric_name(s: &str) -> bool {
    METRIC_PREFIXES.iter().any(|p| s.starts_with(p))
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
}

/// Metric names documented in DESIGN.md §11: backtick-quoted tokens of the
/// right shape. Slash-separated alternations (`` `a` / `b` ``) and comma
/// lists all yield their own backtick groups, so plain extraction works.
fn design_metric_names(root: &Path) -> Result<BTreeSet<String>, String> {
    let design = root.join("DESIGN.md");
    let text =
        fs::read_to_string(&design).map_err(|e| format!("reading {}: {e}", design.display()))?;
    let mut names = BTreeSet::new();
    for part in text.split('`').skip(1).step_by(2) {
        if looks_like_metric_name(part) {
            names.insert(part.to_string());
        }
    }
    Ok(names)
}

/// `EXACT_KEYS` literals from the bench gate source, `counter.` prefix
/// stripped.
fn bench_gate_keys(root: &Path) -> Result<Vec<(usize, String)>, String> {
    let gate = root.join("crates/bench/src/gate.rs");
    let text = fs::read_to_string(&gate).map_err(|e| format!("reading {}: {e}", gate.display()))?;
    let mut keys = Vec::new();
    let mut in_exact = false;
    for (idx, line) in text.lines().enumerate() {
        if line.contains("EXACT_KEYS") {
            in_exact = true;
        }
        if in_exact {
            for (_, lit) in string_literals(line) {
                if let Some(stripped) = lit.strip_prefix("counter.") {
                    keys.push((idx + 1, stripped.to_string()));
                }
            }
            if line.contains("];") {
                break;
            }
        }
    }
    Ok(keys)
}

fn rule_metric_taxonomy(root: &Path, sources: &[SourceFile]) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let design = design_metric_names(root)?;
    if design.is_empty() {
        return Err("DESIGN.md §11 yielded no metric names — extraction broken?".into());
    }
    let registered = registered_metric_names(sources);

    // Every name registered in source must be documented.
    for file in sources {
        let mut in_metric_mod = false;
        for (lineno, code, raw) in file.lib_lines() {
            if code.contains("mod metric_names") {
                in_metric_mod = true;
            }
            let relevant = (in_metric_mod && code.contains("pub const"))
                || [".counter(\"", ".gauge(\"", ".histogram(\"", ".span(\""]
                    .iter()
                    .any(|c| raw.contains(*c));
            if !relevant {
                continue;
            }
            for (_, lit) in string_literals(raw) {
                if looks_like_metric_name(&lit) && !design.contains(&lit) {
                    violations.push(Violation {
                        rule: "metric-name-taxonomy",
                        file: file.rel_path.clone(),
                        line: lineno,
                        message: format!(
                            "metric name \"{lit}\" is not in the DESIGN.md §11 taxonomy \
                             (typo, or document it first)"
                        ),
                    });
                }
            }
        }
    }

    // Every bench-gate key must be documented AND registered somewhere.
    for (line, key) in bench_gate_keys(root)? {
        if !design.contains(&key) {
            violations.push(Violation {
                rule: "metric-name-taxonomy",
                file: "crates/bench/src/gate.rs".into(),
                line,
                message: format!("EXACT_KEYS entry \"{key}\" is not documented in DESIGN.md §11"),
            });
        }
        if !registered.contains(&key) {
            violations.push(Violation {
                rule: "metric-name-taxonomy",
                file: "crates/bench/src/gate.rs".into(),
                line,
                message: format!(
                    "EXACT_KEYS entry \"{key}\" matches no metric name registered in source \
                     — orphaned baseline key"
                ),
            });
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------- rule 3

fn rule_no_unwrap_expect(sources: &[SourceFile]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut allow_hits = vec![false; ALLOW_UNWRAP.len()];
    for file in sources {
        if file.is_bin() || file.crate_name() == "check" {
            // Binaries report to humans and may exit loudly; the check
            // crate lints itself structurally but is allowed assertions.
            continue;
        }
        for (lineno, code, raw) in file.lib_lines() {
            let hit = code.contains(".unwrap()") || code.contains(".expect(");
            if !hit {
                continue;
            }
            if code.trim_start().starts_with("#[") {
                continue; // attribute, e.g. #[allow(...)] listing names
            }
            if let Some(pos) = ALLOW_UNWRAP
                .iter()
                .position(|(path, needle, _)| file.rel_path.ends_with(path) && raw.contains(needle))
            {
                allow_hits[pos] = true;
                continue;
            }
            violations.push(Violation {
                rule: "no-unwrap-expect",
                file: file.rel_path.clone(),
                line: lineno,
                message: "library code must not unwrap()/expect(); return an error \
                          (or allowlist with a reason in crates/check)"
                    .into(),
            });
        }
    }
    for (hit, (path, needle, _)) in allow_hits.iter().zip(ALLOW_UNWRAP) {
        if !hit {
            violations.push(Violation {
                rule: "no-unwrap-expect",
                file: "crates/check/src/lint.rs".into(),
                line: 0,
                message: format!("stale allowlist entry ({path}, {needle:?}) matches nothing"),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------- rule 4

/// Whether this (file, fn) pair is cache-key code: the two key modules in
/// full, plus any key-derivation function body anywhere in the engine or
/// the store (which derives on-disk content addresses from the same keys).
fn rule_cache_key_purity(sources: &[SourceFile]) -> Vec<Violation> {
    const KEY_FNS: &[&str] = &[
        "cache_params",
        "cache_params_with_budget",
        "chain_key",
        "stage_key",
        "graph_fingerprint",
        "matrix_fingerprint",
        "symmetrize_key",
        "cluster_key",
    ];
    let mut violations = Vec::new();
    for file in sources {
        // The store derives the on-disk content addresses from the same
        // key functions, so its key-derivation code is held to the same
        // purity contract as the engine's.
        if !matches!(file.crate_name(), "engine" | "store") {
            continue;
        }
        let whole_file = file.rel_path.ends_with("engine/src/fingerprint.rs")
            || file.rel_path.ends_with("engine/src/cache.rs");
        // Mark lines inside key-derivation fn bodies via brace tracking.
        let lines: Vec<&str> = file
            .code_lines
            .iter()
            .take(file.test_start)
            .map(String::as_str)
            .collect();
        let mut in_key_fn = vec![false; lines.len()];
        let mut i = 0;
        while i < lines.len() {
            let t = lines[i].trim_start();
            let is_key_fn = ["pub fn ", "fn ", "pub(crate) fn "].iter().any(|prefix| {
                t.strip_prefix(prefix).is_some_and(|rest| {
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    KEY_FNS.contains(&name.as_str())
                })
            });
            if !is_key_fn {
                i += 1;
                continue;
            }
            let mut depth = 0isize;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                in_key_fn[j] = true;
                depth += lines[j].matches('{').count() as isize;
                depth -= lines[j].matches('}').count() as isize;
                if lines[j].contains('{') {
                    opened = true;
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        }
        for (idx, line) in lines.iter().enumerate() {
            if !(whole_file || in_key_fn[idx]) {
                continue;
            }
            for (token, why) in CACHE_KEY_BANNED {
                if line.contains(token) {
                    violations.push(Violation {
                        rule: "cache-key-purity",
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!("`{token}` in cache-key/fingerprint code: {why}"),
                    });
                }
            }
        }
    }
    violations
}

// ---------------------------------------------------------------- rule 5

/// Tokens that mark a direct filesystem call. `fs::` is matched only at
/// an identifier boundary so `faultfs::read(...)` call sites don't trip.
const RAW_FS_TOKENS: &[&str] = &["std::fs", "fs::", "File::", "OpenOptions"];

/// Whether `code` contains `token` preceded by a non-identifier character
/// (or the start of the line).
fn has_raw_fs_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + token.len();
    }
    false
}

fn rule_store_faultfs(sources: &[SourceFile]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut allow_hits = vec![false; ALLOW_RAW_FS.len()];
    for file in sources {
        if file.crate_name() != "store" || file.is_bin() {
            continue;
        }
        for (lineno, code, _raw) in file.lib_lines() {
            let Some(token) = RAW_FS_TOKENS.iter().find(|t| has_raw_fs_token(code, t)) else {
                continue;
            };
            if let Some(pos) = ALLOW_RAW_FS.iter().position(|(path, needle, _)| {
                file.rel_path.ends_with(path) && code.contains(needle)
            }) {
                allow_hits[pos] = true;
                continue;
            }
            violations.push(Violation {
                rule: "store-faultfs",
                file: file.rel_path.clone(),
                line: lineno,
                message: format!(
                    "`{token}` bypasses the faultfs shim; route this call through \
                     crate::faultfs so fault schedules cover it (or allowlist it \
                     in crates/check with the reason)"
                ),
            });
        }
    }
    for (hit, (path, needle, _)) in allow_hits.iter().zip(ALLOW_RAW_FS) {
        if !hit {
            violations.push(Violation {
                rule: "store-faultfs",
                file: "crates/check/src/lint.rs".into(),
                line: 0,
                message: format!("stale allowlist entry ({path}, {needle:?}) matches nothing"),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------- rule 6

fn rule_sparse_spillfs(sources: &[SourceFile]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut allow_hits = vec![false; ALLOW_SPARSE_RAW_FS.len()];
    for file in sources {
        if file.crate_name() != "sparse" || file.is_bin() {
            continue;
        }
        for (lineno, code, _raw) in file.lib_lines() {
            let Some(token) = RAW_FS_TOKENS.iter().find(|t| has_raw_fs_token(code, t)) else {
                continue;
            };
            if let Some(pos) = ALLOW_SPARSE_RAW_FS.iter().position(|(path, needle, _)| {
                file.rel_path.ends_with(path) && code.contains(needle)
            }) {
                allow_hits[pos] = true;
                continue;
            }
            violations.push(Violation {
                rule: "sparse-spillfs",
                file: file.rel_path.clone(),
                line: lineno,
                message: format!(
                    "`{token}` bypasses the spill module; route scratch I/O through \
                     crate::spill so the RAII cleanup guarantees cover it (or \
                     allowlist it in crates/check with the reason)"
                ),
            });
        }
    }
    for (hit, (path, needle, _)) in allow_hits.iter().zip(ALLOW_SPARSE_RAW_FS) {
        if !hit {
            violations.push(Violation {
                rule: "sparse-spillfs",
                file: "crates/check/src/lint.rs".into(),
                line: 0,
                message: format!("stale allowlist entry ({path}, {needle:?}) matches nothing"),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------- rule 7

/// `ErrorCode::X => "literal"` arms from the non-test portion of
/// `crates/cli/src/protocol.rs`, as `(line_no_1based, code)`.
fn protocol_error_codes(root: &Path) -> Result<Vec<(usize, String)>, String> {
    let path = root.join("crates/cli/src/protocol.rs");
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut codes = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        if !(line.contains("ErrorCode::") && line.contains("=>")) {
            continue;
        }
        for (_, lit) in string_literals(line) {
            if looks_like_error_code(&lit) {
                codes.push((idx + 1, lit));
            }
        }
    }
    Ok(codes)
}

fn looks_like_error_code(s: &str) -> bool {
    !s.is_empty()
        && s.as_bytes()[0].is_ascii_lowercase()
        && s.bytes().all(|b| b.is_ascii_lowercase() || b == b'-')
}

/// Error codes documented in the DESIGN.md §14 `### Error codes` table, as
/// `(line_no_1based, code)` from each row's first backticked token.
fn design_error_codes(root: &Path) -> Result<Vec<(usize, String)>, String> {
    let design = root.join("DESIGN.md");
    let text =
        fs::read_to_string(&design).map_err(|e| format!("reading {}: {e}", design.display()))?;
    let mut codes = Vec::new();
    let mut in_table = false;
    for (idx, line) in text.lines().enumerate() {
        if line.trim() == "### Error codes" {
            in_table = true;
            continue;
        }
        if !in_table {
            continue;
        }
        if line.starts_with('#') {
            break;
        }
        if !line.trim_start().starts_with('|') {
            continue;
        }
        if let Some(tok) = line.split('`').nth(1) {
            if looks_like_error_code(tok) {
                codes.push((idx + 1, tok.to_string()));
            }
        }
    }
    if !in_table {
        return Err("DESIGN.md has no `### Error codes` heading (§14) — extraction broken?".into());
    }
    Ok(codes)
}

/// The closed protocol error-code set must match the DESIGN.md §14 table in
/// both directions, exactly like the metric taxonomy: a code added to
/// `protocol.rs` without documentation fails, and a documented code with no
/// implementation fails (rot in either direction is a wire-compat hazard —
/// clients dispatch on these strings).
fn rule_error_code_taxonomy(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let protocol = protocol_error_codes(root)?;
    let design = design_error_codes(root)?;
    if protocol.is_empty() {
        return Err("protocol.rs yielded no error codes — extraction broken?".into());
    }
    if design.is_empty() {
        return Err("DESIGN.md §14 error-code table is empty — extraction broken?".into());
    }
    let design_set: BTreeSet<&str> = design.iter().map(|(_, c)| c.as_str()).collect();
    let protocol_set: BTreeSet<&str> = protocol.iter().map(|(_, c)| c.as_str()).collect();
    for (line, code) in &protocol {
        if !design_set.contains(code.as_str()) {
            violations.push(Violation {
                rule: "error-code-taxonomy",
                file: "crates/cli/src/protocol.rs".into(),
                line: *line,
                message: format!(
                    "error code \"{code}\" is not in the DESIGN.md §14 error-code table \
                     (typo, or document it first)"
                ),
            });
        }
    }
    for (line, code) in &design {
        if !protocol_set.contains(code.as_str()) {
            violations.push(Violation {
                rule: "error-code-taxonomy",
                file: "DESIGN.md".into(),
                line: *line,
                message: format!(
                    "documented error code \"{code}\" has no ErrorCode arm in protocol.rs \
                     — phantom taxonomy entry"
                ),
            });
        }
    }
    Ok(violations)
}

// ---------------------------------------------------------------- rule 8

/// Every `Ordering::Relaxed` in non-test library code must be covered by a
/// reason-carrying [`ALLOW_RELAXED`] entry (DESIGN.md §18). Relaxed is the
/// one ordering that silently breaks cross-thread handoff: a flag stored
/// Relaxed can be observed before the data it guards. The audit forces each
/// site to state why no data rides on the atomic; stale entries fail.
fn rule_atomic_ordering(sources: &[SourceFile]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut allow_hits = vec![false; ALLOW_RELAXED.len()];
    for file in sources {
        for (lineno, code, _raw) in file.lib_lines() {
            if !code.contains("Ordering::Relaxed") {
                continue;
            }
            // Window of code lines ending at the occurrence, so the needle
            // can name the atomic even when the ordering argument of a
            // multi-line call sits on its own line.
            let lo = lineno.saturating_sub(RELAXED_WINDOW);
            let window = file.code_lines[lo..lineno].join("\n");
            let mut covered = false;
            for (pos, (path, needle, _)) in ALLOW_RELAXED.iter().enumerate() {
                if file.rel_path.ends_with(path) && window.contains(needle) {
                    allow_hits[pos] = true;
                    covered = true;
                }
            }
            if !covered {
                violations.push(Violation {
                    rule: "atomic-ordering",
                    file: file.rel_path.clone(),
                    line: lineno,
                    message: "`Ordering::Relaxed` without an ordering-audit entry; if no \
                              cross-thread data rides on this atomic, add a (path, needle, \
                              reason) entry to ALLOW_RELAXED in crates/check/src/lint.rs — \
                              otherwise use Acquire/Release"
                        .into(),
                });
            }
        }
    }
    for (hit, (path, needle, _)) in allow_hits.iter().zip(ALLOW_RELAXED) {
        if !hit {
            violations.push(Violation {
                rule: "atomic-ordering",
                file: "crates/check/src/lint.rs".into(),
                line: 0,
                message: format!("stale ALLOW_RELAXED entry ({path}, {needle:?}) matches nothing"),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_blanks_comments_and_strings_but_keeps_layout() {
        let src = "let x = \"unwrap() inside\"; // .unwrap() comment\nlet y = 1; /* multi\nline */ z();\n";
        let out = strip_comments_and_strings(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("unwrap"));
        assert!(out.contains("let x = \""));
        assert!(out.contains("z();"));
    }

    #[test]
    fn string_literal_extraction_finds_metric_names() {
        let lits = string_literals("counter(\"spgemm.calls\") + \"x\"");
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[0].1, "spgemm.calls");
        assert!(looks_like_metric_name("spgemm.calls"));
        assert!(!looks_like_metric_name("sym.{}"));
        assert!(!looks_like_metric_name("stage.cluster"));
        assert!(!looks_like_metric_name("sym.Txt"));
    }

    #[test]
    fn this_repository_is_lint_clean() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let violations = run(&root).expect("lint run succeeds");
        assert!(
            violations.is_empty(),
            "lint violations:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn design_taxonomy_and_gate_keys_are_consistent() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let design = design_metric_names(&root).unwrap();
        assert!(design.contains("spgemm.flops"), "{design:?}");
        assert!(design.contains("spgemm.sched_steals"));
        let keys = bench_gate_keys(&root).unwrap();
        assert!(keys.iter().any(|(_, k)| k == "spgemm.syrk_calls"));
        // The scheduling-dependent steal counter must stay un-gated.
        assert!(!keys.iter().any(|(_, k)| k == "spgemm.sched_steals"));
    }

    #[test]
    fn pub_fn_collection_joins_multiline_signatures() {
        let file = SourceFile {
            rel_path: "crates/sparse/src/x.rs".into(),
            raw_lines: vec![
                "pub fn spgemm_fancy(".into(),
                "    a: &CsrMatrix,".into(),
                "    token: &CancelToken,".into(),
                ") -> Result<CsrMatrix> {".into(),
            ],
            code_lines: vec![
                "pub fn spgemm_fancy(".into(),
                "    a: &CsrMatrix,".into(),
                "    token: &CancelToken,".into(),
                ") -> Result<CsrMatrix> {".into(),
            ],
            test_start: usize::MAX,
        };
        let fns = collect_pub_fns(&file);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "spgemm_fancy");
        assert!(fns[0].signature.contains("CancelToken"));
    }

    #[test]
    fn raw_fs_boundary_matching_spares_the_shim_call_sites() {
        assert!(has_raw_fs_token("let d = fs::read_dir(p)?;", "fs::"));
        assert!(has_raw_fs_token("std::fs::rename(a, b)", "fs::"));
        assert!(!has_raw_fs_token("faultfs::read_dir(p)?", "fs::"));
        assert!(!has_raw_fs_token("crate::faultfs::write(p, b)", "fs::"));
        assert!(has_raw_fs_token("use std::fs;", "std::fs"));
    }

    #[test]
    fn raw_fs_in_store_library_code_is_flagged() {
        let mk = |rel_path: &str, line: &str| SourceFile {
            rel_path: rel_path.into(),
            raw_lines: vec![line.into()],
            code_lines: vec![line.into()],
            test_start: usize::MAX,
        };
        let rogue = mk(
            "crates/store/src/disk.rs",
            "    let data = std::fs::read(&path)?;",
        );
        let violations = rule_store_faultfs(std::slice::from_ref(&rogue));
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "store-faultfs" && v.message.contains("faultfs")),
            "{violations:?}"
        );
        // The same call through the shim is clean (only staleness entries
        // fire, pointing at the check crate, not the scanned file).
        let routed = mk(
            "crates/store/src/disk.rs",
            "    let data = faultfs::read(&path)?;",
        );
        let violations = rule_store_faultfs(std::slice::from_ref(&routed));
        assert!(violations.iter().all(|v| v.line == 0), "{violations:?}");
        // Outside the store crate the rule does not apply at all.
        let elsewhere = mk(
            "crates/cli/src/commands.rs",
            "    std::fs::write(&path, body)?;",
        );
        let violations = rule_store_faultfs(std::slice::from_ref(&elsewhere));
        assert!(violations.iter().all(|v| v.line == 0), "{violations:?}");
    }

    #[test]
    fn raw_fs_in_sparse_library_code_is_flagged() {
        let mk = |rel_path: &str, line: &str| SourceFile {
            rel_path: rel_path.into(),
            raw_lines: vec![line.into()],
            code_lines: vec![line.into()],
            test_start: usize::MAX,
        };
        let rogue = mk(
            "crates/sparse/src/panel.rs",
            "    let data = std::fs::read(&path)?;",
        );
        let violations = rule_sparse_spillfs(std::slice::from_ref(&rogue));
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "sparse-spillfs" && v.message.contains("spill")),
            "{violations:?}"
        );
        // The mediation point itself is allowlisted (only staleness
        // entries fire, pointing at the check crate).
        let shim = mk("crates/sparse/src/spill.rs", "use std::fs;");
        let violations = rule_sparse_spillfs(std::slice::from_ref(&shim));
        assert!(violations.iter().all(|v| v.line == 0), "{violations:?}");
        // Outside the sparse crate the rule does not apply at all.
        let elsewhere = mk(
            "crates/datasets/src/stream.rs",
            "    let file = fs::File::create(path)?;",
        );
        let violations = rule_sparse_spillfs(std::slice::from_ref(&elsewhere));
        assert!(violations.iter().all(|v| v.line == 0), "{violations:?}");
    }

    #[test]
    fn missing_token_on_kernel_is_flagged() {
        let file = SourceFile {
            rel_path: "crates/sparse/src/x.rs".into(),
            raw_lines: vec!["pub fn spgemm_rogue(a: &CsrMatrix) -> CsrMatrix {".into()],
            code_lines: vec!["pub fn spgemm_rogue(a: &CsrMatrix) -> CsrMatrix {".into()],
            test_start: usize::MAX,
        };
        let violations = rule_kernel_cancel_token(std::slice::from_ref(&file));
        assert!(
            violations
                .iter()
                .any(|v| v.message.contains("spgemm_rogue")),
            "{violations:?}"
        );
    }
}

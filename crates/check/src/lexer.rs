//! A small Rust token-stream lexer for the lint driver.
//!
//! The lint rules scan source for tokens like `Ordering::Relaxed` or
//! `.unwrap()` and must not trip over prose: the same spelling inside a
//! comment, a string literal, or a doc example is not a violation. The
//! original implementation was a single byte-scan inside `lint.rs`; this
//! module replaces it with an explicit token stream so every consumer
//! (comment stripping, string-literal extraction, the ordering audit)
//! shares one lexing truth.
//!
//! This is a *classifier*, not a parser: it splits source into runs of
//! [`TokenKind::Code`] and the non-code islands (line comments, nested
//! block comments, string/raw-string/char literals, lifetimes). Within
//! `Code` the text is left untokenized — the rules operate on lines.
//!
//! Guarantees the property tests in `crates/check/tests` pin down:
//!
//! * concatenating every token's text reproduces the input byte-for-byte;
//! * token boundaries never split a `\n`, so line numbers derived from
//!   the stream agree with the raw source;
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth), escaped chars
//!   (`'\u{1F600}'`), lifetimes (`'a`, `'_`, `'static`) and nested block
//!   comments all classify correctly.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Ordinary source text (identifiers, punctuation, whitespace).
    Code,
    /// `// …` up to (not including) the newline. Covers `///` and `//!`.
    LineComment,
    /// `/* … */`, nested; unterminated comments run to end of input.
    BlockComment,
    /// `"…"` or `b"…"`, escapes handled; unterminated runs to end.
    Str,
    /// `r"…"`, `r#"…"#`, `br"…"` at any hash depth.
    RawStr,
    /// `'x'`, `b'x'`, `'\n'`, `'\u{…}'`.
    Char,
    /// `'ident` — a lifetime (or loop label), kept distinct from chars.
    Lifetime,
}

/// One token: its kind, exact source text, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// The token's text, a slice of the input.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// End of a `//` comment starting at `i`: up to, not including, the
/// newline (which stays in the surrounding code stream).
fn line_comment_end(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < bytes.len() && bytes[j] != b'\n' {
        j += 1;
    }
    j
}

/// End of a (nested) `/* … */` comment starting at `i`.
fn block_comment_end(bytes: &[u8], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < bytes.len() {
        if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
            depth += 1;
            j += 2;
        } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
            depth -= 1;
            j += 2;
            if depth == 0 {
                return j;
            }
        } else {
            j += 1;
        }
    }
    bytes.len()
}

/// End of a `"…"` literal whose opening quote is at `open`: one past the
/// closing quote, skipping escapes.
fn str_end(bytes: &[u8], open: usize) -> usize {
    let mut j = open + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// For an `r` / `br` at `i` (not preceded by an identifier byte): the end
/// of the raw string, if this really is one.
fn raw_str_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(i) == Some(&b'b') {
        if bytes.get(j) != Some(&b'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'"' && bytes[j + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(bytes.len())
}

/// For a `'` at `i`: a char literal, a lifetime, or neither (a stray
/// quote stays in the code stream).
fn char_or_lifetime(src: &str, i: usize) -> Option<(TokenKind, usize)> {
    let bytes = src.as_bytes();
    let rest = &src[i + 1..];
    let mut chars = rest.chars();
    let first = chars.next()?;
    if first == '\\' {
        // Escaped char literal `'\X…'`: the backslash and its escaped
        // character are consumed together (so `'\''` and `'\\'` don't end
        // early), then everything up to the closing quote (covers
        // `'\u{…}'`). A valid literal has no further backslashes.
        let mut j = i + 3;
        while j < bytes.len() {
            if bytes[j] == b'\'' {
                return Some((TokenKind::Char, j + 1));
            }
            j += 1;
        }
        return Some((TokenKind::Char, bytes.len()));
    }
    if first == '\'' {
        // `''` is not a literal; leave the quote as code.
        return None;
    }
    if chars.next() == Some('\'') {
        // 'x' with any single (possibly multi-byte) character.
        return Some((TokenKind::Char, i + 1 + first.len_utf8() + 1));
    }
    if first == '_' || first.is_alphabetic() {
        // Lifetime or loop label: quote + identifier.
        let mut end = i + 1;
        for c in rest.chars() {
            if c == '_' || c.is_alphanumeric() {
                end += c.len_utf8();
            } else {
                break;
            }
        }
        return Some((TokenKind::Lifetime, end));
    }
    None
}

/// Tokenizes `src`. The concatenation of the returned tokens' `text` is
/// exactly `src`.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut code_start = 0usize;
    let mut code_line = 1usize;
    while i < bytes.len() {
        let island: Option<(TokenKind, usize)> = match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                Some((TokenKind::LineComment, line_comment_end(bytes, i)))
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                Some((TokenKind::BlockComment, block_comment_end(bytes, i)))
            }
            b'"' => Some((TokenKind::Str, str_end(bytes, i))),
            b'b' if !(i > 0 && is_ident(bytes[i - 1])) && bytes.get(i + 1) == Some(&b'"') => {
                Some((TokenKind::Str, str_end(bytes, i + 1)))
            }
            b'b' if !(i > 0 && is_ident(bytes[i - 1])) && bytes.get(i + 1) == Some(&b'\'') => {
                char_or_lifetime(src, i + 1).filter(|(kind, _)| *kind == TokenKind::Char)
            }
            b'r' | b'b' if !(i > 0 && is_ident(bytes[i - 1])) => {
                raw_str_end(bytes, i).map(|end| (TokenKind::RawStr, end))
            }
            b'\'' => char_or_lifetime(src, i),
            _ => None,
        };
        match island {
            Some((kind, end)) => {
                if i > code_start {
                    tokens.push(Token {
                        kind: TokenKind::Code,
                        text: &src[code_start..i],
                        line: code_line,
                    });
                }
                tokens.push(Token {
                    kind,
                    text: &src[i..end],
                    line,
                });
                line += bytes[i..end].iter().filter(|&&b| b == b'\n').count();
                i = end;
                code_start = i;
                code_line = line;
            }
            None => {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
        }
    }
    if bytes.len() > code_start {
        tokens.push(Token {
            kind: TokenKind::Code,
            text: &src[code_start..],
            line: code_line,
        });
    }
    tokens
}

/// Replaces the contents of comments and string/char literals with
/// spaces, preserving newlines, delimiters, and byte-for-byte line
/// layout, so line-based rule scans can match tokens without tripping
/// over prose. The lexer-backed successor of the old byte-scan.
pub fn strip(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    for tok in lex(src) {
        match tok.kind {
            TokenKind::Code | TokenKind::Lifetime => out.push_str(tok.text),
            TokenKind::LineComment | TokenKind::BlockComment => {
                blank_interior(&mut out, tok.text, 0, 0);
            }
            TokenKind::Str | TokenKind::RawStr | TokenKind::Char => {
                // Keep the opening delimiter (incl. any `b`/`r#` prefix)
                // and the closing delimiter; blank what's between.
                let b = tok.text.as_bytes();
                let open = tok.text.find(['"', '\'']).map_or(tok.text.len(), |p| p + 1);
                let close_len = match tok.kind {
                    TokenKind::RawStr => {
                        let hashes = b.iter().rev().take_while(|&&c| c == b'#').count();
                        let quoted = b.len() > open + hashes && b[b.len() - 1 - hashes] == b'"';
                        if quoted {
                            hashes + 1
                        } else {
                            0 // unterminated: no closer to keep
                        }
                    }
                    TokenKind::Str => usize::from(b.len() > open && b[b.len() - 1] == b'"'),
                    _ => usize::from(b.len() > open && b[b.len() - 1] == b'\''),
                };
                blank_interior(&mut out, tok.text, open, close_len);
            }
        }
    }
    out
}

/// Pushes `text` with its first `head` and last `tail` bytes verbatim and
/// everything between replaced by spaces (newlines preserved).
fn blank_interior(out: &mut String, text: &str, head: usize, tail: usize) {
    out.push_str(&text[..head]);
    for c in text[head..text.len() - tail].chars() {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
    out.push_str(&text[text.len() - tail..]);
}

/// Extracts the string literals of `src` (non-raw, single-line), in
/// order, as `(line_no_1based, literal)`. Escapes are kept as their
/// escaped character without the backslash (good enough for taxonomy
/// names, which never contain escapes).
pub fn string_literals(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for tok in lex(src) {
        if tok.kind != TokenKind::Str || tok.text.contains('\n') {
            continue;
        }
        let Some(open) = tok.text.find('"') else {
            continue;
        };
        let body = &tok.text[open + 1..];
        let body = body.strip_suffix('"').unwrap_or(body);
        let mut lit = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                if let Some(next) = chars.next() {
                    lit.push(next);
                }
            } else {
                lit.push(c);
            }
        }
        out.push((tok.line, lit));
    }
    out
}

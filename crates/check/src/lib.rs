#![warn(missing_docs)]

//! Correctness tooling for the `symclust` workspace (DESIGN.md §13, §18).
//!
//! Four pillars live here; a fifth (CSR structural validators) lives in
//! `symclust-sparse` next to the data structure it validates:
//!
//! * [`lint`] — a dependency-free lint driver enforcing repo-specific
//!   contracts that `clippy` cannot know: cancellation plumbing on public
//!   kernels, the DESIGN.md §11 metric-name taxonomy (cross-checked
//!   against the bench gate's `EXACT_KEYS`), no panicking `unwrap`/
//!   `expect` in library code, purity of the engine's cache-key /
//!   fingerprint code, the DESIGN.md §14 error-code taxonomy, and a
//!   reason-carrying audit of every `Ordering::Relaxed` atomic site.
//! * [`lexer`] — the token-stream lexer behind the lint rules: a small
//!   Rust tokenizer handling line/nested-block comments, strings, raw
//!   strings, char literals, and lifetimes, replacing the old byte-scan.
//! * [`schedmodel`] — an exhaustive interleaving model checker for the
//!   work-stealing `(lo, hi)` CAS protocol in `symclust-sparse::sched`,
//!   proving exactly-once block execution and clean termination for every
//!   schedule of up to 3 workers × 6 blocks.
//! * [`servemodel`] — the same proof strength for the serve daemon's
//!   request lifecycle: admission vs shutdown races, worker drain,
//!   drain-deadline watchdog, out-of-band health, and client-disconnect
//!   cancellation.
//!
//! All run in CI via `scripts/ci.sh check` and are exposed through the
//! `symclust-check` binary (`lint`, `sched-model`, `serve-model`,
//! `list-rules`).

pub mod lexer;
pub mod lint;
pub mod schedmodel;
pub mod servemodel;

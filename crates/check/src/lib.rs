#![warn(missing_docs)]

//! Correctness tooling for the `symclust` workspace (DESIGN.md §13).
//!
//! Two pillars live here; the third (CSR structural validators) lives in
//! `symclust-sparse` next to the data structure it validates:
//!
//! * [`lint`] — a dependency-free lint driver enforcing repo-specific
//!   contracts that `clippy` cannot know: cancellation plumbing on public
//!   kernels, the DESIGN.md §11 metric-name taxonomy (cross-checked
//!   against the bench gate's `EXACT_KEYS`), no panicking `unwrap`/
//!   `expect` in library code, and purity of the engine's cache-key /
//!   fingerprint code.
//! * [`schedmodel`] — an exhaustive interleaving model checker for the
//!   work-stealing `(lo, hi)` CAS protocol in `symclust-sparse::sched`,
//!   proving exactly-once block execution and clean termination for every
//!   schedule of up to 3 workers × 6 blocks.
//!
//! Both run in CI via `scripts/ci.sh check` and are exposed through the
//! `symclust-check` binary (`lint`, `sched-model`, `list-rules`).

pub mod lint;
pub mod schedmodel;

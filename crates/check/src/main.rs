//! `symclust-check` — repo-invariant lint driver and the scheduler /
//! serve-lifecycle model checkers. See DESIGN.md §13 and §18.

use std::path::PathBuf;
use std::process::ExitCode;

use symclust_check::{lint, schedmodel, servemodel};

const USAGE: &str = "\
symclust-check — correctness tooling for the symclust workspace

USAGE:
    symclust-check lint [--root PATH]
        Run the repo-invariant lint rules over crates/*/src. Exits
        non-zero and lists violations if any rule fires.

    symclust-check sched-model [--workers N] [--blocks B] [--faulty]
        Exhaustively model-check the work-stealing scheduler protocol for
        every configuration up to N workers x B blocks (default 3 x 6).
        --faulty checks the deliberately broken non-atomic steal variant
        instead, to demonstrate the checker catches races (expected to
        report a violation and exit non-zero).

    symclust-check serve-model [--faulty relaxed-shutdown|overloaded-requeue]
        Exhaustively model-check the serve daemon's request lifecycle
        (admission vs shutdown races, worker drain, drain-deadline
        watchdog, health, client-disconnect cancellation) across the
        built-in scenarios. --faulty checks a deliberately broken
        protocol variant instead and prints the concrete witness trace
        (a lost request or a double completion; exits non-zero).

    symclust-check list-rules
        Print the lint rules and one-line summaries.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("sched-model") => cmd_sched_model(&args[1..]),
        Some("serve-model") => cmd_serve_model(&args[1..]),
        Some("list-rules") => {
            for (rule, summary) in lint::RULES {
                println!("{rule}\n    {summary}");
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], name: &str) -> Result<Option<String>, String> {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == name {
            return match iter.next() {
                Some(v) => Ok(Some(v.clone())),
                None => Err(format!("{name} requires a value")),
            };
        }
    }
    Ok(None)
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let root = match flag_value(args, "--root") {
        Ok(Some(p)) => PathBuf::from(p),
        Ok(None) => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "could not locate the workspace root from {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match lint::run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "symclust-check lint: {} rules clean over {}",
                lint::RULES.len(),
                root.display()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("symclust-check lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("symclust-check lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve_model(args: &[String]) -> ExitCode {
    match flag_value(args, "--faulty") {
        Err(e) => {
            eprintln!("{e} (relaxed-shutdown or overloaded-requeue)");
            ExitCode::FAILURE
        }
        Ok(Some(variant)) => {
            let protocol = match variant.as_str() {
                "relaxed-shutdown" => servemodel::Protocol::RelaxedShutdown,
                "overloaded-requeue" => servemodel::Protocol::OverloadedRequeue,
                other => {
                    eprintln!(
                        "--faulty expects relaxed-shutdown or overloaded-requeue, got {other:?}"
                    );
                    return ExitCode::FAILURE;
                }
            };
            let cfg = servemodel::faulty_config(protocol);
            match servemodel::check_config(&cfg) {
                Ok(report) => {
                    eprintln!(
                        "faulty protocol `{variant}` unexpectedly verified clean ({} states) — \
                         the checker should have caught the bug",
                        report.states
                    );
                    ExitCode::FAILURE
                }
                Err(violation) => {
                    println!("faulty protocol `{variant}`: bug found, as expected\n\n{violation}");
                    ExitCode::FAILURE
                }
            }
        }
        Ok(None) => match servemodel::sweep() {
            Ok(reports) => {
                println!("serve-lifecycle model check (shipped protocol)");
                println!(
                    "{:>30} {:>9} {:>12} {:>16}",
                    "scenario", "states", "steps", "schedules"
                );
                let mut total_states = 0usize;
                for (name, r) in &reports {
                    total_states += r.states;
                    println!(
                        "{name:>30} {:>9} {:>12} {:>16}",
                        r.states, r.transitions, r.schedules
                    );
                }
                println!(
                    "\nall {} scenarios exactly-once, drain-terminating, and \
                     health-answerable ({total_states} states explored)",
                    reports.len()
                );
                ExitCode::SUCCESS
            }
            Err(violation) => {
                eprintln!("{violation}");
                ExitCode::FAILURE
            }
        },
    }
}

fn cmd_sched_model(args: &[String]) -> ExitCode {
    let parse = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name)? {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| format!("{name} expects an integer, got {v:?}")),
            None => Ok(default),
        }
    };
    let (workers, blocks) = match (parse("--workers", 3), parse("--blocks", 6)) {
        (Ok(w), Ok(b)) => (w, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if workers == 0 || workers > 4 || blocks > 8 {
        eprintln!(
            "sched-model supports 1..=4 workers and 0..=8 blocks \
             (state space grows super-exponentially beyond that)"
        );
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--faulty") {
        let cfg = schedmodel::Config {
            n_workers: workers.max(2),
            n_blocks: blocks.max(2),
            protocol: schedmodel::Protocol::NonAtomicSteal,
        };
        return match schedmodel::check_config(&cfg) {
            Ok(report) => {
                eprintln!(
                    "faulty protocol unexpectedly verified clean ({} states) — \
                     the checker should have caught the race",
                    report.states
                );
                ExitCode::FAILURE
            }
            Err(violation) => {
                println!(
                    "faulty non-atomic steal protocol: race found, as expected\n\n{violation}"
                );
                ExitCode::FAILURE
            }
        };
    }
    match schedmodel::sweep(workers, blocks) {
        Ok(reports) => {
            println!("work-stealing scheduler model check (CAS protocol)");
            println!(
                "{:>8} {:>7} {:>9} {:>12} {:>16}",
                "workers", "blocks", "states", "steps", "schedules"
            );
            let mut total_states = 0usize;
            for (w, b, r) in &reports {
                total_states += r.states;
                println!(
                    "{w:>8} {b:>7} {:>9} {:>12} {:>16}",
                    r.states, r.transitions, r.schedules
                );
            }
            println!(
                "\nall {} configurations exactly-once and lost-work free \
                 ({total_states} states explored)",
                reports.len()
            );
            ExitCode::SUCCESS
        }
        Err(violation) => {
            eprintln!("{violation}");
            ExitCode::FAILURE
        }
    }
}

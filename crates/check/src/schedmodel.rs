//! Exhaustive interleaving model checker for the work-stealing scheduler.
//!
//! `symclust-sparse`'s parallel SpGEMM kernels schedule row blocks through
//! `sched::BlockQueues`: one `(lo, hi)` range per worker packed into a
//! single `AtomicU64`, owners popping from the front (`lo += 1` CAS) and
//! thieves taking from the back (`hi -= 1` CAS) after scanning victims in
//! a fixed order. Stress tests (`concurrent_drain_is_exactly_once`) sample
//! schedules; this module *enumerates* them.
//!
//! # The model
//!
//! Each worker is a small state machine mirroring the worker loop
//! `while let Some(b) = q.pop_own(w).or_else(|| q.steal(w))`:
//!
//! * `Pop` — attempt `pop_own`: claim the front block of the own range and
//!   stay in `Pop`, or observe it empty and move to `Steal(1)`;
//! * `Steal(k)` — attempt to steal from victim `(w + k) % n`: claim that
//!   victim's back block and return to `Pop`, or observe it empty and move
//!   to `Steal(k + 1)` (`k == n` means every victim was scanned: `Done`);
//! * `Done` — the worker has exited.
//!
//! Each attempt is modelled as **one atomic step**. That is sound for the
//! real code because every attempt is a CAS retry loop on a single 64-bit
//! word: failed `compare_exchange` iterations write nothing and merely
//! re-read, so the whole loop is equivalent to one atomic read-modify-write
//! at the linearization point of the successful CAS (or of the final
//! empty-observing read). Ranges only ever shrink, so there is no ABA
//! window for the CAS to mistake.
//!
//! The checker runs a depth-first search over every interleaving of worker
//! steps, memoizing states (ranges + program counters + per-block claim
//! counts), and verifies at every step and terminal state:
//!
//! 1. **exactly-once** — no block is ever claimed twice, and at
//!    termination every block was claimed exactly once;
//! 2. **termination / no lost work** — when all workers are `Done`, every
//!    range is empty (a non-empty range would mean a worker gave up while
//!    work remained);
//! 3. **deterministic assembly** — follows from (1): the kernels tag each
//!    block with its index and assemble in index order, so *which* worker
//!    claimed a block never reaches the output. The checker confirms the
//!    premise the kernels rely on.
//!
//! To show the checker can actually catch protocol bugs, a deliberately
//! broken [`Protocol::NonAtomicSteal`] variant models a thief that reads
//! `(lo, hi)` and later blind-writes `(lo, hi - 1)` as two separate steps
//! — the lost-update race a single-word CAS exists to prevent. The checker
//! finds a double-claim within a few hundred states (see tests).

use std::collections::{HashMap, HashSet};

/// Which steal implementation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The shipped protocol: each pop/steal attempt is one atomic CAS.
    Cas,
    /// A deliberately broken thief that reads the victim range and later
    /// blind-writes the decremented range as two separate steps. Used to
    /// demonstrate the checker detects real races.
    NonAtomicSteal,
}

/// One model-checking configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of workers (`>= 1`).
    pub n_workers: usize,
    /// Number of row blocks.
    pub n_blocks: usize,
    /// Steal protocol to model.
    pub protocol: Protocol,
}

/// Statistics from an exhaustive run that found no violation.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct reachable states explored.
    pub states: usize,
    /// Transitions (worker steps) taken across all distinct states.
    pub transitions: usize,
    /// Number of distinct complete interleavings (schedules), saturating.
    pub schedules: u128,
}

/// A violated invariant, with the interleaving that reaches it.
#[derive(Debug, Clone)]
pub struct ModelViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The schedule that exhibits the violation, as `worker: action` lines.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.message
        )?;
        writeln!(f, "schedule:")?;
        for step in &self.trace {
            writeln!(f, "  {step}")?;
        }
        Ok(())
    }
}

/// Per-worker program counter. `StealWrite` only occurs under
/// [`Protocol::NonAtomicSteal`] and carries the stale snapshot the broken
/// thief read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    Pop,
    Steal(u8),
    StealWrite { offset: u8, lo: u8, hi: u8 },
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// `[lo, hi)` per worker. `u8` suffices: the checker targets ≤ 255
    /// blocks and the exhaustive sweep uses ≤ 6.
    ranges: Vec<(u8, u8)>,
    pcs: Vec<Pc>,
    /// Claims per block, saturating at 2 (2 is already a violation).
    claimed: Vec<u8>,
}

impl State {
    fn initial(cfg: &Config) -> Self {
        // Contiguous split, first blocks to worker 0 — mirrors
        // `BlockQueues::new` exactly (`per + usize::from(w < extra)`).
        let per = cfg.n_blocks / cfg.n_workers;
        let extra = cfg.n_blocks % cfg.n_workers;
        let mut ranges = Vec::with_capacity(cfg.n_workers);
        let mut lo = 0usize;
        for w in 0..cfg.n_workers {
            let len = per + usize::from(w < extra);
            ranges.push((lo as u8, (lo + len) as u8));
            lo += len;
        }
        State {
            ranges,
            pcs: vec![Pc::Pop; cfg.n_workers],
            claimed: vec![0; cfg.n_blocks],
        }
    }

    fn terminal(&self) -> bool {
        self.pcs.iter().all(|pc| *pc == Pc::Done)
    }
}

/// Applies one step of worker `w`. Returns the successor state, a label
/// for the trace, and the block claimed by this step (if any). `None`
/// when the worker is `Done` (no enabled step).
fn step(cfg: &Config, state: &State, w: usize) -> Option<(State, String, Option<usize>)> {
    let n = cfg.n_workers;
    let mut next = state.clone();
    let (label, claimed_block) = match state.pcs[w] {
        Pc::Done => return None,
        Pc::Pop => {
            let (lo, hi) = state.ranges[w];
            if lo < hi {
                next.ranges[w] = (lo + 1, hi);
                next.pcs[w] = Pc::Pop;
                (format!("pop_own -> block {lo}"), Some(lo as usize))
            } else {
                next.pcs[w] = if n == 1 { Pc::Done } else { Pc::Steal(1) };
                ("pop_own -> empty, begin steal scan".to_string(), None)
            }
        }
        Pc::Steal(offset) => {
            let victim = (w + offset as usize) % n;
            let (lo, hi) = state.ranges[victim];
            match cfg.protocol {
                Protocol::Cas => {
                    if lo < hi {
                        next.ranges[victim] = (lo, hi - 1);
                        next.pcs[w] = Pc::Pop;
                        (
                            format!("steal from {victim} -> block {}", hi - 1),
                            Some((hi - 1) as usize),
                        )
                    } else {
                        next.pcs[w] = if offset as usize + 1 >= n {
                            Pc::Done
                        } else {
                            Pc::Steal(offset + 1)
                        };
                        (format!("steal from {victim} -> empty"), None)
                    }
                }
                Protocol::NonAtomicSteal => {
                    // Broken thief, step 1: read the snapshot only.
                    next.pcs[w] = Pc::StealWrite { offset, lo, hi };
                    (format!("read victim {victim} range ({lo},{hi})"), None)
                }
            }
        }
        Pc::StealWrite { offset, lo, hi } => {
            let victim = (w + offset as usize) % n;
            if lo < hi {
                // Broken thief, step 2: blind-write the stale decrement.
                next.ranges[victim] = (lo, hi - 1);
                next.pcs[w] = Pc::Pop;
                (
                    format!("blind-write victim {victim} -> block {}", hi - 1),
                    Some((hi - 1) as usize),
                )
            } else {
                next.pcs[w] = if offset as usize + 1 >= n {
                    Pc::Done
                } else {
                    Pc::Steal(offset + 1)
                };
                (format!("victim {victim} was empty"), None)
            }
        }
    };
    if let Some(b) = claimed_block {
        next.claimed[b] = next.claimed[b].saturating_add(1);
    }
    Some((next, format!("worker {w}: {label}"), claimed_block))
}

/// Exhaustively checks every interleaving of `cfg`. `Ok` carries coverage
/// statistics; `Err` carries the violated invariant and a witness
/// schedule.
pub fn check_config(cfg: &Config) -> Result<Report, Box<ModelViolation>> {
    assert!(cfg.n_workers >= 1, "need at least one worker");
    assert!(cfg.n_blocks <= 255, "model uses u8 block ids");
    let mut visited: HashSet<State> = HashSet::new();
    // Schedules from a state to any terminal, for the path count.
    let mut paths: HashMap<State, u128> = HashMap::new();
    let mut transitions = 0usize;
    let mut trace: Vec<String> = Vec::new();
    let init = State::initial(cfg);
    let schedules = dfs(
        cfg,
        &init,
        &mut visited,
        &mut paths,
        &mut transitions,
        &mut trace,
    )?;
    Ok(Report {
        states: visited.len(),
        transitions,
        schedules,
    })
}

fn dfs(
    cfg: &Config,
    state: &State,
    visited: &mut HashSet<State>,
    paths: &mut HashMap<State, u128>,
    transitions: &mut usize,
    trace: &mut Vec<String>,
) -> Result<u128, Box<ModelViolation>> {
    if let Some(&count) = paths.get(state) {
        return Ok(count);
    }
    visited.insert(state.clone());
    if state.terminal() {
        check_terminal(cfg, state, trace)?;
        paths.insert(state.clone(), 1);
        return Ok(1);
    }
    let mut count: u128 = 0;
    for w in 0..cfg.n_workers {
        let Some((next, label, claimed_block)) = step(cfg, state, w) else {
            continue;
        };
        *transitions += 1;
        trace.push(label);
        if let Some(b) = claimed_block {
            if next.claimed[b] > 1 {
                return Err(Box::new(ModelViolation {
                    invariant: "exactly-once",
                    message: format!(
                        "block {b} claimed twice ({} workers, {} blocks, {:?})",
                        cfg.n_workers, cfg.n_blocks, cfg.protocol
                    ),
                    trace: trace.clone(),
                }));
            }
        }
        let sub = dfs(cfg, &next, visited, paths, transitions, trace)?;
        count = count.saturating_add(sub);
        trace.pop();
    }
    paths.insert(state.clone(), count);
    Ok(count)
}

fn check_terminal(
    cfg: &Config,
    state: &State,
    trace: &[String],
) -> Result<(), Box<ModelViolation>> {
    for (b, &times) in state.claimed.iter().enumerate() {
        if times != 1 {
            return Err(Box::new(ModelViolation {
                invariant: if times == 0 {
                    "no-lost-work"
                } else {
                    "exactly-once"
                },
                message: format!(
                    "block {b} claimed {times} times at termination \
                     ({} workers, {} blocks, {:?})",
                    cfg.n_workers, cfg.n_blocks, cfg.protocol
                ),
                trace: trace.to_vec(),
            }));
        }
    }
    for (w, &(lo, hi)) in state.ranges.iter().enumerate() {
        if lo < hi {
            return Err(Box::new(ModelViolation {
                invariant: "no-lost-work",
                message: format!(
                    "worker {w}'s range [{lo},{hi}) non-empty after all workers exited"
                ),
                trace: trace.to_vec(),
            }));
        }
    }
    Ok(())
}

/// Sweeps every configuration up to `max_workers` × `max_blocks` under the
/// shipped CAS protocol. Returns per-configuration reports in `(workers,
/// blocks)` order.
pub fn sweep(
    max_workers: usize,
    max_blocks: usize,
) -> Result<Vec<(usize, usize, Report)>, Box<ModelViolation>> {
    let mut out = Vec::new();
    for n_workers in 1..=max_workers {
        for n_blocks in 0..=max_blocks {
            let cfg = Config {
                n_workers,
                n_blocks,
                protocol: Protocol::Cas,
            };
            let report = check_config(&cfg)?;
            out.push((n_workers, n_blocks, report));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_split_matches_blockqueues() {
        // 10 blocks over 3 workers: 4 / 3 / 3, contiguous from block 0.
        let cfg = Config {
            n_workers: 3,
            n_blocks: 10,
            protocol: Protocol::Cas,
        };
        let s = State::initial(&cfg);
        assert_eq!(s.ranges, vec![(0, 4), (4, 7), (7, 10)]);
    }

    #[test]
    fn cas_protocol_is_exactly_once_for_all_small_configs() {
        let reports = sweep(3, 6).expect("no violation in the shipped protocol");
        assert_eq!(reports.len(), 3 * 7);
        // The target configuration must have real interleaving coverage.
        let (_, _, top) = reports
            .iter()
            .find(|(w, b, _)| *w == 3 && *b == 6)
            .copied()
            .expect("3x6 present");
        assert!(
            top.states > 1_000,
            "suspiciously few states: {}",
            top.states
        );
        assert!(top.schedules > 100_000, "schedules: {}", top.schedules);
    }

    #[test]
    fn single_worker_degenerates_to_serial_drain() {
        let report = check_config(&Config {
            n_workers: 1,
            n_blocks: 6,
            protocol: Protocol::Cas,
        })
        .expect("serial drain is trivially exactly-once");
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn checker_catches_the_non_atomic_steal_race() {
        // With two workers and two blocks, the stale blind-write lets the
        // thief resurrect a block the owner already popped.
        let err = check_config(&Config {
            n_workers: 2,
            n_blocks: 2,
            protocol: Protocol::NonAtomicSteal,
        })
        .expect_err("the broken protocol must exhibit a violation");
        assert_eq!(err.invariant, "exactly-once");
        assert!(!err.trace.is_empty());
        // The witness schedule must include the two-step steal.
        assert!(
            err.trace.iter().any(|s| s.contains("blind-write")),
            "trace: {:#?}",
            err.trace
        );
    }

    #[test]
    fn zero_blocks_terminates_cleanly() {
        for n_workers in 1..=3 {
            let report = check_config(&Config {
                n_workers,
                n_blocks: 0,
                protocol: Protocol::Cas,
            })
            .expect("empty run is clean");
            assert!(report.schedules >= 1);
        }
    }
}

//! Exhaustive interleaving model checker for the serve daemon's request
//! lifecycle (`crates/cli/src/server.rs`, DESIGN.md §14–§15).
//!
//! Where [`crate::schedmodel`] proves the *kernel* scheduler, this module
//! proves the concurrency substrate that serves it: bounded FIFO
//! admission, the worker pool's drain semantics, `begin_shutdown`'s
//! flag + drain-deadline watchdog, the out-of-band `health` op, and
//! client-disconnect cancellation.
//!
//! # The model
//!
//! One connection issues a fixed sequence of requests; each actor is a
//! small state machine whose every step is one atomic action:
//!
//! * **reader** — per request, *two* steps mirror the real admission
//!   path's non-atomicity: `read-flag` (one `Acquire` load of the
//!   shutdown flag; observing `true` refuses with a draining error) and
//!   `admit` (the `try_send`: queue full ⇒ `overloaded` response,
//!   all workers exited ⇒ the channel-`Disconnected` backstop answers an
//!   internal error, else the job is queued). The window between the two
//!   steps is exactly the race the real code must tolerate.
//! * **workers** — `dequeue` (pops the FIFO head; a job whose client is
//!   gone is dropped silently, mirroring the `client_gone` check),
//!   `complete` (writes the one response; executing the `shutdown` op
//!   flips the flag and arms the watchdog), and `observe-empty` (the
//!   `recv_timeout` → `Timeout` path: exit only once the queue is empty
//!   *and* the flag was observed). A [`ReqKind::Stuck`] request models a
//!   hung kernel: it can only complete after its token is cancelled.
//! * **watchdog** — armed by the first shutdown transition; `fire`
//!   (cancel every active token) is enabled while any worker lives, and
//!   `disarm` the moment the pool has exited — exactly the
//!   condvar-latched `wait_drained` contract, so a completed drain never
//!   cancels anything.
//! * **environment** — optional one-shot steps: an external SIGTERM, the
//!   client disconnecting (cancels that connection's tokens and
//!   suppresses its pending responses), and a `health` probe that is
//!   enabled in *every* state — exhaustiveness is the proof that health
//!   stays answerable while draining and while the queue is full.
//!
//! Invariants, checked at every step and at every terminal state:
//!
//! 1. **at-most-once** — no request is ever answered twice;
//! 2. **every-request-accounted** — at termination each request was
//!    answered exactly once, or silently dropped *only* because its
//!    client disconnected; nothing is left queued;
//! 3. **drain-terminates** — a state with no enabled step must be a
//!    clean terminal: once shutdown begins, all workers exited and the
//!    watchdog was reaped (fired or disarmed), bounded-drain included —
//!    a stuck request can hold the pool only until the watchdog fires;
//! 4. **no-admission-after-shutdown-observed** — a reader that observed
//!    the flag never queues that request (checked at `admit`);
//! 5. **queue-bound** — the FIFO never exceeds its capacity;
//! 6. **health-answerable** — the probe step is enabled in every state
//!    until taken, and answered by termination.
//!
//! Two deliberately broken variants demonstrate the checker has teeth:
//! [`Protocol::RelaxedShutdown`] models a `Relaxed` shutdown flag with a
//! hand-rolled queue (stale `false` reads, no channel-`Disconnected`
//! backstop) and yields a **lost request**; [`Protocol::OverloadedRequeue`]
//! models a TOCTOU double-submit on the full-queue path (the overloaded
//! response is written but the job is enqueued anyway once a slot frees)
//! and yields a **double completion**.

use std::collections::{HashMap, HashSet};

/// Which admission/shutdown protocol to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// The shipped protocol: `AcqRel` shutdown flag, bounded `sync_channel`
    /// admission with the `Disconnected` backstop, condvar-latched watchdog.
    Shipped,
    /// Broken variant: the reader may observe a stale `false` after the
    /// flag is set, and worker exit does not close the queue (no
    /// `Disconnected` backstop) — a request can be admitted into a queue
    /// nobody will ever drain. Expected witness: a lost request.
    RelaxedShutdown,
    /// Broken variant: the full-queue path answers `overloaded` but leaves
    /// the job pending and enqueues it once a slot frees — the classic
    /// check-then-act double submit. Expected witness: a double completion.
    OverloadedRequeue,
}

/// What a modelled request does when a worker executes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Runs to completion and answers.
    Normal,
    /// The `shutdown` op: answers, then flips the flag and arms the
    /// watchdog (the worker keeps draining afterwards).
    Shutdown,
    /// A hung kernel: completes only after its cancel token trips
    /// (client disconnect or watchdog fire) — what the drain deadline
    /// exists to bound.
    Stuck,
}

/// One model-checking scenario.
#[derive(Debug, Clone)]
pub struct Config {
    /// Human-readable scenario name (shows up in reports and traces).
    pub name: &'static str,
    /// Worker-pool size (`>= 1`).
    pub n_workers: usize,
    /// Bounded admission-queue capacity (`>= 1`).
    pub queue_cap: usize,
    /// The connection's request sequence, in arrival order.
    pub requests: Vec<ReqKind>,
    /// Whether an external SIGTERM can arrive at any point.
    pub external_sigterm: bool,
    /// Whether the client can disconnect once all its requests are sent.
    pub client_disconnect: bool,
    /// Whether a health probe fires (enabled in every state until taken).
    pub health_probe: bool,
    /// Protocol variant under test.
    pub protocol: Protocol,
}

/// Statistics from an exhaustive run that found no violation.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct reachable states explored.
    pub states: usize,
    /// Transitions (actor steps) taken across all distinct states.
    pub transitions: usize,
    /// Number of distinct complete interleavings (schedules), saturating.
    pub schedules: u128,
}

/// A violated invariant, with the interleaving that reaches it.
#[derive(Debug, Clone)]
pub struct ModelViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The schedule that exhibits the violation, as `actor: action` lines.
    pub trace: Vec<String>,
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.message
        )?;
        writeln!(f, "schedule:")?;
        for step in &self.trace {
            writeln!(f, "  {step}")?;
        }
        Ok(())
    }
}

/// Where a request is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Req {
    /// Not yet read off the socket.
    New,
    /// The reader loaded the shutdown flag and saw `false`; the job is
    /// between the flag check and `try_send` — the admission race window.
    FlagFalse,
    /// In the FIFO queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Answered with the draining error (flag observed at read).
    Refused,
    /// Answered `overloaded` (queue full at `try_send`).
    Overloaded,
    /// [`Protocol::OverloadedRequeue`] only: answered `overloaded` but the
    /// job still waits to slip into the queue.
    OverloadedPending,
    /// Answered (ok or error — one response either way).
    Responded,
    /// Dropped without a response because the client was gone at dequeue.
    CancelledSilent,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Worker {
    Idle,
    /// Executing request `r`.
    Running(u8),
    /// Exited the drain loop.
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Watchdog {
    /// No shutdown yet.
    Off,
    /// Shutdown began; the drain deadline is pending.
    Armed,
    /// Deadline passed with workers still alive: every token cancelled.
    Fired,
    /// Pool exited before the deadline: woken via the drain latch, no
    /// cancellation performed.
    Disarmed,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    shutdown: bool,
    /// Watchdog fired: every registered token (queued + running) tripped.
    cancelled_all: bool,
    client_gone: bool,
    sigterm_fired: bool,
    health_answered: bool,
    queue: Vec<u8>,
    reqs: Vec<Req>,
    workers: Vec<Worker>,
    watchdog: Watchdog,
    /// Responses per request, saturating at 2 (2 is already a violation).
    responses: Vec<u8>,
}

impl State {
    fn initial(cfg: &Config) -> Self {
        State {
            shutdown: false,
            cancelled_all: false,
            client_gone: false,
            sigterm_fired: false,
            health_answered: !cfg.health_probe,
            queue: Vec::new(),
            reqs: vec![Req::New; cfg.requests.len()],
            workers: vec![Worker::Idle; cfg.n_workers],
            watchdog: Watchdog::Off,
            responses: vec![0; cfg.requests.len()],
        }
    }

    fn all_workers_done(&self) -> bool {
        self.workers.iter().all(|w| *w == Worker::Done)
    }

    /// The reader handles requests strictly in arrival order: request `i`
    /// is readable only once every earlier request has left the reader.
    fn reader_next(&self) -> Option<usize> {
        for (i, r) in self.reqs.iter().enumerate() {
            match r {
                Req::New => return Some(i),
                Req::FlagFalse => return None,
                _ => {}
            }
        }
        None
    }

    /// The request sitting between flag check and `try_send`, if any.
    fn reader_admitting(&self) -> Option<usize> {
        self.reqs.iter().position(|r| *r == Req::FlagFalse)
    }

    /// Whether every request has been sent (the disconnect step models an
    /// EOF *after* the client wrote its whole pipeline).
    fn all_requests_sent(&self) -> bool {
        !self
            .reqs
            .iter()
            .any(|r| matches!(r, Req::New | Req::FlagFalse))
    }
}

/// Begins the drain: idempotent flag flip + watchdog arming, the model's
/// `begin_shutdown`.
fn flip_shutdown(state: &mut State) {
    if !state.shutdown {
        state.shutdown = true;
        state.watchdog = Watchdog::Armed;
    }
}

/// One enabled transition out of a state.
struct Transition {
    next: State,
    label: String,
    /// Request answered by this step, for the at-most-once check.
    responded: Option<usize>,
}

/// Enumerates every enabled step of every actor, in a fixed order so the
/// search (and its state/schedule counts) is deterministic.
fn successors(cfg: &Config, state: &State) -> Vec<Transition> {
    let mut out = Vec::new();

    // Health probe: enabled in *every* state until taken. Answered inline
    // by the reader thread, out-of-band of the queue and the flag.
    if !state.health_answered {
        let mut next = state.clone();
        next.health_answered = true;
        out.push(Transition {
            next,
            label: format!(
                "health: answered ({})",
                if state.shutdown { "draining" } else { "ready" }
            ),
            responded: None,
        });
    }

    // Reader, step 1: read the shutdown flag for the next request.
    if let Some(i) = state.reader_next() {
        if !state.client_gone {
            let observed_true = state.shutdown;
            if observed_true {
                let mut next = state.clone();
                next.reqs[i] = Req::Refused;
                out.push(Transition {
                    next,
                    label: format!("reader: req {i} read-flag -> true, refuse (draining)"),
                    responded: Some(i),
                });
                if cfg.protocol == Protocol::RelaxedShutdown {
                    // A Relaxed load may also return the stale `false`.
                    let mut next = state.clone();
                    next.reqs[i] = Req::FlagFalse;
                    out.push(Transition {
                        next,
                        label: format!("reader: req {i} read-flag -> stale false (Relaxed)"),
                        responded: None,
                    });
                }
            } else {
                let mut next = state.clone();
                next.reqs[i] = Req::FlagFalse;
                out.push(Transition {
                    next,
                    label: format!("reader: req {i} read-flag -> false"),
                    responded: None,
                });
            }
        }
    }

    // Reader, step 2: `try_send` the job it is holding.
    if let Some(i) = state.reader_admitting() {
        if state.all_workers_done() && cfg.protocol != Protocol::RelaxedShutdown {
            // Every worker exited ⇒ the receiver side of the channel is
            // dropped ⇒ `TrySendError::Disconnected` ⇒ internal error.
            let mut next = state.clone();
            next.reqs[i] = Req::Responded;
            out.push(Transition {
                next,
                label: format!("reader: req {i} try_send -> disconnected backstop"),
                responded: Some(i),
            });
        } else if state.queue.len() < cfg.queue_cap {
            let mut next = state.clone();
            next.reqs[i] = Req::Queued;
            next.queue.push(i as u8);
            let label = if state.all_workers_done() {
                // Only reachable without the Disconnected backstop.
                format!("reader: req {i} enqueued into a dead queue (no backstop)")
            } else {
                format!("reader: req {i} try_send -> queued")
            };
            out.push(Transition {
                next,
                label,
                responded: None,
            });
        } else {
            let mut next = state.clone();
            next.reqs[i] = if cfg.protocol == Protocol::OverloadedRequeue {
                Req::OverloadedPending
            } else {
                Req::Overloaded
            };
            out.push(Transition {
                next,
                label: format!("reader: req {i} try_send -> full, overloaded"),
                responded: Some(i),
            });
        }
    }

    // OverloadedRequeue bug: the job answered `overloaded` slips into the
    // queue once a slot frees.
    if cfg.protocol == Protocol::OverloadedRequeue && state.queue.len() < cfg.queue_cap {
        if let Some(i) = state.reqs.iter().position(|r| *r == Req::OverloadedPending) {
            let mut next = state.clone();
            next.reqs[i] = Req::Queued;
            next.queue.push(i as u8);
            out.push(Transition {
                next,
                label: format!("reader: req {i} late enqueue after overloaded (bug)"),
                responded: None,
            });
        }
    }

    // Workers.
    for (w, ws) in state.workers.iter().enumerate() {
        match *ws {
            Worker::Idle => {
                if let Some(&r) = state.queue.first() {
                    let r = r as usize;
                    let mut next = state.clone();
                    next.queue.remove(0);
                    if state.client_gone {
                        // Nobody is listening: drop without running or
                        // responding.
                        next.reqs[r] = Req::CancelledSilent;
                        out.push(Transition {
                            next,
                            label: format!("worker {w}: dequeue req {r} -> client gone, drop"),
                            responded: None,
                        });
                    } else {
                        next.reqs[r] = Req::Running;
                        next.workers[w] = Worker::Running(r as u8);
                        out.push(Transition {
                            next,
                            label: format!("worker {w}: dequeue req {r}"),
                            responded: None,
                        });
                    }
                } else if state.shutdown {
                    // `recv_timeout` -> Timeout with the flag observed:
                    // exit the drain loop.
                    let mut next = state.clone();
                    next.workers[w] = Worker::Done;
                    out.push(Transition {
                        next,
                        label: format!("worker {w}: queue empty + shutdown observed -> exit"),
                        responded: None,
                    });
                }
                // Queue empty without shutdown: the real worker parks in
                // `recv_timeout` — a stutter step the model elides.
            }
            Worker::Running(r) => {
                let r = r as usize;
                let cancellable = state.client_gone || state.cancelled_all;
                if cfg.requests[r] != ReqKind::Stuck || cancellable {
                    let mut next = state.clone();
                    next.reqs[r] = Req::Responded;
                    next.workers[w] = Worker::Idle;
                    let mut label = format!("worker {w}: complete req {r}");
                    if cfg.requests[r] == ReqKind::Shutdown {
                        flip_shutdown(&mut next);
                        label.push_str(" (shutdown op: flag set, watchdog armed)");
                    } else if cfg.requests[r] == ReqKind::Stuck {
                        label.push_str(" (cancelled)");
                    }
                    out.push(Transition {
                        next,
                        label,
                        responded: Some(r),
                    });
                }
            }
            Worker::Done => {}
        }
    }

    // Watchdog: `fire` while any worker lives, `disarm` once the pool has
    // exited — the condvar-latched `wait_drained` contract.
    if state.watchdog == Watchdog::Armed {
        if state.all_workers_done() {
            let mut next = state.clone();
            next.watchdog = Watchdog::Disarmed;
            out.push(Transition {
                next,
                label: "watchdog: drain latch notified -> disarmed, no cancel".to_string(),
                responded: None,
            });
        } else {
            let mut next = state.clone();
            next.watchdog = Watchdog::Fired;
            next.cancelled_all = true;
            out.push(Transition {
                next,
                label: "watchdog: drain deadline -> cancel all active tokens".to_string(),
                responded: None,
            });
        }
    }

    // External SIGTERM: same drain path as the shutdown op.
    if cfg.external_sigterm && !state.sigterm_fired {
        let mut next = state.clone();
        next.sigterm_fired = true;
        flip_shutdown(&mut next);
        out.push(Transition {
            next,
            label: "signal: SIGTERM -> flag set, watchdog armed".to_string(),
            responded: None,
        });
    }

    // Client disconnect: EOF after the pipeline was written; cancels every
    // token of the connection and suppresses its pending responses.
    if cfg.client_disconnect && !state.client_gone && state.all_requests_sent() {
        let mut next = state.clone();
        next.client_gone = true;
        out.push(Transition {
            next,
            label: "client: disconnect -> cancel connection tokens".to_string(),
            responded: None,
        });
    }

    out
}

/// Exhaustively checks every interleaving of `cfg`. `Ok` carries coverage
/// statistics; `Err` carries the violated invariant and a witness
/// schedule.
pub fn check_config(cfg: &Config) -> Result<Report, Box<ModelViolation>> {
    assert!(cfg.n_workers >= 1, "need at least one worker");
    assert!(cfg.queue_cap >= 1, "need a queue");
    assert!(cfg.requests.len() <= 8, "model targets short pipelines");
    let mut visited: HashSet<State> = HashSet::new();
    let mut paths: HashMap<State, u128> = HashMap::new();
    let mut transitions = 0usize;
    let mut trace: Vec<String> = Vec::new();
    let init = State::initial(cfg);
    let schedules = dfs(
        cfg,
        &init,
        &mut visited,
        &mut paths,
        &mut transitions,
        &mut trace,
    )?;
    Ok(Report {
        states: visited.len(),
        transitions,
        schedules,
    })
}

fn dfs(
    cfg: &Config,
    state: &State,
    visited: &mut HashSet<State>,
    paths: &mut HashMap<State, u128>,
    transitions: &mut usize,
    trace: &mut Vec<String>,
) -> Result<u128, Box<ModelViolation>> {
    if let Some(&count) = paths.get(state) {
        return Ok(count);
    }
    visited.insert(state.clone());
    let succs = successors(cfg, state);
    if succs.is_empty() {
        check_terminal(cfg, state, trace)?;
        paths.insert(state.clone(), 1);
        return Ok(1);
    }
    let mut count: u128 = 0;
    for t in succs {
        *transitions += 1;
        trace.push(t.label);
        let mut next = t.next;
        if next.queue.len() > cfg.queue_cap {
            return Err(Box::new(ModelViolation {
                invariant: "queue-bound",
                message: format!(
                    "queue grew to {} with capacity {} (scenario `{}`, {:?})",
                    next.queue.len(),
                    cfg.queue_cap,
                    cfg.name,
                    cfg.protocol
                ),
                trace: trace.clone(),
            }));
        }
        if let Some(r) = t.responded {
            next.responses[r] = next.responses[r].saturating_add(1);
            if next.responses[r] > 1 {
                return Err(Box::new(ModelViolation {
                    invariant: "at-most-once",
                    message: format!(
                        "request {r} answered twice (scenario `{}`, {:?})",
                        cfg.name, cfg.protocol
                    ),
                    trace: trace.clone(),
                }));
            }
        }
        let sub = dfs(cfg, &next, visited, paths, transitions, trace)?;
        count = count.saturating_add(sub);
        trace.pop();
    }
    paths.insert(state.clone(), count);
    Ok(count)
}

fn check_terminal(
    cfg: &Config,
    state: &State,
    trace: &[String],
) -> Result<(), Box<ModelViolation>> {
    let fail = |invariant: &'static str, message: String| -> Result<(), Box<ModelViolation>> {
        Err(Box::new(ModelViolation {
            invariant,
            message: format!("{message} (scenario `{}`, {:?})", cfg.name, cfg.protocol),
            trace: trace.to_vec(),
        }))
    };
    for (i, r) in state.reqs.iter().enumerate() {
        match r {
            Req::Responded | Req::Refused | Req::Overloaded => {
                if state.responses[i] != 1 {
                    return fail(
                        "every-request-accounted",
                        format!(
                            "request {i} is {r:?} but has {} responses",
                            state.responses[i]
                        ),
                    );
                }
            }
            Req::CancelledSilent => {
                if !state.client_gone {
                    return fail(
                        "every-request-accounted",
                        format!("request {i} dropped silently with the client connected"),
                    );
                }
            }
            Req::New | Req::FlagFalse if state.client_gone => {
                // EOF before these were read: the client withdrew them.
            }
            other => {
                return fail(
                    "every-request-accounted",
                    format!("request {i} stranded in state {other:?} at termination"),
                );
            }
        }
    }
    if !state.queue.is_empty() {
        return fail(
            "every-request-accounted",
            format!("{} job(s) left in the admission queue", state.queue.len()),
        );
    }
    if state.shutdown {
        if !state.all_workers_done() {
            return fail(
                "drain-terminates",
                "shutdown began but the worker pool never exited".to_string(),
            );
        }
        if state.watchdog == Watchdog::Armed {
            return fail(
                "drain-terminates",
                "drain finished but the watchdog was never reaped".to_string(),
            );
        }
    }
    if !state.health_answered {
        return fail(
            "health-answerable",
            "health probe never answered".to_string(),
        );
    }
    Ok(())
}

/// The named scenarios `serve-model` sweeps under the shipped protocol.
/// Each exercises a different corner of the lifecycle; together they
/// cover admission vs shutdown races, overload, drain-deadline rescue of
/// a stuck request, and client-disconnect cancellation.
pub fn scenarios() -> Vec<Config> {
    vec![
        Config {
            name: "shutdown-op-mid-pipeline",
            n_workers: 2,
            queue_cap: 2,
            requests: vec![
                ReqKind::Normal,
                ReqKind::Shutdown,
                ReqKind::Normal,
                ReqKind::Normal,
            ],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: true,
            protocol: Protocol::Shipped,
        },
        Config {
            name: "sigterm-rescues-stuck-request",
            n_workers: 2,
            queue_cap: 1,
            requests: vec![ReqKind::Stuck, ReqKind::Normal],
            external_sigterm: true,
            client_disconnect: false,
            health_probe: true,
            protocol: Protocol::Shipped,
        },
        Config {
            name: "client-disconnect-cancels",
            n_workers: 1,
            queue_cap: 2,
            requests: vec![ReqKind::Normal, ReqKind::Stuck, ReqKind::Normal],
            external_sigterm: true,
            client_disconnect: true,
            health_probe: true,
            protocol: Protocol::Shipped,
        },
        Config {
            name: "overload-then-drain",
            n_workers: 1,
            queue_cap: 1,
            requests: vec![
                ReqKind::Normal,
                ReqKind::Normal,
                ReqKind::Shutdown,
                ReqKind::Normal,
            ],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: true,
            protocol: Protocol::Shipped,
        },
    ]
}

/// Sweeps every named scenario under the shipped protocol. Returns
/// per-scenario reports in [`scenarios`] order.
pub fn sweep() -> Result<Vec<(&'static str, Report)>, Box<ModelViolation>> {
    let mut out = Vec::new();
    for cfg in scenarios() {
        let report = check_config(&cfg)?;
        out.push((cfg.name, report));
    }
    Ok(out)
}

/// The faulty scenario behind `serve-model --faulty`: which broken
/// protocol to demonstrate.
pub fn faulty_config(protocol: Protocol) -> Config {
    match protocol {
        Protocol::RelaxedShutdown => Config {
            name: "relaxed-shutdown-flag",
            n_workers: 1,
            queue_cap: 2,
            requests: vec![ReqKind::Shutdown, ReqKind::Normal],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: false,
            protocol,
        },
        Protocol::OverloadedRequeue => Config {
            name: "overloaded-requeue",
            n_workers: 1,
            queue_cap: 1,
            requests: vec![ReqKind::Normal, ReqKind::Normal],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: false,
            protocol,
        },
        Protocol::Shipped => Config {
            name: "shipped",
            n_workers: 1,
            queue_cap: 1,
            requests: vec![ReqKind::Normal],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: false,
            protocol,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_protocol_is_clean_across_all_scenarios() {
        let reports = sweep().expect("no violation in the shipped protocol");
        assert_eq!(reports.len(), scenarios().len());
        // Exact memoized state counts: any model change — an actor gained
        // or lost a step, an invariant tightened — shows up here first and
        // must be re-derived deliberately, not absorbed silently.
        let expected: &[(&str, usize, u128)] = &[
            ("shutdown-op-mid-pipeline", 1028, 11_447_728),
            ("sigterm-rescues-stuck-request", 304, 10_142),
            ("client-disconnect-cancels", 490, 66_132),
            ("overload-then-drain", 258, 24_172),
        ];
        for ((name, r), (exp_name, states, schedules)) in reports.iter().zip(expected) {
            assert_eq!(name, exp_name);
            assert_eq!(r.states, *states, "scenario `{name}` state count drifted");
            assert_eq!(
                r.schedules, *schedules,
                "scenario `{name}` schedule count drifted"
            );
        }
    }

    #[test]
    fn relaxed_shutdown_loses_a_request() {
        let err = check_config(&faulty_config(Protocol::RelaxedShutdown))
            .expect_err("the Relaxed flag variant must lose a request");
        assert_eq!(err.invariant, "every-request-accounted");
        // Either face of the bug is a valid lost-request witness: a stale
        // `false` flag read, or an enqueue into a queue no worker will
        // ever drain again (the missing Disconnected backstop).
        assert!(
            err.trace
                .iter()
                .any(|s| s.contains("stale false") || s.contains("dead queue")),
            "trace: {:#?}",
            err.trace
        );
    }

    #[test]
    fn overloaded_requeue_double_completes() {
        let err = check_config(&faulty_config(Protocol::OverloadedRequeue))
            .expect_err("the requeue variant must double-complete");
        assert_eq!(err.invariant, "at-most-once");
        assert!(
            err.trace.iter().any(|s| s.contains("late enqueue")),
            "trace: {:#?}",
            err.trace
        );
    }

    #[test]
    fn single_request_single_worker_is_serial() {
        let report = check_config(&Config {
            name: "serial",
            n_workers: 1,
            queue_cap: 1,
            requests: vec![ReqKind::Normal],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: false,
            protocol: Protocol::Shipped,
        })
        .expect("a lone request is trivially clean");
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn health_stays_answerable_while_draining_and_overloaded() {
        // The probe step is unconditionally enabled until taken; a clean
        // sweep therefore proves answerability in every reachable state,
        // including full-queue and draining ones. This test pins that the
        // scenarios actually reach such states.
        let cfg = Config {
            name: "health-under-pressure",
            n_workers: 1,
            queue_cap: 1,
            requests: vec![ReqKind::Normal, ReqKind::Normal, ReqKind::Shutdown],
            external_sigterm: false,
            client_disconnect: false,
            health_probe: true,
            protocol: Protocol::Shipped,
        };
        let report = check_config(&cfg).expect("clean");
        assert_eq!(report.states, 90, "state count drifted");
    }
}

//! Property tests for the lint driver's token-stream lexer.
//!
//! The lexer underpins every lint rule (rules scan *stripped* source), so
//! its contract is pinned here generatively rather than by examples alone:
//!
//! * concatenating the lexed tokens reproduces the input byte-for-byte;
//! * token line numbers agree with a straight newline count;
//! * generated comment/string/char islands classify as their planted kind,
//!   in order — raw strings at any hash depth, nested block comments,
//!   escaped char literals, lifetimes;
//! * `strip` preserves the char count and every newline position (so
//!   line-based rules see the raw file's geometry) and blanks exactly the
//!   non-code islands;
//! * `string_literals` extracts exactly the planted literals, escapes
//!   included, and never reports raw-string or comment contents.
//!
//! Failing inputs persist in `proptest-regressions/` as replay seeds.

use proptest::prelude::*;
use symclust_check::lexer::{lex, string_literals, strip, Token, TokenKind};

/// Marker planted inside fragments; must survive `strip` only when it sits
/// in ordinary code.
const MARK: &str = "ZZMARKZZ";

/// One generated source fragment: its text, the island kind it must lex as
/// (`None` for plain code), and the literal `string_literals` must report
/// for it (`None` if it must report nothing).
#[derive(Debug, Clone)]
struct Frag {
    text: String,
    kind: Option<TokenKind>,
    lit: Option<String>,
}

/// Escape-capable string-interior pieces: `(source text, extracted form)`.
/// Extraction keeps the escaped char and drops the backslash.
const STR_PIECES: &[(&str, &str)] = &[
    ("a", "a"),
    ("é", "é"),
    (" ", " "),
    (MARK, MARK),
    ("\\\"", "\""),
    ("\\\\", "\\"),
    ("\\n", "n"),
];

/// Builds one fragment from drawn randomness. `sel` weights the fragment
/// families (the vendored proptest stub has no `prop_oneof`, so selection
/// is explicit); `aux`/`b1`/`b2`/`b3` parameterize within a family and
/// `pieces` indexes into [`STR_PIECES`] for string interiors.
fn build_frag(sel: usize, aux: usize, b1: bool, b2: bool, b3: bool, pieces: &[usize]) -> Frag {
    match sel {
        // Plain code. Every entry ends in a non-identifier byte so a
        // following `b"…"`/`r"…"` fragment keeps its prefix, and none
        // contains a quote or comment opener.
        0..=2 => {
            let pool = [
                "let x = 1; ".to_string(),
                format!("let {MARK}_code = 2; "),
                "fn f(a: u8) -> u8 { a + 1 } ".to_string(),
                "x.y::<T>(q) % 3 ; ".to_string(),
            ];
            let text = if b1 {
                "\n    ".to_string()
            } else {
                pool[aux % pool.len()].clone()
            };
            Frag {
                text,
                kind: None,
                lit: None,
            }
        }
        // `"…"` / `b"…"` string literals with escapes.
        3 | 4 => {
            let interior: String = pieces.iter().map(|&i| STR_PIECES[i].0).collect();
            let lit: String = pieces.iter().map(|&i| STR_PIECES[i].1).collect();
            let prefix = if b1 { "b" } else { "" };
            Frag {
                text: format!("{prefix}\"{interior}\""),
                kind: Some(TokenKind::Str),
                // Byte strings are still `Str` tokens and extracted alike.
                lit: Some(lit),
            }
        }
        // Raw strings, hash depth 0–2. Quotes are only planted at
        // depth >= 1 (at depth 0 they would close the literal), and a
        // trailing safe char keeps an interior quote off the closer.
        5 | 6 => {
            let hashes = aux % 3;
            let mut interior = String::from(MARK);
            if b2 && hashes >= 1 {
                interior.push_str(" \"inner\" ");
            }
            if b3 {
                interior.push('\n');
            }
            interior.push('z');
            let h = "#".repeat(hashes);
            let prefix = if b1 { "br" } else { "r" };
            Frag {
                text: format!("{prefix}{h}\"{interior}\"{h}"),
                kind: Some(TokenKind::RawStr),
                // Raw strings must never surface in `string_literals`.
                lit: None,
            }
        }
        // `// …` comments. The trailing newline is part of the fragment
        // but not of the comment token (it stays in the code stream).
        7 => {
            let pool = [
                format!("// {MARK} plain\n"),
                format!("/// {MARK} \"doc\" with 'quotes'\n"),
                format!("//! {MARK} inner\n"),
            ];
            Frag {
                text: pool[aux % pool.len()].clone(),
                kind: Some(TokenKind::LineComment),
                lit: None,
            }
        }
        // Nested `/* … */` comments, depth 1–3, optionally multi-line.
        8 => {
            let depth = 1 + aux % 3;
            let mut text = String::new();
            for _ in 0..depth {
                text.push_str("/* ");
            }
            text.push_str(MARK);
            text.push_str(" \"not a string\" ");
            if b1 {
                text.push('\n');
            }
            for _ in 0..depth {
                text.push_str(" */");
            }
            Frag {
                text,
                kind: Some(TokenKind::BlockComment),
                lit: None,
            }
        }
        // Char literals, escapes and multi-byte chars included.
        9 => {
            let pool = [
                "'x'",
                "'é'",
                "'\\n'",
                "'\\''",
                "'\\\\'",
                "'\\u{1F600}'",
                "'\"'",
                "b'q'",
            ];
            Frag {
                text: pool[(aux + 4 * usize::from(b1)) % pool.len()].to_string(),
                kind: Some(TokenKind::Char),
                lit: None,
            }
        }
        // Lifetimes / loop labels; the space ends the identifier scan.
        _ => {
            let pool = ["'a ", "'static ", "'_ "];
            Frag {
                text: pool[aux % pool.len()].to_string(),
                kind: Some(TokenKind::Lifetime),
                lit: None,
            }
        }
    }
}

/// A soup of fragments whose concatenation is valid enough to lex with a
/// known expected token structure.
fn soup() -> impl Strategy<Value = Vec<Frag>> {
    proptest::collection::vec(
        (
            0usize..11,
            0usize..4,
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            proptest::collection::vec(0usize..STR_PIECES.len(), 0..6),
        )
            .prop_map(|(sel, aux, b1, b2, b3, pieces)| build_frag(sel, aux, b1, b2, b3, &pieces)),
        0..12,
    )
}

/// Arbitrary delimiter-heavy text: every property that must hold on *any*
/// input (totality, concat, geometry) is also exercised on this, where
/// tokens routinely end up unterminated.
fn hostile_text() -> impl Strategy<Value = String> {
    const ALPHABET: &[char] = &['"', '\'', '\\', '/', '*', '#', 'r', 'b', '\n', 'a', 'é'];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..48)
        .prop_map(|v| v.into_iter().map(|i| ALPHABET[i]).collect())
}

fn join(frags: &[Frag]) -> String {
    frags.iter().map(|f| f.text.as_str()).collect()
}

fn assert_concat_and_lines(src: &str) {
    let tokens: Vec<Token> = lex(src);
    let rejoined: String = tokens.iter().map(|t| t.text).collect();
    assert_eq!(
        rejoined, src,
        "token concatenation must reproduce the input"
    );
    let mut pos = 0usize;
    for t in &tokens {
        let expected = 1 + src[..pos].matches('\n').count();
        assert_eq!(t.line, expected, "line number drifted at byte {pos}");
        pos += t.text.len();
    }
}

fn newline_positions(s: &str) -> Vec<usize> {
    s.chars()
        .enumerate()
        .filter(|(_, c)| *c == '\n')
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #[test]
    fn lex_concat_reproduces_input(frags in soup()) {
        assert_concat_and_lines(&join(&frags));
    }

    #[test]
    fn lex_is_total_on_hostile_text(src in hostile_text()) {
        assert_concat_and_lines(&src);
    }

    #[test]
    fn island_kinds_classify_in_order(frags in soup()) {
        let src = join(&frags);
        let expected: Vec<TokenKind> = frags.iter().filter_map(|f| f.kind).collect();
        let got: Vec<TokenKind> = lex(&src)
            .iter()
            .filter(|t| t.kind != TokenKind::Code)
            .map(|t| t.kind)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn strip_preserves_char_count_and_newline_positions(frags in soup()) {
        let src = join(&frags);
        let out = strip(&src);
        prop_assert_eq!(out.chars().count(), src.chars().count());
        prop_assert_eq!(newline_positions(&out), newline_positions(&src));
        prop_assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_preserves_geometry_on_hostile_text(src in hostile_text()) {
        let out = strip(&src);
        prop_assert_eq!(out.chars().count(), src.chars().count());
        prop_assert_eq!(newline_positions(&out), newline_positions(&src));
    }

    #[test]
    fn strip_blanks_exactly_the_non_code_islands(frags in soup()) {
        let src = join(&frags);
        let out = strip(&src);
        let in_code = frags
            .iter()
            .filter(|f| f.kind.is_none() && f.text.contains(MARK))
            .count();
        prop_assert_eq!(out.matches(MARK).count(), in_code);
    }

    #[test]
    fn string_literal_extraction_matches_planted(frags in soup()) {
        let src = join(&frags);
        let expected: Vec<String> = frags.iter().filter_map(|f| f.lit.clone()).collect();
        let got: Vec<String> = string_literals(&src).into_iter().map(|(_, l)| l).collect();
        prop_assert_eq!(got, expected);
    }
}

// ------------------------------------------------------- pinned edge cases

#[test]
fn nested_block_comment_is_one_token() {
    let src = "a(); /* one /* two /* three */ */ */ b();";
    let kinds: Vec<TokenKind> = lex(src).iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds,
        vec![TokenKind::Code, TokenKind::BlockComment, TokenKind::Code]
    );
    let out = strip(src);
    assert!(out.contains("a();") && out.contains("b();"));
    assert!(!out.contains("two"));
}

#[test]
fn raw_string_swallows_quotes_and_comment_openers() {
    let src = r##"let s = r#"with "quotes" and // not a comment"#; t();"##;
    let toks = lex(src);
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::RawStr && t.text.contains("not a comment")));
    assert!(strip(src).contains("t();"));
    assert!(
        string_literals(src).is_empty(),
        "raw strings are not extracted"
    );
}

#[test]
fn char_holding_a_quote_does_not_open_a_string() {
    let src = "let c = '\"'; let s = \"x\";";
    let lits = string_literals(src);
    assert_eq!(lits, vec![(1, "x".to_string())]);
}

#[test]
fn identifier_prefix_suppresses_raw_and_byte_interpretation() {
    // The `r` in `integer` and the `b` in `grab` are identifier tails, so
    // the following quotes open plain strings.
    let src = "integer\"s\" grab\"bag\"";
    let kinds: Vec<TokenKind> = lex(src)
        .iter()
        .filter(|t| t.kind != TokenKind::Code)
        .map(|t| t.kind)
        .collect();
    assert_eq!(kinds, vec![TokenKind::Str, TokenKind::Str]);
}

#[test]
fn adjacent_single_quotes_stay_code() {
    let src = "let v = vec![]; v.windows('' as usize);";
    assert!(lex(src).iter().all(|t| t.kind != TokenKind::Char));
}

#[test]
fn unterminated_tokens_run_to_end_of_input_and_keep_geometry() {
    for src in [
        "/* open\nnever closed",
        "\"open\nstring",
        "r#\"open raw",
        "'\\",
    ] {
        let out = strip(src);
        assert_eq!(out.chars().count(), src.chars().count(), "{src:?}");
        assert_eq!(out.lines().count(), src.lines().count(), "{src:?}");
        let rejoined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(rejoined, src);
    }
}

#[test]
fn line_count_is_preserved_on_a_realistic_file() {
    let src = include_str!("../src/lexer.rs");
    let out = strip(src);
    assert_eq!(out.lines().count(), src.lines().count());
    assert_eq!(newline_positions(&out), newline_positions(src));
}

//! Criterion benchmarks for the four symmetrization methods (§3), plus the
//! sample-based threshold-selection step (§5.3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symclust_core::{
    Bibliometric, BibliometricOptions, DegreeDiscounted, DegreeDiscountedOptions, PlusTranspose,
    RandomWalk, Symmetrizer,
};
use symclust_datasets::cora_like_scaled;
use symclust_graph::DiGraph;

fn graph(n: usize) -> DiGraph {
    cora_like_scaled(n).graph
}

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("symmetrize");
    group.sample_size(10);
    let g = graph(2100);
    group.bench_function("plus_transpose", |b| {
        b.iter(|| PlusTranspose.symmetrize(&g).unwrap())
    });
    group.bench_function("random_walk", |b| {
        b.iter(|| RandomWalk::default().symmetrize(&g).unwrap())
    });
    group.bench_function("bibliometric", |b| {
        b.iter(|| Bibliometric::default().symmetrize(&g).unwrap())
    });
    group.bench_function("degree_discounted", |b| {
        b.iter(|| DegreeDiscounted::default().symmetrize(&g).unwrap())
    });
    group.bench_function("degree_discounted_parallel", |b| {
        let algo = DegreeDiscounted {
            options: DegreeDiscountedOptions {
                n_threads: 0,
                ..Default::default()
            },
        };
        b.iter(|| algo.symmetrize(&g).unwrap())
    });
    group.bench_function("bibliometric_parallel", |b| {
        let algo = Bibliometric {
            options: BibliometricOptions {
                n_threads: 0,
                ..Default::default()
            },
        };
        b.iter(|| algo.symmetrize(&g).unwrap())
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("degree_discounted_scaling");
    group.sample_size(10);
    for n in [1000usize, 2000, 4000] {
        let g = graph(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| DegreeDiscounted::default().symmetrize(&g).unwrap())
        });
    }
    group.finish();
}

fn bench_threshold_selection(c: &mut Criterion) {
    let g = graph(2100);
    c.bench_function("select_threshold_120_samples", |b| {
        b.iter(|| {
            symclust_core::select_threshold(&g, &DegreeDiscountedOptions::default(), 60.0, 120, 7)
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_methods,
    bench_scaling,
    bench_threshold_selection
);
criterion_main!(benches);

//! Criterion micro-benchmarks for the SpGEMM kernel — the cost center of
//! the Bibliometric and Degree-discounted symmetrizations (§3.6).
//!
//! Covers: serial Gustavson, the crossbeam-parallel variant, and the
//! effect of on-the-fly thresholding on hub-heavy graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};
use symclust_sparse::{ops, spgemm, spgemm_parallel, spgemm_thresholded, CsrMatrix, SpgemmOptions};

fn test_matrix(n: usize) -> CsrMatrix {
    shared_link_dsbm(&SharedLinkDsbmConfig {
        n_nodes: n,
        n_clusters: (n / 60).max(4),
        n_hubs: (n / 400).max(2),
        seed: 1,
        ..Default::default()
    })
    .expect("generator succeeds")
    .graph
    .into_adjacency()
}

fn bench_spgemm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_aat");
    group.sample_size(10);
    for n in [1000usize, 2000, 4000] {
        let a = test_matrix(n);
        let at = ops::transpose(&a);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| spgemm(&a, &at).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            let opts = SpgemmOptions::default();
            b.iter(|| spgemm_parallel(&a, &at, &opts).unwrap())
        });
    }
    group.finish();
}

fn bench_thresholding(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_threshold");
    group.sample_size(10);
    let a = test_matrix(3000);
    let at = ops::transpose(&a);
    for threshold in [0.0f64, 2.0, 5.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| {
                let opts = SpgemmOptions {
                    threshold: t,
                    drop_diagonal: true,
                    ..Default::default()
                };
                b.iter(|| spgemm_thresholded(&a, &at, &opts).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let a = test_matrix(4000);
    c.bench_function("transpose_4000", |b| b.iter(|| ops::transpose(&a)));
}

criterion_group!(
    benches,
    bench_spgemm_scaling,
    bench_thresholding,
    bench_transpose
);
criterion_main!(benches);

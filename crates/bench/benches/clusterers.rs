//! Criterion benchmarks for the stage-2 clustering algorithms on a
//! Degree-discounted-symmetrized citation graph (Figure 6b / Figure 8's
//! timing comparisons in micro form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symclust_cluster::{
    BestWCut, BestWCutOptions, ClusterAlgorithm, GraclusLike, MetisLike, MlrMcl, SpectralClustering,
};
use symclust_core::{DegreeDiscounted, SymmetrizedGraph, Symmetrizer};
use symclust_datasets::cora_like_scaled;

fn symmetrized(n: usize) -> (symclust_graph::DiGraph, SymmetrizedGraph) {
    let d = cora_like_scaled(n);
    let sym = DegreeDiscounted::default()
        .symmetrize(&d.graph)
        .expect("symmetrize");
    (d.graph, sym)
}

fn bench_clusterers(c: &mut Criterion) {
    let mut group = c.benchmark_group("clusterers_cora1500_k70");
    group.sample_size(10);
    let (digraph, sym) = symmetrized(1500);
    group.bench_function("mlrmcl", |b| {
        b.iter(|| MlrMcl::with_inflation(2.0).cluster(&sym).unwrap())
    });
    group.bench_function("metis", |b| {
        b.iter(|| MetisLike::with_k(70).cluster(&sym).unwrap())
    });
    group.bench_function("graclus", |b| {
        b.iter(|| GraclusLike::with_k(70).cluster(&sym).unwrap())
    });
    group.bench_function("spectral", |b| {
        b.iter(|| SpectralClustering::with_k(70).cluster(&sym).unwrap())
    });
    group.bench_function("bestwcut_directed", |b| {
        let mut opts = BestWCutOptions {
            k: 70,
            ..Default::default()
        };
        opts.lanczos.max_subspace = 110;
        let algo = BestWCut { options: opts };
        b.iter(|| algo.cluster_digraph(&digraph).unwrap())
    });
    group.finish();
}

fn bench_metis_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("metis_scaling_k70");
    group.sample_size(10);
    for n in [1000usize, 2000, 4000] {
        let (_, sym) = symmetrized(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| MetisLike::with_k(70).cluster(&sym).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clusterers, bench_metis_scaling);
criterion_main!(benches);

//! The bench regression gate: turns a pipeline `--metrics-out` JSON into
//! the stable `BENCH_pipeline.json` schema and compares two such files.
//!
//! The schema (DESIGN.md §11) is a flat JSON object holding exactly the
//! metrics that are *deterministic* for a fixed input graph and spec —
//! SpGEMM work counters, prune edge flow, cache hit/miss counts, R-MCL
//! iteration totals — plus `wall_secs`, the only timing-dependent value.
//! The gate fails on any mismatch of a deterministic counter (an nnz
//! change means the kernels changed behaviour, not speed) and on a
//! wall-clock regression beyond a relative tolerance. Scheduling-dependent
//! metrics (in-flight dedups, queue depth, span timings) are deliberately
//! excluded: they vary run to run on a healthy build.

use std::collections::HashMap;
use symclust_engine::json::{parse_object, JsonObject, JsonValue};

/// Flat-metric keys copied verbatim (minus the `counter.` prefix) into
/// `BENCH_pipeline.json` and exact-matched by [`compare`]. Append-only:
/// removing or renaming an entry breaks every checked-in baseline.
pub const EXACT_KEYS: &[&str] = &[
    "counter.spgemm.calls",
    "counter.spgemm.rows",
    "counter.spgemm.flops",
    "counter.spgemm.nnz_intermediate",
    "counter.spgemm.nnz_final",
    "counter.spgemm.threshold_dropped",
    "counter.spgemm.degraded_fallbacks",
    "counter.prune.edges_in",
    "counter.prune.edges_out",
    "counter.engine.cache_hits",
    "counter.engine.cache_misses",
    "counter.mcl.runs",
    "counter.mcl.iterations",
    "counter.spgemm.syrk_calls",
    "counter.spgemm.syrk_mirrored_nnz",
    "counter.store.hits",
    "counter.store.misses",
    "counter.store.quarantined",
    "counter.store.stats_persist_errors",
    "gauge.store.degraded",
    "counter.spgemm.rows_dense",
    "counter.spgemm.rows_sparse",
    "counter.spgemm.panels",
    "counter.spgemm.panel_spills",
    "counter.spgemm.spill_bytes",
];
// NOT gated: `counter.spgemm.sched_steals` — the work-stealing scheduler's
// steal count depends on thread count and machine load, so it is exactly
// the kind of scheduling-dependent metric the module docs exclude.
// The three panel counters ARE gated: the spill plan is a pure function of
// the input matrices, panel size and byte budget (DESIGN.md §17), never of
// thread count or scheduling, so their values are exact for a fixed config
// (all zero while the default in-memory path is in use).
// The two store health metrics above ARE deterministic on a healthy run:
// both must be exactly zero unless the disk itself misbehaved, which is
// precisely what the gate should catch.

/// Wall-clock slack floor in seconds: below this, a "25% regression" is
/// scheduler noise, not a finding. The gate allows
/// `baseline · (1 + tolerance)` or `baseline + WALL_SLACK_FLOOR_SECS`,
/// whichever is larger.
pub const WALL_SLACK_FLOOR_SECS: f64 = 0.5;

/// Extracts the BENCH schema from a parsed `--metrics-out` object:
/// every [`EXACT_KEYS`] entry present (prefix stripped) plus `wall_secs`.
pub fn emit_bench_json(metrics: &HashMap<String, JsonValue>) -> Result<String, String> {
    let mut obj = JsonObject::new();
    obj.string("bench", "pipeline");
    let wall = metrics
        .get("wall_secs")
        .and_then(JsonValue::as_f64)
        .ok_or("metrics JSON has no numeric wall_secs key")?;
    obj.number("wall_secs", wall);
    let mut found = 0;
    for key in EXACT_KEYS {
        if let Some(v) = metrics.get(*key).and_then(JsonValue::as_f64) {
            let stable = key.strip_prefix("counter.").unwrap_or(key);
            obj.number(stable, v);
            found += 1;
        }
    }
    if found == 0 {
        return Err("metrics JSON contains none of the gated counters — \
                    was it produced by `symclust pipeline --metrics-out`?"
            .into());
    }
    Ok(obj.finish())
}

/// Compares a current BENCH file against a baseline. Returns the list of
/// violations (empty = gate passes):
///
/// * every non-`wall_secs` numeric key in the baseline must be present in
///   the current file with the *exact* same value;
/// * `wall_secs` may grow to `baseline · (1 + wall_tolerance)` or
///   `baseline + `[`WALL_SLACK_FLOOR_SECS`], whichever is larger;
/// * every numeric key in the current file must also exist in the
///   baseline. A key the current build emits that the baseline lacks
///   means [`EXACT_KEYS`] grew without the baseline being refreshed in
///   the same commit — reported by name so the fix is obvious, instead
///   of surfacing later as an opaque whole-file mismatch.
pub fn compare(
    baseline: &HashMap<String, JsonValue>,
    current: &HashMap<String, JsonValue>,
    wall_tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let mut keys: Vec<&String> = baseline.keys().collect();
    keys.sort();
    for key in keys {
        let Some(base) = baseline[key].as_f64() else {
            continue; // e.g. the "bench" tag string
        };
        let Some(cur) = current.get(key).and_then(JsonValue::as_f64) else {
            violations.push(format!("{key}: missing from current run (baseline {base})"));
            continue;
        };
        if key == "wall_secs" {
            let allowed = (base * (1.0 + wall_tolerance)).max(base + WALL_SLACK_FLOOR_SECS);
            if cur > allowed {
                violations.push(format!(
                    "wall_secs: {cur:.3}s exceeds allowed {allowed:.3}s \
                     (baseline {base:.3}s, tolerance {:.0}%)",
                    wall_tolerance * 100.0
                ));
            }
        } else if cur != base {
            violations.push(format!("{key}: {cur} != baseline {base}"));
        }
    }
    let mut cur_keys: Vec<&String> = current.keys().collect();
    cur_keys.sort();
    for key in cur_keys {
        if current[key].as_f64().is_some() && !baseline.contains_key(key) {
            violations.push(format!(
                "{key}: present in current run but not in the baseline — \
                 a new gated counter needs bench_results/baseline.json \
                 refreshed in the same commit"
            ));
        }
    }
    violations
}

/// Reads and flat-parses a BENCH/metrics JSON file.
pub fn read_flat_json(path: &str) -> Result<HashMap<String, JsonValue>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_object(&text).map_err(|e| format!("parsing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> HashMap<String, JsonValue> {
        let mut obj = JsonObject::new();
        for (k, v) in pairs {
            obj.number(k, *v);
        }
        parse_object(&obj.finish()).unwrap()
    }

    fn sample_metrics() -> HashMap<String, JsonValue> {
        metrics(&[
            ("counter.spgemm.flops", 1234.0),
            ("counter.spgemm.nnz_final", 500.0),
            ("counter.engine.cache_misses", 4.0),
            ("counter.engine.inflight_dedups", 3.0), // excluded from BENCH
            ("gauge.engine.queue_depth_hwm", 7.0),   // excluded from BENCH
            ("span.stage.cluster.total_secs", 0.2),  // excluded from BENCH
            ("wall_secs", 2.0),
        ])
    }

    #[test]
    fn emit_keeps_only_stable_keys() {
        let bench = emit_bench_json(&sample_metrics()).unwrap();
        let parsed = parse_object(&bench).unwrap();
        assert_eq!(parsed["bench"].as_str(), Some("pipeline"));
        assert_eq!(parsed["spgemm.flops"].as_f64(), Some(1234.0));
        assert_eq!(parsed["engine.cache_misses"].as_f64(), Some(4.0));
        assert_eq!(parsed["wall_secs"].as_f64(), Some(2.0));
        assert!(!parsed.contains_key("engine.inflight_dedups"));
        assert!(!parsed.contains_key("gauge.engine.queue_depth_hwm"));
        assert!(!bench.contains("span."));
    }

    #[test]
    fn emit_rejects_non_metrics_input() {
        assert!(emit_bench_json(&metrics(&[("unrelated", 1.0)])).is_err());
        // wall_secs alone is not enough: no gated counter present.
        assert!(emit_bench_json(&metrics(&[("wall_secs", 1.0)])).is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let b = parse_object(&emit_bench_json(&sample_metrics()).unwrap()).unwrap();
        assert!(compare(&b, &b, 0.25).is_empty());
    }

    #[test]
    fn nnz_mismatch_fails_exactly() {
        let base = parse_object(&emit_bench_json(&sample_metrics()).unwrap()).unwrap();
        let mut m = sample_metrics();
        m.insert("counter.spgemm.nnz_final".into(), JsonValue::Num(501.0));
        let cur = parse_object(&emit_bench_json(&m).unwrap()).unwrap();
        let violations = compare(&base, &cur, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("spgemm.nnz_final"), "{violations:?}");
    }

    #[test]
    fn wall_time_honours_tolerance_and_slack_floor() {
        let base = parse_object(&emit_bench_json(&sample_metrics()).unwrap()).unwrap();
        // 2.0s baseline, 25% tolerance → 2.5s allowed; floor is lower here.
        let mut m = sample_metrics();
        m.insert("wall_secs".into(), JsonValue::Num(2.49));
        let cur = parse_object(&emit_bench_json(&m).unwrap()).unwrap();
        assert!(compare(&base, &cur, 0.25).is_empty());
        m.insert("wall_secs".into(), JsonValue::Num(2.51));
        let cur = parse_object(&emit_bench_json(&m).unwrap()).unwrap();
        assert_eq!(compare(&base, &cur, 0.25).len(), 1);
        // Tiny baselines get the absolute slack floor instead: a 0.01s run
        // may take up to 0.51s before the gate complains.
        let mut tiny = sample_metrics();
        tiny.insert("wall_secs".into(), JsonValue::Num(0.01));
        let tiny_base = parse_object(&emit_bench_json(&tiny).unwrap()).unwrap();
        tiny.insert("wall_secs".into(), JsonValue::Num(0.4));
        let tiny_cur = parse_object(&emit_bench_json(&tiny).unwrap()).unwrap();
        assert!(compare(&tiny_base, &tiny_cur, 0.25).is_empty());
    }

    #[test]
    fn missing_baseline_key_fails() {
        let base = parse_object(&emit_bench_json(&sample_metrics()).unwrap()).unwrap();
        let mut m = sample_metrics();
        m.remove("counter.engine.cache_misses");
        let cur = parse_object(&emit_bench_json(&m).unwrap()).unwrap();
        let violations = compare(&base, &cur, 0.25);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("missing"), "{violations:?}");
    }

    #[test]
    fn extra_current_key_fails_by_name() {
        let mut small = sample_metrics();
        small.remove("counter.spgemm.nnz_final");
        let base = parse_object(&emit_bench_json(&small).unwrap()).unwrap();
        let cur = parse_object(&emit_bench_json(&sample_metrics()).unwrap()).unwrap();
        let violations = compare(&base, &cur, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("spgemm.nnz_final")
                && violations[0].contains("not in the baseline"),
            "drift must be reported by key name: {violations:?}"
        );
    }
}

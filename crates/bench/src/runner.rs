//! Shared experiment-harness machinery: symmetrization method registry,
//! clustering sweeps, result records and table formatting.

use serde::Serialize;
use std::time::Instant;
use symclust_cluster::{ClusterAlgorithm, Clustering, GraclusLike, MetisLike, MlrMcl};
use symclust_core::{
    Bibliometric, BibliometricOptions, DegreeDiscounted, DegreeDiscountedOptions, DiscountExponent,
    PlusTranspose, RandomWalk, SymmetrizedGraph, Symmetrizer,
};
use symclust_eval::avg_f_score;
use symclust_graph::{DiGraph, GroundTruth};

/// The four symmetrization methods compared throughout the paper, with the
/// thresholds that make the similarity methods tractable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SymMethod {
    /// `U = A + Aᵀ` (§3.1).
    PlusTranspose,
    /// `U = (ΠP + PᵀΠ)/2` (§3.2).
    RandomWalk,
    /// `U = AAᵀ + AᵀA`, pruned at `threshold` (§3.3).
    Bibliometric {
        /// Prune threshold (Table 2 column).
        threshold: f64,
    },
    /// Eq. 8 with discount exponents and threshold (§3.4).
    DegreeDiscounted {
        /// Out-degree exponent α.
        alpha: f64,
        /// In-degree exponent β.
        beta: f64,
        /// Prune threshold.
        threshold: f64,
    },
}

impl SymMethod {
    /// The paper's four-method lineup with the given similarity thresholds.
    pub fn lineup(bib_threshold: f64, dd_threshold: f64) -> Vec<SymMethod> {
        vec![
            SymMethod::DegreeDiscounted {
                alpha: 0.5,
                beta: 0.5,
                threshold: dd_threshold,
            },
            SymMethod::Bibliometric {
                threshold: bib_threshold,
            },
            SymMethod::PlusTranspose,
            SymMethod::RandomWalk,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            SymMethod::PlusTranspose => "A+A'".into(),
            SymMethod::RandomWalk => "Random Walk".into(),
            SymMethod::Bibliometric { .. } => "Bibliometric".into(),
            SymMethod::DegreeDiscounted { .. } => "Degree-discounted".into(),
        }
    }

    /// Runs the symmetrization.
    pub fn symmetrize(&self, g: &DiGraph) -> SymmetrizedGraph {
        match *self {
            SymMethod::PlusTranspose => PlusTranspose.symmetrize(g),
            SymMethod::RandomWalk => RandomWalk::default().symmetrize(g),
            SymMethod::Bibliometric { threshold } => Bibliometric {
                options: BibliometricOptions {
                    threshold,
                    ..Default::default()
                },
            }
            .symmetrize(g),
            SymMethod::DegreeDiscounted {
                alpha,
                beta,
                threshold,
            } => DegreeDiscounted {
                options: DegreeDiscountedOptions {
                    alpha: DiscountExponent::Power(alpha),
                    beta: DiscountExponent::Power(beta),
                    threshold,
                    ..Default::default()
                },
            }
            .symmetrize(g),
        }
        .expect("symmetrization cannot fail on a valid graph")
    }
}

/// Selects prune thresholds for Bibliometric and Degree-discounted on a
/// graph so both symmetrized graphs land near `target_avg_degree`
/// (the paper's §5.3.1 recipe; Table 2 chooses thresholds per dataset).
/// Returns `(bib_threshold, dd_threshold)`.
pub fn select_thresholds(g: &DiGraph, target_avg_degree: f64) -> (f64, f64) {
    let sample = 120.min(g.n_nodes());
    let dd = symclust_core::select_threshold(
        g,
        &DegreeDiscountedOptions::default(),
        target_avg_degree,
        sample,
        0xBEEF,
    )
    .expect("threshold selection succeeds")
    .threshold;
    // Bibliometric = Degree-discounted with α = β = 0 (plus the +I step).
    let bib_opts = DegreeDiscountedOptions {
        alpha: DiscountExponent::Power(0.0),
        beta: DiscountExponent::Power(0.0),
        add_identity: true,
        ..Default::default()
    };
    let bib = symclust_core::select_threshold(g, &bib_opts, target_avg_degree, sample, 0xBEEF)
        .expect("threshold selection succeeds")
        .threshold;
    (bib, dd)
}

/// One measured clustering run; serialized as JSON lines for downstream
/// plotting and recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Dataset name.
    pub dataset: String,
    /// Symmetrization method name.
    pub symmetrization: String,
    /// Clustering algorithm name.
    pub algorithm: String,
    /// Number of clusters produced.
    pub n_clusters: usize,
    /// Micro-averaged F-score (percentage), when ground truth exists.
    pub f_score: Option<f64>,
    /// Clustering wall time in seconds (excludes symmetrization).
    pub cluster_secs: f64,
    /// Symmetrization wall time in seconds.
    pub symmetrize_secs: f64,
    /// Undirected edges in the symmetrized graph.
    pub sym_edges: usize,
}

/// The stage-2 clusterers used in the sweeps.
#[derive(Debug, Clone, Copy)]
pub enum Clusterer {
    /// MLR-MCL at a given inflation (cluster count is implicit).
    MlrMcl {
        /// Inflation parameter.
        inflation: f64,
    },
    /// Metis-like at a given k.
    Metis {
        /// Number of parts.
        k: usize,
    },
    /// Graclus-like at a given k.
    Graclus {
        /// Number of clusters.
        k: usize,
    },
}

impl Clusterer {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Clusterer::MlrMcl { .. } => "MLR-MCL",
            Clusterer::Metis { .. } => "Metis",
            Clusterer::Graclus { .. } => "Graclus",
        }
    }

    /// Runs the clusterer on a symmetrized graph.
    pub fn run(&self, sym: &SymmetrizedGraph) -> Clustering {
        match *self {
            Clusterer::MlrMcl { inflation } => MlrMcl::with_inflation(inflation)
                .cluster(sym)
                .expect("MLR-MCL succeeds"),
            Clusterer::Metis { k } => MetisLike::with_k(k).cluster(sym).expect("Metis succeeds"),
            Clusterer::Graclus { k } => GraclusLike::with_k(k)
                .cluster(sym)
                .expect("Graclus succeeds"),
        }
    }
}

/// Runs `clusterer` on `sym` and packages the measurement.
pub fn measure(
    dataset: &str,
    sym_method: &SymMethod,
    sym: &SymmetrizedGraph,
    clusterer: Clusterer,
    truth: Option<&GroundTruth>,
) -> RunRecord {
    let start = Instant::now();
    let clustering = clusterer.run(sym);
    let cluster_secs = start.elapsed().as_secs_f64();
    let f_score = truth.map(|t| avg_f_score(clustering.assignments(), t).avg_f);
    RunRecord {
        dataset: dataset.to_string(),
        symmetrization: sym_method.name(),
        algorithm: clusterer.name().to_string(),
        n_clusters: clustering.n_clusters(),
        f_score,
        cluster_secs,
        symmetrize_secs: sym.elapsed().as_secs_f64(),
        sym_edges: sym.n_edges(),
    }
}

/// Prints records as an aligned table with the given title.
pub fn print_records(title: &str, records: &[RunRecord]) {
    println!("\n== {title} ==");
    println!(
        "{:<18} {:<18} {:<9} {:>6} {:>8} {:>10} {:>10}",
        "dataset", "symmetrization", "algo", "k", "F", "time(s)", "edges"
    );
    for r in records {
        println!(
            "{:<18} {:<18} {:<9} {:>6} {:>8} {:>10.3} {:>10}",
            r.dataset,
            r.symmetrization,
            r.algorithm,
            r.n_clusters,
            r.f_score.map_or("-".to_string(), |f| format!("{f:.2}")),
            r.cluster_secs,
            r.sym_edges,
        );
    }
}

/// Appends records as JSON lines to `bench_results/<name>.jsonl`.
pub fn save_records(name: &str, records: &[RunRecord]) {
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.jsonl"));
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("record serializes"));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};

    fn small() -> symclust_graph::generators::GeneratedGraph {
        shared_link_dsbm(&SharedLinkDsbmConfig {
            n_nodes: 300,
            n_clusters: 10,
            seed: 5,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn lineup_has_four_methods() {
        let lineup = SymMethod::lineup(5.0, 0.01);
        assert_eq!(lineup.len(), 4);
        let names: Vec<String> = lineup.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"Degree-discounted".to_string()));
        assert!(names.contains(&"A+A'".to_string()));
    }

    #[test]
    fn measure_produces_sane_record() {
        let g = small();
        let method = SymMethod::PlusTranspose;
        let sym = method.symmetrize(&g.graph);
        let rec = measure(
            "t",
            &method,
            &sym,
            Clusterer::Metis { k: 10 },
            Some(&g.truth),
        );
        assert_eq!(rec.n_clusters, 10);
        assert!(rec.f_score.unwrap() > 0.0);
        assert!(rec.cluster_secs >= 0.0);
        assert_eq!(rec.sym_edges, sym.n_edges());
    }

    #[test]
    fn threshold_selection_returns_positive_for_similarity_methods() {
        let g = small();
        let (bib, dd) = select_thresholds(&g.graph, 30.0);
        assert!(bib > 0.0);
        assert!(dd > 0.0);
    }

    #[test]
    fn all_methods_symmetrize_successfully() {
        let g = small();
        for method in SymMethod::lineup(1.0, 0.001) {
            let sym = method.symmetrize(&g.graph);
            assert!(sym.n_edges() > 0, "{} produced empty graph", method.name());
            assert!(sym.adjacency().is_symmetric(1e-9));
        }
    }

    #[test]
    fn clusterer_names() {
        assert_eq!(Clusterer::MlrMcl { inflation: 2.0 }.name(), "MLR-MCL");
        assert_eq!(Clusterer::Metis { k: 3 }.name(), "Metis");
        assert_eq!(Clusterer::Graclus { k: 3 }.name(), "Graclus");
    }
}

//! Shared experiment-harness machinery.
//!
//! The method registry ([`SymMethod`], [`Clusterer`]), run records, and
//! sweep helpers now live in `symclust-engine` so the bench harness, the
//! CLI, and the pipeline executor share one definition. This module
//! re-exports them under the historical `symclust_bench::runner` paths
//! used by the experiment binaries.

pub use symclust_engine::{
    measure, print_records, save_records, select_thresholds, Clusterer, RunRecord, SymMethod,
};

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};

    // The full registry behaviour is tested in symclust-engine; this is a
    // smoke test that the re-exported surface still works end to end from
    // the bench crate.
    #[test]
    fn reexported_registry_round_trips() {
        let g = shared_link_dsbm(&SharedLinkDsbmConfig {
            n_nodes: 200,
            n_clusters: 5,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let lineup = SymMethod::lineup(1.0, 0.001);
        assert_eq!(lineup.len(), 4);
        let method = SymMethod::PlusTranspose;
        let sym = method.symmetrize(&g.graph);
        let rec = measure(
            "t",
            &method,
            &sym,
            Clusterer::Metis { k: 5 },
            Some(&g.truth),
        );
        assert_eq!(rec.n_clusters, 5);
        assert!(rec.f_score.unwrap() > 0.0);
        assert!(!rec.to_json().is_empty());
        let (bib, dd) = select_thresholds(&g.graph, 30.0);
        assert!(bib > 0.0 && dd > 0.0);
    }
}

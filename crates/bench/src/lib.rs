//! # symclust-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (see `DESIGN.md` for the per-experiment index and `EXPERIMENTS.md` for
//! recorded outputs). The entry point is the `experiments` binary:
//!
//! ```text
//! cargo run -p symclust-bench --release --bin experiments -- <experiment>
//! ```
//!
//! where `<experiment>` is one of `table1`, `table2`, `fig4`, `fig5`,
//! `fig6`, `fig7`, `fig8`, `fig9`, `table3`, `table4`, `table5`,
//! `signtest`, `casestudy`, or `all`.
//!
//! Criterion micro-benchmarks for the individual kernels (SpGEMM, each
//! symmetrization, each clusterer) live in `benches/`.

//! The `bench_gate` binary turns a `symclust pipeline --metrics-out` JSON
//! into the stable `BENCH_pipeline.json` schema and compares two such
//! files for CI regression gating (see [`gate`]).

pub mod gate;
pub mod runner;

pub use runner::{RunRecord, SymMethod};

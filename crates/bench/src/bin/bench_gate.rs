//! Bench regression gate CLI.
//!
//! ```text
//! bench_gate emit       <metrics.json>  <BENCH_pipeline.json>
//! bench_gate check      <baseline.json> <current.json> [wall-tolerance]
//! bench_gate syrk-check <graph.txt>
//! ```
//!
//! `emit` converts a `symclust pipeline --metrics-out` file into the
//! stable BENCH schema; `check` compares two BENCH files and exits
//! non-zero on any deterministic-counter mismatch or a wall-clock
//! regression beyond the tolerance (default 0.25 = 25%). `syrk-check`
//! runs the Bibliometric product `AAᵀ + AᵀA` on a bundled edge list
//! through both the general kernel and the fused symmetric (SYRK)
//! kernel and fails unless the SYRK flop count is strictly below the
//! general one while the outputs stay bit-identical — the CI lock on
//! the symmetric kernel's speedup.

use symclust_bench::gate;
use symclust_obs::MetricsRegistry;
use symclust_sparse::spgemm::metric_names;
use symclust_sparse::{ops, spgemm_observed, spgemm_syrk_sum_observed, SpgemmOptions, SyrkTerm};

fn main() {
    std::process::exit(match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            1
        }
    });
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => {
            let [_, metrics_path, out_path] = args.as_slice() else {
                return Err("usage: bench_gate emit <metrics.json> <out.json>".into());
            };
            let metrics = gate::read_flat_json(metrics_path)?;
            let bench = gate::emit_bench_json(&metrics)?;
            std::fs::write(out_path, &bench).map_err(|e| format!("writing {out_path}: {e}"))?;
            println!("wrote {out_path}");
            Ok(())
        }
        Some("check") => {
            let (baseline_path, current_path, tolerance) = match args.as_slice() {
                [_, b, c] => (b, c, 0.25),
                [_, b, c, t] => (
                    b,
                    c,
                    t.parse::<f64>()
                        .map_err(|_| format!("invalid tolerance '{t}'"))?,
                ),
                _ => {
                    return Err(
                        "usage: bench_gate check <baseline.json> <current.json> [tolerance]".into(),
                    )
                }
            };
            let baseline = gate::read_flat_json(baseline_path)?;
            let current = gate::read_flat_json(current_path)?;
            let violations = gate::compare(&baseline, &current, tolerance);
            if violations.is_empty() {
                println!(
                    "bench gate OK: {current_path} matches {baseline_path} \
                     (wall tolerance {:.0}%)",
                    tolerance * 100.0
                );
                Ok(())
            } else {
                for v in &violations {
                    eprintln!("bench gate FAIL: {v}");
                }
                Err(format!("{} violation(s)", violations.len()))
            }
        }
        Some("syrk-check") => {
            let [_, graph_path] = args.as_slice() else {
                return Err("usage: bench_gate syrk-check <graph.txt>".into());
            };
            syrk_check(graph_path)
        }
        _ => Err("usage: bench_gate emit|check|syrk-check ... (see --help in source)".into()),
    }
}

/// Computes `AAᵀ + AᵀA` (with the Bibliometric `+I` step) both ways and
/// asserts the SYRK path does strictly less multiply-add work for the
/// identical output.
fn syrk_check(graph_path: &str) -> Result<(), String> {
    let g = symclust_graph::io::read_edge_list_file(graph_path)
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let a = ops::add_diagonal(g.adjacency(), 1.0).map_err(|e| e.to_string())?;
    let at = ops::transpose(&a);
    let opts = SpgemmOptions {
        drop_diagonal: true,
        n_threads: 1,
        ..Default::default()
    };

    let general_metrics = MetricsRegistry::new();
    let coupling =
        spgemm_observed(&a, &at, &opts, None, Some(&general_metrics)).map_err(|e| e.to_string())?;
    let cocitation =
        spgemm_observed(&at, &a, &opts, None, Some(&general_metrics)).map_err(|e| e.to_string())?;
    let general = ops::add(&coupling, &cocitation).map_err(|e| e.to_string())?;

    let syrk_metrics = MetricsRegistry::new();
    let fused = spgemm_syrk_sum_observed(
        &[SyrkTerm { x: &a, xt: &at }, SyrkTerm { x: &at, xt: &a }],
        &opts,
        None,
        Some(&syrk_metrics),
    )
    .map_err(|e| e.to_string())?;

    if general != fused {
        return Err("SYRK output differs from the general kernel's".into());
    }
    let gflops = general_metrics
        .snapshot()
        .counter(metric_names::FLOPS)
        .unwrap_or(0);
    let sflops = syrk_metrics
        .snapshot()
        .counter(metric_names::FLOPS)
        .unwrap_or(0);
    if sflops >= gflops {
        return Err(format!(
            "SYRK flops {sflops} not strictly below general-kernel flops {gflops}"
        ));
    }
    println!(
        "syrk gate OK: {graph_path}: flops {sflops} vs general {gflops} \
         ({:.1}% saved), output identical ({} nnz)",
        100.0 * (gflops - sflops) as f64 / gflops as f64,
        fused.nnz()
    );
    Ok(())
}

//! Bench regression gate CLI.
//!
//! ```text
//! bench_gate emit  <metrics.json>  <BENCH_pipeline.json>
//! bench_gate check <baseline.json> <current.json> [wall-tolerance]
//! ```
//!
//! `emit` converts a `symclust pipeline --metrics-out` file into the
//! stable BENCH schema; `check` compares two BENCH files and exits
//! non-zero on any deterministic-counter mismatch or a wall-clock
//! regression beyond the tolerance (default 0.25 = 25%).

use symclust_bench::gate;

fn main() {
    std::process::exit(match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            1
        }
    });
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => {
            let [_, metrics_path, out_path] = args.as_slice() else {
                return Err("usage: bench_gate emit <metrics.json> <out.json>".into());
            };
            let metrics = gate::read_flat_json(metrics_path)?;
            let bench = gate::emit_bench_json(&metrics)?;
            std::fs::write(out_path, &bench).map_err(|e| format!("writing {out_path}: {e}"))?;
            println!("wrote {out_path}");
            Ok(())
        }
        Some("check") => {
            let (baseline_path, current_path, tolerance) = match args.as_slice() {
                [_, b, c] => (b, c, 0.25),
                [_, b, c, t] => (
                    b,
                    c,
                    t.parse::<f64>()
                        .map_err(|_| format!("invalid tolerance '{t}'"))?,
                ),
                _ => {
                    return Err(
                        "usage: bench_gate check <baseline.json> <current.json> [tolerance]".into(),
                    )
                }
            };
            let baseline = gate::read_flat_json(baseline_path)?;
            let current = gate::read_flat_json(current_path)?;
            let violations = gate::compare(&baseline, &current, tolerance);
            if violations.is_empty() {
                println!(
                    "bench gate OK: {current_path} matches {baseline_path} \
                     (wall tolerance {:.0}%)",
                    tolerance * 100.0
                );
                Ok(())
            } else {
                for v in &violations {
                    eprintln!("bench gate FAIL: {v}");
                }
                Err(format!("{} violation(s)", violations.len()))
            }
        }
        _ => Err("usage: bench_gate emit|check ... (see --help in source)".into()),
    }
}

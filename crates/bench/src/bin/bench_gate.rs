//! Bench regression gate CLI.
//!
//! ```text
//! bench_gate emit        <metrics.json>  <BENCH_pipeline.json>
//! bench_gate check       <baseline.json> <current.json> [wall-tolerance]
//! bench_gate syrk-check  <graph.txt>
//! bench_gate serve-check <graph.txt>
//! bench_gate accum-check <graph.txt>
//! bench_gate panel-check <graph.txt>
//! bench_gate oom-check
//! bench_gate trajectory  <BENCH_pipeline.json> <trajectory.jsonl> [commit]
//! ```
//!
//! `emit` converts a `symclust pipeline --metrics-out` file into the
//! stable BENCH schema; `check` compares two BENCH files and exits
//! non-zero on any deterministic-counter mismatch or a wall-clock
//! regression beyond the tolerance (default 0.25 = 25%). `syrk-check`
//! runs the Bibliometric product `AAᵀ + AᵀA` on a bundled edge list
//! through both the general kernel and the fused symmetric (SYRK)
//! kernel and fails unless the SYRK flop count is strictly below the
//! general one while the outputs stay bit-identical — the CI lock on
//! the symmetric kernel's speedup. `serve-check` is the same kind of
//! lock for the artifact store: a cold Bibliometric symmetrization is
//! published to a scratch disk store, then replayed through a fresh
//! in-memory tier (a simulated daemon restart); the replay must be
//! served from disk, run zero SpGEMM calls, return the bit-identical
//! matrix, and finish strictly faster than the cold compute.
//! `accum-check` is the lock on the adaptive accumulators: the same
//! Bibliometric product under forced-sparse accumulation and under the
//! adaptive strategy must be byte-identical, the adaptive pass must
//! actually pick the dense path for some rows, and its best-of-3 wall
//! time must be strictly below forced-sparse's. `panel-check` is the
//! lock on the out-of-core panel path (DESIGN.md §17): the Bibliometric
//! product under a forced tiny panel size and a 1-byte spill budget —
//! multiple tiles, at least one spilled to scratch files — must be
//! byte-identical to the in-memory product with identical deterministic
//! work counters, serially and in parallel, while the in-memory path
//! reports zero panels and zero spills. `oom-check` drives the full
//! symmetrize→cluster pipeline over a *streamed* DSBM edge list at
//! least 4× larger than the spill byte budget it is given, and fails
//! unless the run finishes without failures, actually spills, and
//! recovers the planted clusters (F-score floor). `trajectory` appends
//! one `{commit, wall_ms, spgemm.flops, rows_dense, rows_sparse}` JSON
//! line from a BENCH file to the checked-in perf history.

use symclust_bench::gate;
use symclust_obs::MetricsRegistry;
use symclust_sparse::spgemm::metric_names;
use symclust_sparse::{
    ops, spgemm_observed, spgemm_syrk_sum_observed, AccumStrategy, PanelPlan, SpgemmOptions,
    SyrkTerm,
};

fn main() {
    std::process::exit(match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            1
        }
    });
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("emit") => {
            let [_, metrics_path, out_path] = args.as_slice() else {
                return Err("usage: bench_gate emit <metrics.json> <out.json>".into());
            };
            let metrics = gate::read_flat_json(metrics_path)?;
            let bench = gate::emit_bench_json(&metrics)?;
            std::fs::write(out_path, &bench).map_err(|e| format!("writing {out_path}: {e}"))?;
            println!("wrote {out_path}");
            Ok(())
        }
        Some("check") => {
            let (baseline_path, current_path, tolerance) = match args.as_slice() {
                [_, b, c] => (b, c, 0.25),
                [_, b, c, t] => (
                    b,
                    c,
                    t.parse::<f64>()
                        .map_err(|_| format!("invalid tolerance '{t}'"))?,
                ),
                _ => {
                    return Err(
                        "usage: bench_gate check <baseline.json> <current.json> [tolerance]".into(),
                    )
                }
            };
            let baseline = gate::read_flat_json(baseline_path)?;
            let current = gate::read_flat_json(current_path)?;
            let violations = gate::compare(&baseline, &current, tolerance);
            if violations.is_empty() {
                println!(
                    "bench gate OK: {current_path} matches {baseline_path} \
                     (wall tolerance {:.0}%)",
                    tolerance * 100.0
                );
                Ok(())
            } else {
                for v in &violations {
                    eprintln!("bench gate FAIL: {v}");
                }
                Err(format!("{} violation(s)", violations.len()))
            }
        }
        Some("syrk-check") => {
            let [_, graph_path] = args.as_slice() else {
                return Err("usage: bench_gate syrk-check <graph.txt>".into());
            };
            syrk_check(graph_path)
        }
        Some("serve-check") => {
            let [_, graph_path] = args.as_slice() else {
                return Err("usage: bench_gate serve-check <graph.txt>".into());
            };
            serve_check(graph_path)
        }
        Some("accum-check") => {
            let [_, graph_path] = args.as_slice() else {
                return Err("usage: bench_gate accum-check <graph.txt>".into());
            };
            accum_check(graph_path)
        }
        Some("panel-check") => {
            let [_, graph_path] = args.as_slice() else {
                return Err("usage: bench_gate panel-check <graph.txt>".into());
            };
            panel_check(graph_path)
        }
        Some("oom-check") => {
            if args.len() != 1 {
                return Err("usage: bench_gate oom-check".into());
            }
            oom_check()
        }
        Some("trajectory") => {
            let (bench_path, out_path, commit) = match args.as_slice() {
                [_, b, o] => (b, o, "unknown"),
                [_, b, o, c] => (b, o, c.as_str()),
                _ => {
                    return Err(
                        "usage: bench_gate trajectory <BENCH.json> <trajectory.jsonl> [commit]"
                            .into(),
                    )
                }
            };
            trajectory_append(bench_path, out_path, commit)
        }
        _ => Err(
            "usage: bench_gate emit|check|syrk-check|serve-check|accum-check|panel-check\
             |oom-check|trajectory ... (see --help in source)"
                .into(),
        ),
    }
}

/// Runs the fused Bibliometric SYRK product under forced-sparse and
/// adaptive accumulation and fails unless the outputs are byte-identical,
/// the adaptive pass exercises both strategies' bookkeeping (all rows
/// accounted for, at least one dense), and adaptive's best-of-3 wall time
/// is strictly below forced-sparse's.
fn accum_check(graph_path: &str) -> Result<(), String> {
    use std::time::{Duration, Instant};

    let g = symclust_graph::io::read_edge_list_file(graph_path)
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let a = ops::add_diagonal(g.adjacency(), 1.0).map_err(|e| e.to_string())?;
    let at = ops::transpose(&a);
    let terms = [SyrkTerm { x: &a, xt: &at }, SyrkTerm { x: &at, xt: &a }];
    let run = |accum: AccumStrategy| -> Result<_, String> {
        let opts = SpgemmOptions {
            drop_diagonal: true,
            n_threads: 1,
            accum,
            ..Default::default()
        };
        let mut best: Option<Duration> = None;
        let mut result = None;
        let metrics = MetricsRegistry::new();
        for i in 0..3 {
            let m = if i == 0 { Some(&metrics) } else { None };
            let t0 = Instant::now();
            let c = spgemm_syrk_sum_observed(&terms, &opts, None, m).map_err(|e| e.to_string())?;
            let wall = t0.elapsed();
            best = Some(best.map_or(wall, |b| b.min(wall)));
            result = Some(c);
        }
        let snap = metrics.snapshot();
        Ok((
            result.expect("loop ran"),
            best.expect("loop ran"),
            snap.counter(metric_names::ROWS_DENSE).unwrap_or(0),
            snap.counter(metric_names::ROWS_SPARSE).unwrap_or(0),
            snap.counter(metric_names::ROWS).unwrap_or(0),
        ))
    };

    let (sparse, sparse_wall, s_dense, s_sparse, s_rows) = run(AccumStrategy::Sparse)?;
    let (adaptive, adaptive_wall, a_dense, a_sparse, a_rows) = run(AccumStrategy::Adaptive)?;
    if sparse != adaptive {
        return Err("adaptive output differs from forced-sparse accumulation".into());
    }
    if s_dense != 0 || s_sparse != s_rows {
        return Err(format!(
            "forced-sparse pass miscounted strategies: rows_dense {s_dense}, \
             rows_sparse {s_sparse}, rows {s_rows}"
        ));
    }
    if a_dense + a_sparse != a_rows {
        return Err(format!(
            "adaptive pass lost rows: rows_dense {a_dense} + rows_sparse {a_sparse} != rows {a_rows}"
        ));
    }
    if a_dense == 0 {
        return Err("adaptive pass never chose the dense accumulator on this graph".into());
    }
    if adaptive_wall >= sparse_wall {
        return Err(format!(
            "adaptive took {:.3}ms, not strictly below forced-sparse's {:.3}ms",
            adaptive_wall.as_secs_f64() * 1e3,
            sparse_wall.as_secs_f64() * 1e3
        ));
    }
    println!(
        "accum gate OK: {graph_path}: adaptive {:.3}ms vs forced-sparse {:.3}ms \
         ({:.1}x faster), {a_dense} dense / {a_sparse} sparse rows, output identical ({} nnz)",
        adaptive_wall.as_secs_f64() * 1e3,
        sparse_wall.as_secs_f64() * 1e3,
        sparse_wall.as_secs_f64() / adaptive_wall.as_secs_f64().max(1e-9),
        adaptive.nnz()
    );
    Ok(())
}

/// Runs the fused Bibliometric SYRK product through the default in-memory
/// path and through a forced tiny-panel/1-byte-budget out-of-core
/// configuration (serial and parallel) and fails unless the spilled runs
/// execute multiple tiles with at least one spill, report identical
/// deterministic work counters, and return the byte-identical matrix,
/// while the in-memory run reports zero panel activity.
fn panel_check(graph_path: &str) -> Result<(), String> {
    let g = symclust_graph::io::read_edge_list_file(graph_path)
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let a = ops::add_diagonal(g.adjacency(), 1.0).map_err(|e| e.to_string())?;
    let at = ops::transpose(&a);
    let terms = [SyrkTerm { x: &a, xt: &at }, SyrkTerm { x: &at, xt: &a }];

    // Counters that must match exactly between the in-memory and panel
    // paths: the deterministic work measures, not the panel bookkeeping.
    const WORK_KEYS: &[&str] = &[
        metric_names::ROWS,
        metric_names::FLOPS,
        metric_names::NNZ_INTERMEDIATE,
        metric_names::NNZ_FINAL,
        metric_names::THRESHOLD_DROPPED,
        metric_names::ROWS_DENSE,
        metric_names::ROWS_SPARSE,
        metric_names::SYRK_MIRRORED_NNZ,
    ];

    let run = |panel: PanelPlan, n_threads: usize| -> Result<_, String> {
        let opts = SpgemmOptions {
            drop_diagonal: true,
            n_threads,
            panel,
            ..Default::default()
        };
        let metrics = MetricsRegistry::new();
        let c = spgemm_syrk_sum_observed(&terms, &opts, None, Some(&metrics))
            .map_err(|e| e.to_string())?;
        let snap = metrics.snapshot();
        let work: Vec<u64> = WORK_KEYS
            .iter()
            .map(|k| snap.counter(k).unwrap_or(0))
            .collect();
        Ok((
            c,
            work,
            snap.counter(metric_names::PANELS).unwrap_or(0),
            snap.counter(metric_names::PANEL_SPILLS).unwrap_or(0),
            snap.counter(metric_names::SPILL_BYTES).unwrap_or(0),
        ))
    };

    // Deliberately *not* from_env: the gate must compare a true in-memory
    // run against a forced out-of-core one regardless of the environment.
    let (mem, mem_work, mem_panels, mem_spills, mem_bytes) = run(PanelPlan::default(), 1)?;
    if mem_panels != 0 || mem_spills != 0 || mem_bytes != 0 {
        return Err(format!(
            "in-memory run reported panel activity: panels {mem_panels}, \
             spills {mem_spills}, spill bytes {mem_bytes}"
        ));
    }

    let forced = PanelPlan {
        panel_rows: Some((g.n_nodes() / 4).max(1)),
        budget_bytes: Some(1), // every tile past the first estimate spills
        spill_dir: None,
    };
    let (panel, panel_work, panels, spills, bytes) = run(forced.clone(), 1)?;
    if panels <= 1 {
        return Err(format!(
            "forced panel run executed {panels} tile(s), need > 1"
        ));
    }
    if spills == 0 || bytes == 0 {
        return Err(format!(
            "forced panel run never spilled (spills {spills}, bytes {bytes})"
        ));
    }
    if panel != mem {
        return Err("panel output differs from the in-memory product".into());
    }
    for (key, (m, p)) in WORK_KEYS.iter().zip(mem_work.iter().zip(&panel_work)) {
        if m != p {
            return Err(format!(
                "work counter {key} diverged: in-memory {m}, panel {p}"
            ));
        }
    }

    let (par, _par_work, par_panels, par_spills, par_bytes) = run(forced, 0)?;
    if par != mem {
        return Err("parallel panel output differs from the in-memory product".into());
    }
    if (par_panels, par_spills, par_bytes) != (panels, spills, bytes) {
        return Err(format!(
            "panel counters are scheduling-dependent: serial ({panels}, {spills}, {bytes}) \
             vs parallel ({par_panels}, {par_spills}, {par_bytes})"
        ));
    }

    println!(
        "panel gate OK: {graph_path}: {panels} tiles, {spills} spilled ({bytes} bytes), \
         output identical in-memory/serial-panel/parallel-panel ({} nnz)",
        mem.nnz()
    );
    Ok(())
}

/// Streams a planted-partition DSBM edge list to disk, then runs the full
/// symmetrize→cluster pipeline on it under a spill byte budget at most a
/// quarter of the file size. Fails unless the run completes without stage
/// failures, the SpGEMM actually spills, and the recovered clustering
/// scores at least [`OOM_F_SCORE_FLOOR`] against the planted truth.
const OOM_F_SCORE_FLOOR: f64 = 50.0;

fn oom_check() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("symclust_oom_gate_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let result = oom_check_in(&dir);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn oom_check_in(dir: &std::path::Path) -> Result<(), String> {
    use symclust_datasets::stream::{stream_dsbm_to_files, StreamDsbmConfig};
    use symclust_engine::{
        Clusterer, Engine, EngineOptions, PipelineInput, PipelineSpec, SymMethod,
    };

    let cfg = StreamDsbmConfig {
        n_nodes: 12_000,
        n_clusters: 24,
        intra_degree: 8,
        inter_degree: 2,
        seed: 20_110_325, // EDBT 2011
    };
    let edges_path = dir.join("oom.txt");
    let truth_path = dir.join("oom.truth.txt");
    stream_dsbm_to_files(&cfg, &edges_path, &truth_path)
        .map_err(|e| format!("streaming DSBM: {e}"))?;
    let file_bytes = std::fs::metadata(&edges_path)
        .map_err(|e| format!("stat {}: {e}", edges_path.display()))?
        .len();
    // The whole point: the input on disk is ≥ 4× the spill budget the
    // multiply gets for in-flight partial products.
    let budget_bytes = (file_bytes / 4) as usize;

    let graph = symclust_graph::io::read_edge_list_file(&edges_path)
        .map_err(|e| format!("loading streamed edge list: {e}"))?;
    let categories: Vec<Vec<u32>> = (0..cfg.n_clusters)
        .map(|c| {
            (0..cfg.n_nodes as u32)
                .filter(|&u| cfg.cluster_of(u as usize) == c as u32)
                .collect()
        })
        .collect();
    let truth = symclust_graph::GroundTruth::new(cfg.n_nodes, categories)
        .map_err(|e| format!("building truth: {e}"))?;

    let registry = MetricsRegistry::new();
    let opts = EngineOptions {
        spgemm_panel: Some(PanelPlan {
            panel_rows: Some(cfg.n_nodes / 8),
            budget_bytes: Some(budget_bytes),
            spill_dir: Some(dir.to_path_buf()),
        }),
        metrics: Some(registry.clone()),
        ..Default::default()
    };
    let spec = PipelineSpec {
        methods: vec![SymMethod::Bibliometric { threshold: 2.0 }],
        clusterers: vec![Clusterer::MlrMcl { inflation: 2.0 }],
        extra_prune: None,
    };
    let engine = Engine::new(opts);
    let input = PipelineInput::new("oom_dsbm", graph, Some(truth));
    let result = engine.run(&input, &spec, &|_| {});
    if !result.failures.is_empty() {
        return Err(format!(
            "pipeline failed under the spill budget: {:?}",
            result.failures
        ));
    }
    let snap = registry.snapshot();
    let spills = snap.counter(metric_names::PANEL_SPILLS).unwrap_or(0);
    let spill_bytes = snap.counter(metric_names::SPILL_BYTES).unwrap_or(0);
    if spills == 0 {
        return Err(format!(
            "multiply never spilled under a {budget_bytes}-byte budget \
             (input file is {file_bytes} bytes)"
        ));
    }
    let record = result
        .records
        .first()
        .ok_or("pipeline produced no records")?;
    let f = record
        .f_score
        .ok_or("record has no F-score despite ground truth")?;
    if f < OOM_F_SCORE_FLOOR {
        return Err(format!(
            "F-score {f:.1}% below the {OOM_F_SCORE_FLOOR}% floor — \
             out-of-core execution degraded clustering quality"
        ));
    }
    println!(
        "oom gate OK: {file_bytes}-byte streamed graph under a {budget_bytes}-byte spill \
         budget: {spills} tile(s) spilled ({spill_bytes} bytes), F-score {f:.1}%"
    );
    Ok(())
}

/// Appends one perf-history line from a BENCH file:
/// `{"commit":…,"wall_ms":…,"spgemm.flops":…,"spgemm.rows_dense":…,"spgemm.rows_sparse":…}`.
fn trajectory_append(bench_path: &str, out_path: &str, commit: &str) -> Result<(), String> {
    use std::io::Write;

    let bench = gate::read_flat_json(bench_path)?;
    let num = |key: &str| {
        bench
            .get(key)
            .and_then(symclust_engine::json::JsonValue::as_f64)
    };
    let wall = num("wall_secs").ok_or_else(|| format!("{bench_path} has no wall_secs"))?;
    let flops = num("spgemm.flops").ok_or_else(|| format!("{bench_path} has no spgemm.flops"))?;
    let rows_dense = num("spgemm.rows_dense").unwrap_or(0.0);
    let rows_sparse = num("spgemm.rows_sparse").unwrap_or(0.0);
    let commit_clean: String = commit
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    let line = format!(
        "{{\"commit\":\"{commit_clean}\",\"wall_ms\":{:.1},\"spgemm.flops\":{},\
         \"spgemm.rows_dense\":{},\"spgemm.rows_sparse\":{}}}\n",
        wall * 1e3,
        flops as u64,
        rows_dense as u64,
        rows_sparse as u64
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(out_path)
        .map_err(|e| format!("opening {out_path}: {e}"))?;
    f.write_all(line.as_bytes())
        .map_err(|e| format!("appending to {out_path}: {e}"))?;
    println!("trajectory: appended {} to {out_path}", line.trim_end());
    Ok(())
}

/// Computes `AAᵀ + AᵀA` (with the Bibliometric `+I` step) both ways and
/// asserts the SYRK path does strictly less multiply-add work for the
/// identical output.
fn syrk_check(graph_path: &str) -> Result<(), String> {
    let g = symclust_graph::io::read_edge_list_file(graph_path)
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let a = ops::add_diagonal(g.adjacency(), 1.0).map_err(|e| e.to_string())?;
    let at = ops::transpose(&a);
    let opts = SpgemmOptions {
        drop_diagonal: true,
        n_threads: 1,
        ..Default::default()
    };

    let general_metrics = MetricsRegistry::new();
    let coupling =
        spgemm_observed(&a, &at, &opts, None, Some(&general_metrics)).map_err(|e| e.to_string())?;
    let cocitation =
        spgemm_observed(&at, &a, &opts, None, Some(&general_metrics)).map_err(|e| e.to_string())?;
    let general = ops::add(&coupling, &cocitation).map_err(|e| e.to_string())?;

    let syrk_metrics = MetricsRegistry::new();
    let fused = spgemm_syrk_sum_observed(
        &[SyrkTerm { x: &a, xt: &at }, SyrkTerm { x: &at, xt: &a }],
        &opts,
        None,
        Some(&syrk_metrics),
    )
    .map_err(|e| e.to_string())?;

    if general != fused {
        return Err("SYRK output differs from the general kernel's".into());
    }
    let gflops = general_metrics
        .snapshot()
        .counter(metric_names::FLOPS)
        .unwrap_or(0);
    let sflops = syrk_metrics
        .snapshot()
        .counter(metric_names::FLOPS)
        .unwrap_or(0);
    if sflops >= gflops {
        return Err(format!(
            "SYRK flops {sflops} not strictly below general-kernel flops {gflops}"
        ));
    }
    println!(
        "syrk gate OK: {graph_path}: flops {sflops} vs general {gflops} \
         ({:.1}% saved), output identical ({} nnz)",
        100.0 * (gflops - sflops) as f64 / gflops as f64,
        fused.nnz()
    );
    Ok(())
}

/// Cold-computes a Bibliometric symmetrization into a scratch disk store,
/// then replays it through a fresh memory tier over the same store and
/// fails unless the replay is a disk hit that runs no SpGEMM, returns the
/// identical matrix, and is strictly faster than the cold compute.
fn serve_check(graph_path: &str) -> Result<(), String> {
    let g = symclust_graph::io::read_edge_list_file(graph_path)
        .map_err(|e| format!("reading {graph_path}: {e}"))?;
    let fp = symclust_engine::fingerprint::graph_fingerprint(&g);
    let method = symclust_engine::SymMethod::Bibliometric { threshold: 0.0 };
    let token = symclust_sparse::CancelToken::new();
    let dir = std::env::temp_dir().join(format!("symclust_serve_gate_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let result = serve_check_in(&g, fp, &method, &token, &dir, graph_path);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn serve_check_in(
    g: &symclust_graph::DiGraph,
    fp: u64,
    method: &symclust_engine::SymMethod,
    token: &symclust_sparse::CancelToken,
    dir: &std::path::Path,
    graph_path: &str,
) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::Instant;
    use symclust_store::{symmetrize_cached, DiskStore, StoreOptions, Tier, TieredCache};

    let store = Arc::new(DiskStore::open(dir, StoreOptions::default()).map_err(|e| e.to_string())?);
    let cache: TieredCache<symclust_sparse::CsrMatrix> = TieredCache::new(Arc::clone(&store));
    let cold_metrics = MetricsRegistry::new();
    let t0 = Instant::now();
    let (cold, cold_tier, key) =
        symmetrize_cached(&cache, g, fp, method, None, token, Some(&cold_metrics))
            .map_err(|e| e.to_string())?;
    let cold_wall = t0.elapsed();
    if cold_tier != Tier::Computed {
        return Err(format!(
            "cold pass served from tier '{}' — the scratch store was not empty",
            cold_tier.name()
        ));
    }
    let cold_calls = cold_metrics
        .snapshot()
        .counter(metric_names::CALLS)
        .unwrap_or(0);
    if cold_calls == 0 {
        return Err("cold Bibliometric pass ran zero SpGEMM calls".into());
    }

    // A fresh memory tier over the same directory is exactly what a
    // restarted daemon sees. Best-of-3 keeps scheduler noise out of the
    // strict latency comparison.
    let mut hit_wall = None;
    for _ in 0..3 {
        let restarted =
            Arc::new(DiskStore::open(dir, StoreOptions::default()).map_err(|e| e.to_string())?);
        let replay: TieredCache<symclust_sparse::CsrMatrix> = TieredCache::new(restarted);
        let hit_metrics = MetricsRegistry::new();
        let t1 = Instant::now();
        let (hit, hit_tier, hit_key) =
            symmetrize_cached(&replay, g, fp, method, None, token, Some(&hit_metrics))
                .map_err(|e| e.to_string())?;
        let wall = t1.elapsed();
        if hit_tier != Tier::Disk {
            return Err(format!(
                "replay served from tier '{}', expected a disk hit",
                hit_tier.name()
            ));
        }
        if hit_key != key {
            return Err(format!(
                "replay derived key {hit_key:016x}, cold pass derived {key:016x}"
            ));
        }
        if *hit != *cold {
            return Err("replayed matrix differs from the cold-computed one".into());
        }
        let hit_calls = hit_metrics
            .snapshot()
            .counter(metric_names::CALLS)
            .unwrap_or(0);
        if hit_calls != 0 {
            return Err(format!("replay ran {hit_calls} SpGEMM call(s), expected 0"));
        }
        hit_wall = Some(hit_wall.map_or(wall, |best: std::time::Duration| best.min(wall)));
    }
    let hit_wall = hit_wall.expect("loop ran");
    if hit_wall >= cold_wall {
        return Err(format!(
            "store hit took {:.3}ms, not strictly below the cold compute's {:.3}ms",
            hit_wall.as_secs_f64() * 1e3,
            cold_wall.as_secs_f64() * 1e3
        ));
    }
    println!(
        "serve gate OK: {graph_path}: disk hit {:.3}ms vs cold {:.3}ms \
         ({:.1}x faster), 0 SpGEMM calls on replay, matrix identical ({} nnz)",
        hit_wall.as_secs_f64() * 1e3,
        cold_wall.as_secs_f64() * 1e3,
        cold_wall.as_secs_f64() / hit_wall.as_secs_f64().max(1e-9),
        cold.nnz()
    );
    Ok(())
}

//! Regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! cargo run -p symclust-bench --release --bin experiments -- <which> [--scale S]
//! ```
//! `<which>` ∈ {table1, table2, fig4, fig5, fig6, fig7, fig8, fig9,
//! table3, table4, table5, signtest, casestudy, all}.
//!
//! `--scale` multiplies every dataset's node count (default 1.0) so the
//! suite can be run quickly at reduced scale or pushed harder.

use std::time::Instant;
use symclust_bench::runner::{
    measure, print_records, save_records, select_thresholds, Clusterer, RunRecord, SymMethod,
};
use symclust_cluster::{BestWCut, BestWCutOptions, ClusterAlgorithm, MetisLike, MlrMcl};
use symclust_core::{
    DegreeDiscounted, DegreeDiscountedOptions, DiscountExponent, PlusTranspose, Symmetrizer,
};
use symclust_datasets::{
    cora_like_scaled, flickr_like_scaled, livejournal_like_scaled, wikipedia_like_scaled, Dataset,
};
use symclust_engine::{Engine, EngineOptions, PipelineInput, PipelineSpec};
use symclust_eval::{avg_f_score, correctly_clustered, sign_test};
use symclust_graph::generators::{figure1_graph, guzmania_graph};
use symclust_graph::stats::{DegreeHistogram, GraphStats};
use symclust_sparse::ops::top_k_entries_upper;

struct Config {
    scale: f64,
}

impl Config {
    fn n(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(300)
    }
    fn cora(&self) -> Dataset {
        cora_like_scaled(self.n(2100))
    }
    fn wikipedia(&self) -> Dataset {
        wikipedia_like_scaled(self.n(9000))
    }
    fn flickr(&self) -> Dataset {
        flickr_like_scaled(self.n(15_000))
    }
    fn livejournal(&self) -> Dataset {
        livejournal_like_scaled(self.n(20_000))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" {
            scale = args
                .get(i + 1)
                .and_then(|s| s.parse().ok())
                .expect("--scale needs a number");
            i += 2;
        } else {
            which.push(args[i].clone());
            i += 1;
        }
    }
    if which.is_empty() {
        eprintln!(
            "usage: experiments <table1|table2|fig4|fig5|fig6|fig7|fig8|fig9|table3|table4|table5|signtest|casestudy|ablations|sweep|all> [--scale S]"
        );
        std::process::exit(2);
    }
    let cfg = Config { scale };
    for w in which {
        let t0 = Instant::now();
        match w.as_str() {
            "table1" => table1(&cfg),
            "table2" => table2(&cfg),
            "fig4" => fig4(&cfg),
            "fig5" => fig5(&cfg),
            "fig6" => fig6(&cfg),
            "fig7" | "fig8" => fig7_fig8(&cfg),
            "fig9" => fig9(&cfg),
            "table3" => table3(&cfg),
            "table4" => table4(&cfg),
            "table5" => table5(&cfg),
            "signtest" => signtest_exp(&cfg),
            "casestudy" => casestudy(),
            "ablations" => ablations(&cfg),
            "sweep" => sweep(&cfg),
            "all" => {
                table1(&cfg);
                table2(&cfg);
                fig4(&cfg);
                fig5(&cfg);
                fig6(&cfg);
                fig7_fig8(&cfg);
                fig9(&cfg);
                table3(&cfg);
                table4(&cfg);
                table5(&cfg);
                signtest_exp(&cfg);
                casestudy();
                ablations(&cfg);
                sweep(&cfg);
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
        eprintln!("[{w} done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
}

/// Table 1: dataset statistics (vertices, edges, % symmetric links,
/// ground-truth categories).
fn table1(cfg: &Config) {
    println!("\n== Table 1: dataset details ==");
    println!(
        "{:<18} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "dataset", "vertices", "edges", "%symmetric", "categories", "%unlabeled"
    );
    for d in [cfg.cora(), cfg.wikipedia(), cfg.flickr(), cfg.livejournal()] {
        let stats = GraphStats::of(&d.graph);
        let (cats, unl) = match &d.truth {
            Some(t) => (
                t.n_categories().to_string(),
                format!("{:.0}%", 100.0 * t.unlabeled_fraction()),
            ),
            None => ("N.A.".to_string(), "-".to_string()),
        };
        println!(
            "{:<18} {:>9} {:>10} {:>12.1} {:>12} {:>12}",
            d.name, stats.n_nodes, stats.n_edges, stats.percent_symmetric, cats, unl
        );
    }
}

/// Table 2: edges per symmetrization and the prune thresholds used.
fn table2(cfg: &Config) {
    println!("\n== Table 2: symmetrized edge counts and thresholds ==");
    println!(
        "{:<18} {:>12} {:>14} {:>9} {:>14} {:>9} {:>11}",
        "dataset", "A+A'/RW", "Bibliometric", "thresh", "Degree-disc", "thresh", "bib-singl"
    );
    for d in [cfg.cora(), cfg.wikipedia(), cfg.flickr(), cfg.livejournal()] {
        // Cora keeps everything (threshold 0, like the paper); the
        // power-law datasets need thresholds targeting avg degree ~60.
        let (bib_t, dd_t) = if d.name == "cora_like" {
            (0.0, 0.0)
        } else {
            select_thresholds(&d.graph, 60.0)
        };
        let pt = SymMethod::PlusTranspose.symmetrize(&d.graph);
        let bib = SymMethod::Bibliometric { threshold: bib_t }.symmetrize(&d.graph);
        let dd = SymMethod::DegreeDiscounted {
            alpha: 0.5,
            beta: 0.5,
            threshold: dd_t,
        }
        .symmetrize(&d.graph);
        println!(
            "{:<18} {:>12} {:>14} {:>9.1} {:>14} {:>9.4} {:>11}",
            d.name,
            pt.n_edges(),
            bib.n_edges(),
            bib_t,
            dd.n_edges(),
            dd_t,
            bib.n_singletons(),
        );
    }
}

/// Figure 4: log-binned degree distributions of the Wikipedia
/// symmetrizations.
fn fig4(cfg: &Config) {
    let d = cfg.wikipedia();
    let (bib_t, dd_t) = select_thresholds(&d.graph, 60.0);
    println!("\n== Figure 4: degree distributions of symmetrized wikipedia_like ==");
    println!("(bin lower bounds are powers of two; counts per bin)");
    for method in SymMethod::lineup(bib_t, dd_t) {
        let sym = method.symmetrize(&d.graph);
        let h = DegreeHistogram::of_ungraph(sym.graph());
        let degrees = sym.graph().degrees();
        let frac_mid = DegreeHistogram::fraction_in_range(&degrees, 50, 200);
        let max_deg = degrees.iter().copied().max().unwrap_or(0);
        print!(
            "{:<18} zero={:<6} max_deg={:<7} frac[50,200]={:.2}  bins:",
            method.name(),
            h.n_zero,
            max_deg,
            frac_mid
        );
        for (i, c) in h.bins.iter().enumerate() {
            print!(" {}:{}", DegreeHistogram::bin_lower(i), c);
        }
        println!();
    }
}

/// Runs a sweep through the pipeline engine: each symmetrization is
/// computed once and shared across every clusterer via the artifact
/// cache, chains execute on the worker pool, and the structured event
/// stream is serialized to `bench_results/<tag>.events.jsonl`.
fn run_sweep(tag: &str, input: PipelineInput, spec: &PipelineSpec) -> Vec<RunRecord> {
    let engine = Engine::new(EngineOptions::default());
    let events = std::sync::Mutex::new(String::new());
    let result = engine.run(&input, spec, &|e| {
        let mut buf = events.lock().unwrap();
        buf.push_str(&e.to_json());
        buf.push('\n');
    });
    for (label, err) in &result.failures {
        eprintln!("warning: stage `{label}` failed: {err}");
    }
    let dir = std::path::Path::new("bench_results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{tag}.events.jsonl"));
        if let Err(e) = std::fs::write(&path, events.into_inner().unwrap()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    eprintln!(
        "[{tag}] engine: {} records, cache {} hits / {} misses",
        result.records.len(),
        result.cache.hits,
        result.cache.misses
    );
    result.records
}

/// Figure 5: Avg-F vs number of clusters on Cora, for MLR-MCL (a) and
/// Graclus (b), across all four symmetrizations.
fn fig5(cfg: &Config) {
    let d = cfg.cora();
    let mut clusterers: Vec<Clusterer> = [1.4, 1.7, 2.0, 2.5, 3.0]
        .into_iter()
        .map(|inflation| Clusterer::MlrMcl { inflation })
        .collect();
    clusterers.extend(
        [20, 40, 70, 100, 140]
            .into_iter()
            .map(|k| Clusterer::Graclus { k }),
    );
    let spec = PipelineSpec {
        methods: SymMethod::lineup(0.0, 0.0),
        clusterers,
        extra_prune: None,
    };
    let input = PipelineInput::new(d.name.clone(), d.graph, d.truth);
    let records = run_sweep("fig5", input, &spec);
    print_records("Figure 5: Cora F-scores (MLR-MCL & Graclus)", &records);
    save_records("fig5", &records);
    summarize_best(&records);
}

/// Figure 6: Degree-discounted + {MLR-MCL, Graclus, Metis} vs BestWCut on
/// Cora — effectiveness (a) and clustering time (b).
fn fig6(cfg: &Config) {
    let d = cfg.cora();
    let truth = d.truth.as_ref().expect("cora has truth");
    let dd = SymMethod::DegreeDiscounted {
        alpha: 0.5,
        beta: 0.5,
        threshold: 0.0,
    };
    let sym = dd.symmetrize(&d.graph);
    let mut records: Vec<RunRecord> = Vec::new();
    for k in [20, 40, 70, 100, 140] {
        records.push(measure(
            &d.name,
            &dd,
            &sym,
            Clusterer::Metis { k },
            Some(truth),
        ));
        records.push(measure(
            &d.name,
            &dd,
            &sym,
            Clusterer::Graclus { k },
            Some(truth),
        ));
    }
    for inflation in [1.4, 2.0, 2.6] {
        records.push(measure(
            &d.name,
            &dd,
            &sym,
            Clusterer::MlrMcl { inflation },
            Some(truth),
        ));
    }
    // BestWCut runs on the directed graph directly.
    for k in [20, 40, 70, 100, 140] {
        let mut opts = BestWCutOptions {
            k,
            ..Default::default()
        };
        opts.lanczos.max_subspace = k + 40;
        let algo = BestWCut { options: opts };
        let start = Instant::now();
        let clustering = algo.cluster_digraph(&d.graph).expect("BestWCut succeeds");
        let secs = start.elapsed().as_secs_f64();
        let f = avg_f_score(clustering.assignments(), truth).avg_f;
        records.push(RunRecord {
            dataset: d.name.clone(),
            symmetrization: "(directed)".into(),
            algorithm: "BestWCut".into(),
            n_clusters: clustering.n_clusters(),
            f_score: Some(f),
            cluster_secs: secs,
            symmetrize_secs: 0.0,
            sym_edges: d.graph.n_edges(),
            degraded: false,
            converged: clustering.converged(),
        });
    }
    print_records("Figure 6: Degree-discounted vs BestWCut on Cora", &records);
    save_records("fig6", &records);
    summarize_best(&records);
    // Speed ratio summary (Figure 6b's log-scale message).
    let best_wcut_time: f64 = records
        .iter()
        .filter(|r| r.algorithm == "BestWCut")
        .map(|r| r.cluster_secs)
        .sum::<f64>()
        / 5.0;
    for algo in ["MLR-MCL", "Metis", "Graclus"] {
        let times: Vec<f64> = records
            .iter()
            .filter(|r| r.algorithm == algo)
            .map(|r| r.cluster_secs)
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "speedup of DD+{algo} over BestWCut: {:.0}x",
            best_wcut_time / mean
        );
    }
}

/// Figures 7 & 8: Avg-F and clustering time vs number of clusters on
/// Wikipedia, for MLR-MCL and Metis, across symmetrizations.
fn fig7_fig8(cfg: &Config) {
    let d = cfg.wikipedia();
    let truth = d.truth.as_ref().expect("wikipedia has truth");
    let (bib_t, dd_t) = select_thresholds(&d.graph, 60.0);
    let n_cats = truth.n_categories();
    let ks = [
        n_cats / 3,
        (2 * n_cats) / 3,
        n_cats,
        (3 * n_cats) / 2,
        2 * n_cats,
    ];
    let mut clusterers: Vec<Clusterer> = [1.4, 2.0, 2.6]
        .into_iter()
        .map(|inflation| Clusterer::MlrMcl { inflation })
        .collect();
    clusterers.extend(ks.into_iter().map(|k| Clusterer::Metis { k }));
    let spec = PipelineSpec {
        methods: SymMethod::lineup(bib_t, dd_t),
        clusterers,
        extra_prune: None,
    };
    let input = PipelineInput::new(d.name.clone(), d.graph, d.truth);
    let records = run_sweep("fig7_fig8", input, &spec);
    print_records(
        "Figures 7-8: Wikipedia F-scores and clustering times (MLR-MCL & Metis)",
        &records,
    );
    save_records("fig7_fig8", &records);
    summarize_best(&records);
    // Figure 8's message: DD clusters faster at high k.
    for algo in ["MLR-MCL", "Metis"] {
        let dd_time: f64 = mean_time(&records, algo, "Degree-discounted");
        let aat_time: f64 = mean_time(&records, algo, "A+A'");
        println!(
            "{algo}: mean clustering time Degree-discounted {dd_time:.2}s vs A+A' {aat_time:.2}s ({:.1}x faster)",
            aat_time / dd_time
        );
    }
}

fn mean_time(records: &[RunRecord], algo: &str, sym: &str) -> f64 {
    let times: Vec<f64> = records
        .iter()
        .filter(|r| r.algorithm == algo && r.symmetrization == sym)
        .map(|r| r.cluster_secs)
        .collect();
    times.iter().sum::<f64>() / times.len().max(1) as f64
}

/// Figure 9: clustering times on the Flickr and LiveJournal stand-ins
/// (A+A', Random Walk, Degree-discounted; Bibliometric is not viable at
/// this scale, as the paper found).
fn fig9(cfg: &Config) {
    let mut records: Vec<RunRecord> = Vec::new();
    for d in [cfg.flickr(), cfg.livejournal()] {
        let (_, dd_t) = select_thresholds(&d.graph, 60.0);
        let spec = PipelineSpec {
            methods: vec![
                SymMethod::DegreeDiscounted {
                    alpha: 0.5,
                    beta: 0.5,
                    threshold: dd_t,
                },
                SymMethod::PlusTranspose,
                SymMethod::RandomWalk,
            ],
            clusterers: [1.4, 2.0, 2.6]
                .into_iter()
                .map(|inflation| Clusterer::MlrMcl { inflation })
                .collect(),
            extra_prune: None,
        };
        let tag = format!("fig9_{}", d.name);
        // Timing-only datasets: truth withheld, records carry no F-score.
        let input = PipelineInput::new(d.name.clone(), d.graph, None);
        records.extend(run_sweep(&tag, input, &spec));
    }
    print_records("Figure 9: clustering times on Flickr/LiveJournal", &records);
    save_records("fig9", &records);
    for d in ["flickr_like", "livejournal_like"] {
        let dd = records
            .iter()
            .filter(|r| r.dataset == d && r.symmetrization == "Degree-discounted")
            .map(|r| r.cluster_secs)
            .sum::<f64>();
        let aat = records
            .iter()
            .filter(|r| r.dataset == d && r.symmetrization == "A+A'")
            .map(|r| r.cluster_secs)
            .sum::<f64>();
        println!(
            "{d}: DD total {dd:.2}s vs A+A' {aat:.2}s ({:.1}x faster)",
            aat / dd
        );
    }
}

/// Table 3: effect of the pruning threshold on Wikipedia (edges, F-score,
/// clustering time, for MLR-MCL and Metis).
fn table3(cfg: &Config) {
    let d = cfg.wikipedia();
    let truth = d.truth.as_ref().expect("wikipedia has truth");
    let n_cats = truth.n_categories();
    // Four thresholds bracketing the avg-degree-60 choice.
    let (_, t60) = select_thresholds(&d.graph, 60.0);
    let thresholds = [t60 * 0.5, t60, t60 * 1.5, t60 * 2.5];
    println!("\n== Table 3: effect of varying the pruning threshold (wikipedia_like) ==");
    println!(
        "{:<12} {:>10} | {:>8} {:>9} | {:>8} {:>9}",
        "threshold", "edges", "MCL F", "MCL t(s)", "Metis F", "Metis t(s)"
    );
    for t in thresholds {
        let method = SymMethod::DegreeDiscounted {
            alpha: 0.5,
            beta: 0.5,
            threshold: t,
        };
        let sym = method.symmetrize(&d.graph);
        let m1 = measure(
            &d.name,
            &method,
            &sym,
            Clusterer::MlrMcl { inflation: 2.0 },
            Some(truth),
        );
        let m2 = measure(
            &d.name,
            &method,
            &sym,
            Clusterer::Metis { k: n_cats },
            Some(truth),
        );
        println!(
            "{:<12.5} {:>10} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2}",
            t,
            sym.n_edges(),
            m1.f_score.unwrap(),
            m1.cluster_secs,
            m2.f_score.unwrap(),
            m2.cluster_secs
        );
    }
}

/// Table 4: effect of varying the discount exponents α and β (Metis,
/// k = true category count), on Cora and Wikipedia.
fn table4(cfg: &Config) {
    let cora = cfg.cora();
    let wiki = cfg.wikipedia();
    let configs: Vec<(DiscountExponent, DiscountExponent)> = vec![
        (DiscountExponent::Power(0.0), DiscountExponent::Power(0.0)),
        (DiscountExponent::Log, DiscountExponent::Log),
        (DiscountExponent::Power(0.25), DiscountExponent::Power(0.25)),
        (DiscountExponent::Power(0.5), DiscountExponent::Power(0.5)),
        (DiscountExponent::Power(0.75), DiscountExponent::Power(0.75)),
        (DiscountExponent::Power(1.0), DiscountExponent::Power(1.0)),
        (DiscountExponent::Power(0.25), DiscountExponent::Power(0.5)),
        (DiscountExponent::Power(0.25), DiscountExponent::Power(0.75)),
        (DiscountExponent::Power(0.5), DiscountExponent::Power(0.25)),
        (DiscountExponent::Power(0.5), DiscountExponent::Power(0.75)),
        (DiscountExponent::Power(0.75), DiscountExponent::Power(0.25)),
        (DiscountExponent::Power(0.75), DiscountExponent::Power(0.5)),
    ];
    println!("\n== Table 4: effect of varying alpha, beta (Metis) ==");
    println!(
        "{:<8} {:<8} {:>14} {:>14}",
        "alpha", "beta", "F on cora", "F on wiki"
    );
    let mut best = (String::new(), String::new(), f64::MIN);
    for (alpha, beta) in configs {
        let mut scores = Vec::new();
        for (d, target_deg) in [(&cora, 0.0), (&wiki, 60.0)] {
            let truth = d.truth.as_ref().unwrap();
            let opts = DegreeDiscountedOptions {
                alpha,
                beta,
                threshold: 0.0,
                ..Default::default()
            };
            let threshold = if target_deg > 0.0 {
                symclust_core::select_threshold(&d.graph, &opts, target_deg, 120, 0xBEEF)
                    .expect("threshold selection")
                    .threshold
            } else {
                0.0
            };
            let sym = DegreeDiscounted {
                options: DegreeDiscountedOptions { threshold, ..opts },
            }
            .symmetrize(&d.graph)
            .expect("symmetrize");
            let k = truth.n_categories();
            let c = MetisLike::with_k(k).cluster(&sym).expect("metis");
            scores.push(avg_f_score(c.assignments(), truth).avg_f);
        }
        println!(
            "{:<8} {:<8} {:>14.2} {:>14.2}",
            alpha.label(),
            beta.label(),
            scores[0],
            scores[1]
        );
        if scores[0] + scores[1] > best.2 {
            best = (alpha.label(), beta.label(), scores[0] + scores[1]);
        }
    }
    println!("best combined: alpha={} beta={}", best.0, best.1);
}

/// Table 5: the top-weighted edges per symmetrization on Wikipedia, with
/// endpoint degrees — showing that Bibliometric and Random-walk favor hub
/// pairs while Degree-discounted favors specific, low-degree pairs.
fn table5(cfg: &Config) {
    let d = cfg.wikipedia();
    let (bib_t, dd_t) = select_thresholds(&d.graph, 60.0);
    let in_deg = d.graph.in_degrees();
    let out_deg = d.graph.out_degrees();
    println!("\n== Table 5: top-weighted edges per symmetrization (wikipedia_like) ==");
    println!("(deg = total degree of each endpoint in the directed graph;");
    println!(" planted = planted cluster id, H = hub node)");
    for method in [
        SymMethod::RandomWalk,
        SymMethod::Bibliometric { threshold: bib_t },
        SymMethod::DegreeDiscounted {
            alpha: 0.5,
            beta: 0.5,
            threshold: dd_t,
        },
    ] {
        let sym = method.symmetrize(&d.graph);
        println!("--- {} ---", method.name());
        for (u, v, w) in top_k_entries_upper(sym.adjacency(), 5) {
            let label = |x: usize| {
                if d.planted[x] == u32::MAX {
                    format!("n{x}(H)")
                } else {
                    format!("n{x}(c{})", d.planted[x])
                }
            };
            println!(
                "  {:>12} -- {:<12} weight={:<12.4e} deg=({}, {})",
                label(u),
                label(v),
                w,
                in_deg[u] + out_deg[u],
                in_deg[v] + out_deg[v]
            );
        }
        // Hub-involvement summary over the top 100 edges.
        let top100 = top_k_entries_upper(sym.adjacency(), 100);
        let mean_deg: f64 = top100
            .iter()
            .map(|&(u, v, _)| (in_deg[u] + out_deg[u] + in_deg[v] + out_deg[v]) as f64 / 2.0)
            .sum::<f64>()
            / top100.len().max(1) as f64;
        println!("  mean endpoint degree over top-100 edges: {mean_deg:.0}");
    }
}

/// §5.6: paired binomial sign tests for the headline comparisons.
fn signtest_exp(cfg: &Config) {
    let d = cfg.cora();
    let truth = d.truth.as_ref().expect("cora has truth");
    let k = truth.n_categories();
    let dd_sym = SymMethod::DegreeDiscounted {
        alpha: 0.5,
        beta: 0.5,
        threshold: 0.0,
    }
    .symmetrize(&d.graph);
    let aat_sym = SymMethod::PlusTranspose.symmetrize(&d.graph);

    let dd_metis = MetisLike::with_k(k).cluster(&dd_sym).unwrap();
    let aat_metis = MetisLike::with_k(k).cluster(&aat_sym).unwrap();
    let dd_mcl = MlrMcl::with_inflation(2.0).cluster(&dd_sym).unwrap();
    let aat_mcl = MlrMcl::with_inflation(2.0).cluster(&aat_sym).unwrap();
    let mut bw_opts = BestWCutOptions {
        k,
        ..Default::default()
    };
    bw_opts.lanczos.max_subspace = k + 40;
    let bw = BestWCut { options: bw_opts }
        .cluster_digraph(&d.graph)
        .unwrap();

    println!("\n== Sign tests (cora_like, one-sided; log10 p-values) ==");
    let pairs = [
        ("DD+MLR-MCL vs A+A'+MLR-MCL", &dd_mcl, &aat_mcl),
        ("DD+Metis   vs A+A'+Metis", &dd_metis, &aat_metis),
        ("DD+MLR-MCL vs BestWCut", &dd_mcl, &bw),
        ("DD+Metis   vs BestWCut", &dd_metis, &bw),
    ];
    for (name, a, b) in pairs {
        let ca = correctly_clustered(a.assignments(), truth);
        let cb = correctly_clustered(b.assignments(), truth);
        let r = sign_test(&ca, &cb);
        println!(
            "{name:30} improved={:>5} degraded={:>5} log10(p)={:.1}",
            r.n_improved, r.n_degraded, r.log10_p
        );
    }
}

/// §2.1.1 / §5.7: the Figure-1 idealized graph and the Guzmania case study.
fn casestudy() {
    println!("\n== Case study: Figure 1 graph ==");
    let g = figure1_graph();
    for (name, sym) in [
        ("A+A'", SymMethod::PlusTranspose.symmetrize(&g)),
        (
            "Degree-discounted",
            SymMethod::DegreeDiscounted {
                alpha: 0.5,
                beta: 0.5,
                threshold: 0.0,
            }
            .symmetrize(&g),
        ),
    ] {
        let w = sym.adjacency().get(4, 5);
        println!("{name:<18}: weight(4,5) = {w:.4}");
    }
    let dd = DegreeDiscounted::default().symmetrize(&g).unwrap();
    let c = MlrMcl::default().cluster(&dd).unwrap();
    println!(
        "Degree-discounted + MLR-MCL puts 4 and 5 together: {}",
        c.same_cluster(4, 5)
    );
    let aat = PlusTranspose.symmetrize(&g).unwrap();
    let c2 = MlrMcl::default().cluster(&aat).unwrap();
    println!(
        "A+A' + MLR-MCL puts 4 and 5 together: {} (but only because it finds {} cluster(s) — it cannot isolate the pair)",
        c2.same_cluster(4, 5),
        c2.n_clusters()
    );

    println!("\n== Case study: Guzmania cluster (Figure 10) ==");
    let g = guzmania_graph(8);
    let dd = DegreeDiscounted::default().symmetrize(&g).unwrap();
    let c = MlrMcl::default().cluster(&dd).unwrap();
    let species_cluster = c.cluster_of(0);
    let together = (0..8).all(|s| c.cluster_of(s) == species_cluster);
    println!("all 8 Guzmania species share a cluster under DD+MLR-MCL: {together}");
    let members: Vec<String> = c.clusters()[species_cluster as usize]
        .iter()
        .map(|&m| g.label(m as usize))
        .collect();
    println!("that cluster: {members:?}");
}

/// Ablations of this reproduction's own design choices (beyond the paper):
/// the canonical-flow row cap in MLR-MCL, the `A := A + I` pre-step of
/// Bibliometric, multilevel vs. single-level MCL, recursive-bisection vs.
/// simultaneous region-growing initial partitions, and the Random-walk
/// teleport probability.
fn ablations(cfg: &Config) {
    use symclust_cluster::coarsen::CoarsenOptions;
    use symclust_cluster::metis_like::{
        edge_cut, kway_refine, recursive_bisection_partition, region_growing_partition,
    };
    use symclust_cluster::{MclOptions, MlrMclOptions};
    use symclust_core::BibliometricOptions;

    let cora = cfg.cora();
    let truth = cora.truth.as_ref().expect("cora has truth");
    let dd_sym = SymMethod::DegreeDiscounted {
        alpha: 0.5,
        beta: 0.5,
        threshold: 0.0,
    }
    .symmetrize(&cora.graph);

    println!("\n== Ablation 1: MLR-MCL canonical-flow row cap ==");
    println!("{:<10} {:>6} {:>8} {:>9}", "cap", "k", "F", "time(s)");
    for cap in [64usize, 256, 512, usize::MAX] {
        let mut options = MlrMclOptions::default();
        options.mcl.max_graph_row_nnz = if cap == usize::MAX { 0 } else { cap };
        let algo = MlrMcl { options };
        let start = Instant::now();
        let c = algo.cluster(&dd_sym).expect("mlr-mcl");
        let secs = start.elapsed().as_secs_f64();
        let f = avg_f_score(c.assignments(), truth).avg_f;
        let label = if cap == usize::MAX {
            "unbounded".to_string()
        } else {
            cap.to_string()
        };
        println!("{label:<10} {:>6} {:>8.2} {:>9.2}", c.n_clusters(), f, secs);
    }

    println!("\n== Ablation 2: Bibliometric A := A + I pre-step ==");
    for add_identity in [true, false] {
        let sym = symclust_core::Bibliometric {
            options: BibliometricOptions {
                add_identity,
                ..Default::default()
            },
        }
        .symmetrize(&cora.graph)
        .expect("bibliometric");
        let c = MetisLike::with_k(truth.n_categories())
            .cluster(&sym)
            .expect("metis");
        let f = avg_f_score(c.assignments(), truth).avg_f;
        println!(
            "add_identity={add_identity:<5} edges={:>8} F={f:.2}",
            sym.n_edges()
        );
    }

    println!("\n== Ablation 3: multilevel vs single-level R-MCL ==");
    for (label, target) in [("multilevel", 500usize), ("single-level", usize::MAX)] {
        let options = MlrMclOptions {
            coarsen: CoarsenOptions {
                target_nodes: if target == usize::MAX {
                    usize::MAX / 2
                } else {
                    target
                },
                ..Default::default()
            },
            mcl: MclOptions::default(),
            ..Default::default()
        };
        let algo = MlrMcl { options };
        let start = Instant::now();
        let c = algo.cluster(&dd_sym).expect("mlr-mcl");
        let secs = start.elapsed().as_secs_f64();
        let f = avg_f_score(c.assignments(), truth).avg_f;
        println!(
            "{label:<14} k={:>4} F={f:.2} time={secs:.2}s",
            c.n_clusters()
        );
    }

    println!("\n== Ablation 4: initial-partition strategy (edge cut after refinement) ==");
    let g = dd_sym.graph();
    let n = g.n_nodes();
    let weights = vec![1.0; n];
    let k = truth.n_categories();
    let mut rb = recursive_bisection_partition(g, &weights, k, 0.1, 4, 9);
    kway_refine(g, &weights, &mut rb, k, 0.1, 4, 10);
    let mut rg = region_growing_partition(g, &weights, k, 9);
    kway_refine(g, &weights, &mut rg, k, 0.1, 4, 10);
    println!(
        "recursive bisection: cut={:.1} F={:.2}",
        edge_cut(g, &rb),
        avg_f_score(&rb, truth).avg_f
    );
    println!(
        "region growing:      cut={:.1} F={:.2}",
        edge_cut(g, &rg),
        avg_f_score(&rg, truth).avg_f
    );

    println!("\n== Ablation 5: Random-walk teleport probability ==");
    for teleport in [0.01, 0.05, 0.15, 0.3] {
        let sym = symclust_core::RandomWalk::with_teleport(teleport)
            .symmetrize(&cora.graph)
            .expect("random walk");
        let c = MetisLike::with_k(truth.n_categories())
            .cluster(&sym)
            .expect("metis");
        let f = avg_f_score(c.assignments(), truth).avg_f;
        println!("teleport={teleport:<5} F={f:.2}");
    }
}

/// Synthetic controlled validation — the paper's other stated future-work
/// item ("in addition to evaluation on real data we would like to validate
/// results on synthetically controlled datasets"). Sweeps the generator
/// knobs one at a time and reports F for Degree-discounted vs A+Aᵀ
/// (Metis, k = true cluster count), showing *when* symmetrization choice
/// matters: the DD advantage grows with shared-link signal and hub
/// strength, and shrinks as intra-cluster linkage makes clusters visible
/// to naive symmetrization.
fn sweep(cfg: &Config) {
    use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};
    let n = cfg.n(1200);
    let base = SharedLinkDsbmConfig {
        n_nodes: n,
        n_clusters: 20,
        seed: 77,
        ..Default::default()
    };
    let run = |cfg: &SharedLinkDsbmConfig| -> (f64, f64) {
        let g = shared_link_dsbm(cfg).expect("generate");
        let mut out = [0.0f64; 2];
        for (i, method) in [
            SymMethod::DegreeDiscounted {
                alpha: 0.5,
                beta: 0.5,
                threshold: 0.0,
            },
            SymMethod::PlusTranspose,
        ]
        .iter()
        .enumerate()
        {
            let sym = method.symmetrize(&g.graph);
            let c = MetisLike::with_k(20).cluster(&sym).expect("metis");
            out[i] = avg_f_score(c.assignments(), &g.truth).avg_f;
        }
        (out[0], out[1])
    };

    println!("\n== Controlled sweep: when does symmetrization choice matter? ==");
    println!("(shared-link DSBM, n={n}, k=20; F via Metis)");

    println!("--- shared-link signal (p_signature) ---");
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "p_signature", "DD F", "A+A' F", "gap"
    );
    for p in [0.2, 0.4, 0.6, 0.8] {
        let (dd, pt) = run(&SharedLinkDsbmConfig {
            p_signature: p,
            ..base.clone()
        });
        println!("{p:<12} {dd:>8.2} {pt:>8.2} {:>8.2}", dd - pt);
    }

    println!("--- intra-cluster linkage (p_intra) ---");
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "p_intra", "DD F", "A+A' F", "gap"
    );
    for p in [0.0, 0.05, 0.15, 0.4] {
        let (dd, pt) = run(&SharedLinkDsbmConfig {
            p_intra: p,
            ..base.clone()
        });
        println!("{p:<12} {dd:>8.2} {pt:>8.2} {:>8.2}", dd - pt);
    }

    println!("--- hub strength (p_to_hub, 12 hubs) ---");
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "p_to_hub", "DD F", "A+A' F", "gap"
    );
    for p in [0.0, 0.2, 0.5, 0.8] {
        let (dd, pt) = run(&SharedLinkDsbmConfig {
            n_hubs: 12,
            p_to_hub: p,
            ..base.clone()
        });
        println!("{p:<12} {dd:>8.2} {pt:>8.2} {:>8.2}", dd - pt);
    }

    println!("--- reciprocity (p_reciprocal) ---");
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "p_recip", "DD F", "A+A' F", "gap"
    );
    for p in [0.0, 0.2, 0.5, 0.9] {
        let (dd, pt) = run(&SharedLinkDsbmConfig {
            p_reciprocal: p,
            ..base.clone()
        });
        println!("{p:<12} {dd:>8.2} {pt:>8.2} {:>8.2}", dd - pt);
    }
}

/// Prints the best (peak) F per symmetrization+algorithm — the number the
/// paper quotes in prose ("peak F value of 22.79", etc.).
fn summarize_best(records: &[RunRecord]) {
    use std::collections::HashMap;
    let mut best: HashMap<(String, String), &RunRecord> = HashMap::new();
    for r in records {
        if r.f_score.is_none() {
            continue;
        }
        let key = (r.symmetrization.clone(), r.algorithm.clone());
        let e = best.entry(key).or_insert(r);
        if r.f_score > e.f_score {
            *e = r;
        }
    }
    let mut rows: Vec<_> = best.into_values().collect();
    rows.sort_by(|a, b| b.f_score.partial_cmp(&a.f_score).unwrap());
    println!("peak F per (symmetrization, algorithm):");
    for r in rows {
        println!(
            "  {:<18} + {:<9}: F={:.2} at k={}",
            r.symmetrization,
            r.algorithm,
            r.f_score.unwrap(),
            r.n_clusters
        );
    }
}

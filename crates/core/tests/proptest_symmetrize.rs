//! Property-based tests for the symmetrization framework.

use proptest::prelude::*;
use symclust_core::{
    Bibliometric, BibliometricOptions, DegreeDiscounted, DegreeDiscountedOptions, DiscountExponent,
    PlusTranspose, RandomWalk, Symmetrizer,
};
use symclust_graph::DiGraph;

/// Strategy: a random directed graph.
fn digraph(max_n: usize, max_edges: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 1..max_edges)
            .prop_map(move |edges| DiGraph::from_edges(n, &edges).expect("in-bounds edges"))
    })
}

proptest! {
    #[test]
    fn plus_transpose_output_symmetric(g in digraph(30, 150)) {
        let s = PlusTranspose.symmetrize(&g).unwrap();
        prop_assert!(s.adjacency().is_symmetric(1e-12));
        // Every original edge survives.
        for (u, v, _) in g.edges() {
            prop_assert!(s.adjacency().get(u, v as usize) > 0.0);
        }
    }

    #[test]
    fn random_walk_output_symmetric_with_same_structure(g in digraph(25, 120)) {
        let rw = RandomWalk::default().symmetrize(&g).unwrap();
        prop_assert!(rw.adjacency().is_symmetric(1e-10));
        let pt = PlusTranspose.symmetrize(&g).unwrap();
        // §3.2: identical edge set to A + Aᵀ (weights differ). Exact
        // cancellation aside, structures match.
        prop_assert_eq!(rw.adjacency().indices(), pt.adjacency().indices());
        // Total weight equals the walk's non-dangling stationary mass ≤ 1.
        let total: f64 = rw.adjacency().values().iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn bibliometric_output_symmetric_nonnegative(g in digraph(25, 120)) {
        let s = Bibliometric::default().symmetrize(&g).unwrap();
        prop_assert!(s.adjacency().is_symmetric(1e-9));
        for &v in s.adjacency().values() {
            prop_assert!(v > 0.0);
        }
        // No diagonal entries (self-similarity dropped).
        for i in 0..g.n_nodes() {
            prop_assert_eq!(s.adjacency().get(i, i), 0.0);
        }
    }

    #[test]
    fn degree_discounted_output_symmetric_nonnegative(g in digraph(25, 120)) {
        let s = DegreeDiscounted::default().symmetrize(&g).unwrap();
        prop_assert!(s.adjacency().is_symmetric(1e-9));
        for &v in s.adjacency().values() {
            prop_assert!(v > 0.0);
        }
    }

    #[test]
    fn dd_with_zero_exponents_equals_undiscounted_bibliometric(g in digraph(20, 100)) {
        let dd = DegreeDiscounted::with_exponents(0.0, 0.0).symmetrize(&g).unwrap();
        let bib = Bibliometric {
            options: BibliometricOptions { add_identity: false, ..Default::default() },
        }
        .symmetrize(&g)
        .unwrap();
        prop_assert_eq!(dd.adjacency(), bib.adjacency());
    }

    #[test]
    fn dd_weights_bounded_by_undiscounted(g in digraph(20, 100)) {
        // Degrees ≥ 1 wherever A has entries, so every discount factor is
        // ≤ 1 and each DD weight is bounded by the Bibliometric count.
        let dd = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let bib = DegreeDiscounted::with_exponents(0.0, 0.0).symmetrize(&g).unwrap();
        for (r, c, v) in dd.adjacency().iter() {
            prop_assert!(v <= bib.adjacency().get(r, c as usize) + 1e-9);
        }
    }

    #[test]
    fn threshold_monotonically_prunes(g in digraph(20, 100), t in 0.0f64..0.5) {
        let full = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let pruned = DegreeDiscounted::with_threshold(t).symmetrize(&g).unwrap();
        prop_assert!(pruned.n_edges() <= full.n_edges());
        for &v in pruned.adjacency().values() {
            prop_assert!(v >= t);
        }
    }

    #[test]
    fn stronger_discount_never_increases_weights(g in digraph(20, 100)) {
        let half = DegreeDiscounted::with_exponents(0.5, 0.5).symmetrize(&g).unwrap();
        let full = DegreeDiscounted::with_exponents(1.0, 1.0).symmetrize(&g).unwrap();
        for (r, c, v) in full.adjacency().iter() {
            prop_assert!(v <= half.adjacency().get(r, c as usize) + 1e-9);
        }
    }

    #[test]
    fn log_discount_factor_monotone_decreasing(d in 1.0f64..10000.0) {
        let log = DiscountExponent::Log;
        prop_assert!(log.factor(d) >= log.factor(d * 2.0));
        prop_assert!(log.factor(d) <= 1.0 + 1e-12);
        prop_assert!(log.factor(d) > 0.0);
    }

    #[test]
    fn labels_propagate_through_all_methods(g in digraph(12, 40)) {
        let labels: Vec<String> = (0..g.n_nodes()).map(|i| format!("node-{i}")).collect();
        let g = g.with_labels(labels.clone()).unwrap();
        let methods: Vec<Box<dyn Symmetrizer>> = vec![
            Box::new(PlusTranspose),
            Box::new(RandomWalk::default()),
            Box::new(Bibliometric::default()),
            Box::new(DegreeDiscounted::default()),
        ];
        for m in methods {
            let s = m.symmetrize(&g).unwrap();
            prop_assert_eq!(s.graph().labels().unwrap(), &labels[..]);
        }
    }

    #[test]
    fn select_threshold_respects_ordering(g in digraph(30, 200)) {
        let opts = DegreeDiscountedOptions::default();
        let hi = symclust_core::select_threshold(&g, &opts, 50.0, 20, 3).unwrap();
        let lo = symclust_core::select_threshold(&g, &opts, 2.0, 20, 3).unwrap();
        prop_assert!(lo.threshold >= hi.threshold);
    }
}

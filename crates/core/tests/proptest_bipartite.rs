//! Property-based tests for the bipartite degree-discounted extension.

use proptest::prelude::*;
use symclust_core::bipartite::{
    bipartite_degree_discounted, BipartiteGraph, BipartiteOptions, BipartiteSide,
};
use symclust_core::DiscountExponent;

fn bipartite(max_l: usize, max_r: usize) -> impl Strategy<Value = BipartiteGraph> {
    (2..max_l, 2..max_r).prop_flat_map(move |(l, r)| {
        proptest::collection::vec((0..l, 0..r), 1..(3 * (l + r))).prop_map(move |edges| {
            BipartiteGraph::from_edges(l, r, &edges).expect("in-bounds edges")
        })
    })
}

proptest! {
    #[test]
    fn projections_are_symmetric_and_nonnegative(g in bipartite(20, 20)) {
        for side in [BipartiteSide::Left, BipartiteSide::Right] {
            let p = bipartite_degree_discounted(&g, side, &BipartiteOptions::default()).unwrap();
            prop_assert!(p.graph().adjacency().is_symmetric(1e-9));
            for &v in p.graph().adjacency().values() {
                prop_assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn projection_dimensions_match_side(g in bipartite(15, 25)) {
        let l = bipartite_degree_discounted(&g, BipartiteSide::Left, &BipartiteOptions::default())
            .unwrap();
        prop_assert_eq!(l.graph().n_nodes(), g.n_left());
        let r = bipartite_degree_discounted(&g, BipartiteSide::Right, &BipartiteOptions::default())
            .unwrap();
        prop_assert_eq!(r.graph().n_nodes(), g.n_right());
    }

    #[test]
    fn undiscounted_left_projection_counts_shared_neighbors(g in bipartite(12, 12)) {
        let opts = BipartiteOptions {
            own_discount: DiscountExponent::Power(0.0),
            shared_discount: DiscountExponent::Power(0.0),
            threshold: 0.0,
        };
        let p = bipartite_degree_discounted(&g, BipartiteSide::Left, &opts).unwrap();
        let b = g.biadjacency();
        for i in 0..g.n_left() {
            for j in (i + 1)..g.n_left() {
                let shared: f64 = (0..g.n_right())
                    .map(|k| b.get(i, k) * b.get(j, k))
                    .sum();
                prop_assert!((p.graph().adjacency().get(i, j) - shared).abs() < 1e-9,
                    "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn discounting_never_increases_weights(g in bipartite(15, 15)) {
        let raw = bipartite_degree_discounted(&g, BipartiteSide::Left, &BipartiteOptions {
            own_discount: DiscountExponent::Power(0.0),
            shared_discount: DiscountExponent::Power(0.0),
            threshold: 0.0,
        }).unwrap();
        let disc = bipartite_degree_discounted(
            &g,
            BipartiteSide::Left,
            &BipartiteOptions::default(),
        )
        .unwrap();
        for (r, c, v) in disc.graph().adjacency().iter() {
            prop_assert!(v <= raw.graph().adjacency().get(r, c as usize) + 1e-9);
        }
    }

    #[test]
    fn threshold_prunes_monotonically(g in bipartite(15, 15), t in 0.0f64..0.5) {
        let full = bipartite_degree_discounted(&g, BipartiteSide::Left, &BipartiteOptions::default())
            .unwrap();
        let pruned = bipartite_degree_discounted(&g, BipartiteSide::Left, &BipartiteOptions {
            threshold: t,
            ..Default::default()
        }).unwrap();
        prop_assert!(pruned.graph().adjacency().nnz() <= full.graph().adjacency().nnz());
        for &v in pruned.graph().adjacency().values() {
            prop_assert!(v >= t);
        }
    }
}

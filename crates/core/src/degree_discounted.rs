//! Degree-discounted symmetrization (§3.4) — the paper's novel contribution.
//!
//! The Bibliometric matrix over-credits hub nodes: sharing a link with a hub
//! is frequent, hence uninformative (Figure 3). The degree-discounted
//! similarity divides each shared-link contribution by (powers of) the
//! degrees involved:
//!
//! ```text
//! Bd(i,j) = Σ_k A(i,k)·A(j,k) / (Do(i)^α · Di(k)^β · Do(j)^α)
//! Cd(i,j) = Σ_k A(k,i)·A(k,j) / (Di(i)^β · Do(k)^α · Di(j)^β)
//! Ud      = Bd + Cd
//! ```
//!
//! i.e. `Ud = Do⁻ᵅADi⁻ᵝAᵀDo⁻ᵅ + Di⁻ᵝAᵀDo⁻ᵅADi⁻ᵝ` (Eq. 6–8). The paper
//! finds `α = β = 0.5` best — equivalent to L2-normalizing the rows/columns
//! before taking dot products, i.e. a cosine-like similarity — with `1.0`
//! an excessive penalty, `0.25` insufficient, and a logarithmic (IDF-style)
//! discount also insufficient (Table 4 reproduces this sweep).
//!
//! Both products are computed factored: `Bd = X·Xᵀ` with
//! `X = Do⁻ᵅ A Di^{-β/2}`, so the discounts are applied in O(nnz) and the
//! expensive multiply runs through the fused symmetric kernel
//! ([`symclust_sparse::spgemm_syrk_sum_observed`]): both `X·Xᵀ` terms are
//! accumulated upper-triangle-only in a single pass, thresholded on the
//! fly, and mirrored — the full dense-ish similarity matrix (and both
//! intermediate products) are never materialized (§3.5).

use crate::{Result, SymmetrizeError, SymmetrizedGraph, Symmetrizer};
use std::time::Instant;
use symclust_graph::{DiGraph, UnGraph};
use symclust_obs::MetricsRegistry;
use symclust_sparse::{
    accum_from_env, ops, spgemm_syrk_sum_budgeted, spgemm_syrk_sum_observed, threads_from_env,
    AccumStrategy, CancelToken, CsrMatrix, PanelPlan, SpgemmOptions, SyrkTerm,
};

/// How a node's degree discounts its similarity contributions (Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiscountExponent {
    /// Multiply by `degree^(-p)`; `p = 0` disables discounting, `p = 0.5`
    /// is the paper's recommendation.
    Power(f64),
    /// IDF-style logarithmic discount: multiply by `1 / (1 + ln(degree))`.
    Log,
}

impl DiscountExponent {
    /// The multiplicative discount factor for a node of degree `d`.
    ///
    /// `Power(0.0)` is the Table 4 `p = 0` row — no discounting at all —
    /// so it returns `d⁰ = 1` for *every* degree, including zero.
    /// Other exponents return 0 for zero-degree nodes: they contribute
    /// nothing anyway, and this keeps `0^(-p)` from producing infinities.
    pub fn factor(&self, d: f64) -> f64 {
        if let DiscountExponent::Power(p) = *self {
            if p == 0.0 {
                return 1.0;
            }
        }
        if d <= 0.0 {
            return 0.0;
        }
        match *self {
            DiscountExponent::Power(p) => d.powf(-p),
            DiscountExponent::Log => 1.0 / (1.0 + d.ln()),
        }
    }

    /// Human-readable form for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            DiscountExponent::Power(p) => format!("{p}"),
            DiscountExponent::Log => "log".to_string(),
        }
    }
}

/// Options for [`DegreeDiscounted`].
#[derive(Debug, Clone)]
pub struct DegreeDiscountedOptions {
    /// Out-degree discount α (applied to the two endpoint nodes of the
    /// coupling term and the intermediate node of the co-citation term).
    pub alpha: DiscountExponent,
    /// In-degree discount β.
    pub beta: DiscountExponent,
    /// Prune threshold applied during each SpGEMM and to the final sum
    /// (Table 2 uses e.g. 0.01 for Wikipedia).
    pub threshold: f64,
    /// Apply `A := A + I` first (off by default; the paper describes the
    /// `+I` trick for Bibliometric).
    pub add_identity: bool,
    /// SpGEMM worker threads: `1` runs serially, `0` uses all available
    /// cores, `n` uses exactly `n`. The default honors the
    /// `SYMCLUST_THREADS` environment variable and falls back to serial.
    /// Output is bit-identical for every setting.
    pub n_threads: usize,
    /// Memory budget as a cap on the stored nnz of the similarity matrix.
    /// When the Gustavson upper bound exceeds it, the product degrades to
    /// an adaptively thresholded multiply instead of aborting; the result
    /// is flagged [`SymmetrizedGraph::degraded`]. Default `None` (exact).
    pub nnz_budget: Option<usize>,
    /// Per-row accumulator strategy for the SpGEMM kernels. Like
    /// `n_threads`, this never changes output bytes — only which code path
    /// produces them. The default honors `SYMCLUST_ACCUM` and falls back
    /// to adaptive.
    pub accum: AccumStrategy,
    /// Out-of-core panel plan for the SpGEMM kernels. When engaged the
    /// multiply runs tile by tile and may spill partial products to scratch
    /// files, bit-identical to the in-memory path. Never part of cache
    /// keys. The default honors `SYMCLUST_PANEL_ROWS` /
    /// `SYMCLUST_MEMORY_BUDGET` and falls back to disengaged (in-memory).
    pub panel: PanelPlan,
}

impl Default for DegreeDiscountedOptions {
    fn default() -> Self {
        DegreeDiscountedOptions {
            alpha: DiscountExponent::Power(0.5),
            beta: DiscountExponent::Power(0.5),
            threshold: 0.0,
            add_identity: false,
            n_threads: threads_from_env().unwrap_or(1),
            nnz_budget: None,
            accum: accum_from_env().unwrap_or_default(),
            panel: PanelPlan::from_env(),
        }
    }
}

/// `Ud = Do⁻ᵅADi⁻ᵝAᵀDo⁻ᵅ + Di⁻ᵝAᵀDo⁻ᵅADi⁻ᵝ` (Eq. 8).
///
/// ```
/// use symclust_core::{DegreeDiscounted, Symmetrizer};
/// use symclust_graph::generators::figure1_graph;
/// // Nodes 4 and 5 share all links but never link to each other...
/// let g = figure1_graph();
/// let sym = DegreeDiscounted::default().symmetrize(&g).unwrap();
/// // ...yet their degree-discounted similarity is positive.
/// assert!(sym.adjacency().get(4, 5) > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DegreeDiscounted {
    /// Execution options.
    pub options: DegreeDiscountedOptions,
}

impl DegreeDiscounted {
    /// Creates the symmetrizer with the paper-default α = β = 0.5 and the
    /// given prune threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        DegreeDiscounted {
            options: DegreeDiscountedOptions {
                threshold,
                ..Default::default()
            },
        }
    }

    /// Creates the symmetrizer with power-law exponents `alpha`, `beta`.
    pub fn with_exponents(alpha: f64, beta: f64) -> Self {
        DegreeDiscounted {
            options: DegreeDiscountedOptions {
                alpha: DiscountExponent::Power(alpha),
                beta: DiscountExponent::Power(beta),
                ..Default::default()
            },
        }
    }
}

/// The factored form of the degree-discounted similarity:
/// `Ud = X·Xᵀ + Y·Yᵀ` with `X = Rₒᵅ A √(Rᵢᵝ)` and `Y = Rᵢᵝ Aᵀ √(Rₒᵅ)`,
/// where `R` are diagonal discount matrices.
///
/// Exposing the factors lets callers compute *individual rows* of the
/// similarity matrix cheaply — the basis for the paper's sample-based
/// threshold selection (§5.3.1, [`crate::prune::select_threshold`]).
#[derive(Debug, Clone)]
pub struct SimilarityFactors {
    x: CsrMatrix,
    xt: CsrMatrix,
    y: CsrMatrix,
    yt: CsrMatrix,
}

impl SimilarityFactors {
    /// Builds the discount factors for a graph.
    pub fn build(g: &DiGraph, opts: &DegreeDiscountedOptions) -> Result<SimilarityFactors> {
        let a = if opts.add_identity {
            ops::add_diagonal(g.adjacency(), 1.0)?
        } else {
            g.adjacency().clone()
        };
        let out_deg = a.row_sums();
        let in_deg = a.col_sums();
        let f_out: Vec<f64> = out_deg.iter().map(|&d| opts.alpha.factor(d)).collect();
        let f_in: Vec<f64> = in_deg.iter().map(|&d| opts.beta.factor(d)).collect();
        let f_out_sqrt: Vec<f64> = f_out.iter().map(|f| f.sqrt()).collect();
        let f_in_sqrt: Vec<f64> = f_in.iter().map(|f| f.sqrt()).collect();

        // X = diag(f_out) · A · diag(sqrt(f_in))
        let mut x = a.clone();
        ops::scale_rows(&mut x, &f_out)?;
        ops::scale_cols(&mut x, &f_in_sqrt)?;
        // Y = diag(f_in) · Aᵀ · diag(sqrt(f_out))
        let mut y = ops::transpose(&a);
        ops::scale_rows(&mut y, &f_in)?;
        ops::scale_cols(&mut y, &f_out_sqrt)?;
        let xt = ops::transpose(&x);
        let yt = ops::transpose(&y);
        Ok(SimilarityFactors { x, xt, y, yt })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.x.n_rows()
    }

    /// Computes row `i` of `Ud` (diagonal excluded) as `(column, value)`
    /// pairs sorted by column. Cost: O(Σ over i's links of the linked
    /// node's degree) — independent of the rest of the matrix.
    pub fn row(&self, i: usize) -> Vec<(u32, f64)> {
        let n = self.n_nodes();
        let mut acc = vec![0.0f64; n];
        let mut touched: Vec<u32> = Vec::new();
        for (factor, factor_t) in [(&self.x, &self.xt), (&self.y, &self.yt)] {
            for (k, v) in factor.row_iter(i) {
                for (j, w) in factor_t.row_iter(k as usize) {
                    if acc[j as usize] == 0.0 {
                        touched.push(j);
                    }
                    acc[j as usize] += v * w;
                }
            }
        }
        touched.sort_unstable();
        touched
            .into_iter()
            .filter(|&j| j as usize != i)
            .map(|j| (j, acc[j as usize]))
            .filter(|&(_, v)| v != 0.0)
            .collect()
    }

    /// Computes the full similarity matrix with on-the-fly thresholding.
    ///
    /// Both `X·Xᵀ` terms run through the fused symmetric kernel in a
    /// single upper-triangle pass: the *sum* `Bd + Cd` is formed in the
    /// accumulators and thresholded at exactly `threshold` during
    /// emission, then mirrored. (The earlier two-product implementation
    /// thresholded each term at `threshold / 2` before adding, which
    /// could lose entries with true sum in `[t, 1.5t)`; fusing removes
    /// that approximation along with both intermediate matrices.)
    pub fn full(&self, threshold: f64, n_threads: usize) -> Result<CsrMatrix> {
        self.full_with(
            threshold,
            n_threads,
            accum_from_env().unwrap_or_default(),
            PanelPlan::from_env(),
            None,
            None,
            None,
        )
        .map(|r| r.0)
    }

    /// [`full`](Self::full) that polls `token` inside the SpGEMM row loops.
    pub fn full_cancellable(
        &self,
        threshold: f64,
        n_threads: usize,
        token: &CancelToken,
    ) -> Result<CsrMatrix> {
        self.full_with(
            threshold,
            n_threads,
            accum_from_env().unwrap_or_default(),
            PanelPlan::from_env(),
            Some(token),
            None,
            None,
        )
        .map(|r| r.0)
    }

    /// Computes the full matrix like [`full`](Self::full) but caps the
    /// similarity matrix at `nnz_budget` stored entries, degrading to an
    /// adaptively thresholded multiply when the Gustavson upper bound
    /// exceeds it. Returns the matrix and whether degradation occurred.
    #[allow(clippy::too_many_arguments)]
    fn full_with(
        &self,
        threshold: f64,
        n_threads: usize,
        accum: AccumStrategy,
        panel: PanelPlan,
        token: Option<&CancelToken>,
        nnz_budget: Option<usize>,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<(CsrMatrix, bool)> {
        let opts = SpgemmOptions {
            threshold,
            drop_diagonal: true,
            n_threads,
            accum,
            panel,
            ..Default::default()
        };
        let terms = [
            SyrkTerm {
                x: &self.x,
                xt: &self.xt,
            },
            SyrkTerm {
                x: &self.y,
                xt: &self.yt,
            },
        ];
        if let Some(budget) = nnz_budget {
            let r = spgemm_syrk_sum_budgeted(&terms, &opts, budget, token, metrics)?;
            return Ok((r.matrix, r.degraded));
        }
        let u = spgemm_syrk_sum_observed(&terms, &opts, token, metrics)?;
        Ok((u, false))
    }
}

impl DegreeDiscounted {
    fn symmetrize_with(
        &self,
        g: &DiGraph,
        token: Option<&CancelToken>,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<SymmetrizedGraph> {
        if let DiscountExponent::Power(p) = self.options.alpha {
            if p < 0.0 {
                return Err(SymmetrizeError::InvalidConfig(format!(
                    "negative discount exponent alpha = {p}"
                )));
            }
        }
        if let DiscountExponent::Power(p) = self.options.beta {
            if p < 0.0 {
                return Err(SymmetrizeError::InvalidConfig(format!(
                    "negative discount exponent beta = {p}"
                )));
            }
        }
        let start = Instant::now();
        let factors = SimilarityFactors::build(g, &self.options)?;
        let (u, degraded) = factors.full_with(
            self.options.threshold,
            self.options.n_threads,
            self.options.accum,
            self.options.panel.clone(),
            token,
            self.options.nnz_budget,
            metrics,
        )?;
        let mut un = UnGraph::from_symmetric_unchecked(u);
        if let Some(labels) = g.labels() {
            un = un.with_labels(labels.to_vec())?;
        }
        Ok(
            SymmetrizedGraph::new(un, self.name(), self.options.threshold, start.elapsed())
                .with_degraded(degraded),
        )
    }
}

impl Symmetrizer for DegreeDiscounted {
    fn name(&self) -> String {
        "Degree-discounted".to_string()
    }

    fn symmetrize(&self, g: &DiGraph) -> Result<SymmetrizedGraph> {
        self.symmetrize_with(g, None, None)
    }

    fn symmetrize_cancellable(&self, g: &DiGraph, token: &CancelToken) -> Result<SymmetrizedGraph> {
        self.symmetrize_with(g, Some(token), None)
    }

    fn symmetrize_observed(
        &self,
        g: &DiGraph,
        token: &CancelToken,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<SymmetrizedGraph> {
        self.symmetrize_with(g, Some(token), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::{figure1_graph, star_graph};

    #[test]
    fn matches_hand_computed_formula() {
        // A: 0→2, 1→2. Out-degrees: 1,1,0. In-degrees: 0,0,2.
        // Bd(0,1) = 1 / (1^0.5 · 2^0.5 · 1^0.5) = 1/√2. Cd(0,1) = 0.
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let s = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let expected = 1.0 / 2.0f64.sqrt();
        assert!((s.adjacency().get(0, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn alpha_beta_zero_recovers_bibliometric_values() {
        let g = figure1_graph();
        let dd = DegreeDiscounted::with_exponents(0.0, 0.0)
            .symmetrize(&g)
            .unwrap();
        let bib = crate::Bibliometric {
            options: crate::BibliometricOptions {
                add_identity: false,
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert_eq!(dd.adjacency(), bib.adjacency());
    }

    #[test]
    fn output_is_symmetric() {
        let g = figure1_graph();
        let s = DegreeDiscounted::default().symmetrize(&g).unwrap();
        assert!(s.adjacency().is_symmetric(1e-9));
    }

    #[test]
    fn figure1_pair_strongly_connected() {
        let g = figure1_graph();
        let s = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let w45 = s.adjacency().get(4, 5);
        assert!(w45 > 0.0);
        // (4,5) should be among the strongest pairs in the graph: they share
        // everything. Compare with (1,2), which share only out-links {4,5}.
        assert!(w45 > s.adjacency().get(1, 2));
    }

    #[test]
    fn hub_contributions_are_discounted() {
        // Star + one shared non-hub target: sharing the low-in-degree target
        // must contribute more than sharing the hub.
        // Nodes 1..=8 → 0 (hub); nodes 1, 2 also → 9 (in-degree 2).
        let mut edges: Vec<(usize, usize)> = (1..=8).map(|i| (i, 0)).collect();
        edges.push((1, 9));
        edges.push((2, 9));
        let g = DiGraph::from_edges(10, &edges).unwrap();
        let s = DegreeDiscounted::default().symmetrize(&g).unwrap();
        // Similarity(1,2) includes hub term 1/(√2·√8·√2) and target term
        // 1/(√2·√2·√2); similarity(3,4) only the hub term 1/(1·√8·1).
        let via_both = s.adjacency().get(1, 2);
        let via_hub_only = s.adjacency().get(3, 4);
        assert!(via_both > via_hub_only);
        let expected_hub_only = 1.0 / 8.0f64.sqrt();
        assert!((via_hub_only - expected_hub_only).abs() < 1e-12);
    }

    #[test]
    fn stronger_discount_shrinks_hub_weights() {
        let g = star_graph(20);
        let half = DegreeDiscounted::with_exponents(0.5, 0.5)
            .symmetrize(&g)
            .unwrap();
        let full = DegreeDiscounted::with_exponents(1.0, 1.0)
            .symmetrize(&g)
            .unwrap();
        // Leaf pairs share the hub; the 1.0 exponent discounts them harder.
        assert!(full.adjacency().get(1, 2) < half.adjacency().get(1, 2));
    }

    #[test]
    fn log_discount_is_between_zero_and_half_for_hubs() {
        let d = 1000.0;
        let none = DiscountExponent::Power(0.0).factor(d);
        let log = DiscountExponent::Log.factor(d);
        let half = DiscountExponent::Power(0.5).factor(d);
        assert!(log < none);
        assert!(log > half, "log discount should be gentler than sqrt");
        assert_eq!(DiscountExponent::Log.label(), "log");
        assert_eq!(DiscountExponent::Power(0.5).label(), "0.5");
    }

    #[test]
    fn zero_degree_factor_is_zero() {
        assert_eq!(DiscountExponent::Power(0.5).factor(0.0), 0.0);
        assert_eq!(DiscountExponent::Log.factor(0.0), 0.0);
    }

    #[test]
    fn power_zero_is_a_noop_discount_even_for_zero_degree() {
        // Table 4's p = 0 row: no discounting, d⁰ = 1 for every degree.
        assert_eq!(DiscountExponent::Power(0.0).factor(0.0), 1.0);
        assert_eq!(DiscountExponent::Power(0.0).factor(1.0), 1.0);
        assert_eq!(DiscountExponent::Power(0.0).factor(1000.0), 1.0);
    }

    #[test]
    fn power_zero_recovers_bibliometric_with_isolated_nodes() {
        // Regression for the Table 4 p = 0 row: a graph with an isolated
        // node (degree 0 both ways) and a sink (out-degree 0). With
        // p = 0 the discount must be a strict no-op, so the similarity
        // equals plain Bibliometric.
        let g = DiGraph::from_edges(5, &[(0, 2), (1, 2), (0, 3)]).unwrap(); // node 4 isolated
        let dd = DegreeDiscounted::with_exponents(0.0, 0.0)
            .symmetrize(&g)
            .unwrap();
        let bib = crate::Bibliometric {
            options: crate::BibliometricOptions {
                add_identity: false,
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert_eq!(dd.adjacency(), bib.adjacency());
        // Shared out-link (0,1): one common target, undiscounted weight 1.
        assert_eq!(dd.adjacency().get(0, 1), 1.0);
    }

    #[test]
    fn factor_rows_match_full_matrix() {
        let g = figure1_graph();
        let opts = DegreeDiscountedOptions::default();
        let factors = SimilarityFactors::build(&g, &opts).unwrap();
        let full = factors.full(0.0, 1).unwrap();
        for i in 0..g.n_nodes() {
            let row = factors.row(i);
            assert_eq!(row.len(), full.row_nnz(i), "row {i} length");
            for (j, v) in row {
                assert!((full.get(i, j as usize) - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn threshold_is_applied() {
        let g = figure1_graph();
        let full = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let max_w = full
            .adjacency()
            .values()
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let pruned = DegreeDiscounted::with_threshold(max_w * 0.9)
            .symmetrize(&g)
            .unwrap();
        assert!(pruned.n_edges() < full.n_edges());
        for &v in pruned.adjacency().values() {
            assert!(v >= max_w * 0.9);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let g = figure1_graph();
        let serial = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let parallel = DegreeDiscounted {
            options: DegreeDiscountedOptions {
                n_threads: 0,
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert_eq!(serial.adjacency().indices(), parallel.adjacency().indices());
        for (a, b) in serial
            .adjacency()
            .values()
            .iter()
            .zip(parallel.adjacency().values())
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn cancelled_token_aborts_symmetrization() {
        let g = figure1_graph();
        let token = CancelToken::new();
        token.cancel();
        let err = DegreeDiscounted::default()
            .symmetrize_cancellable(&g, &token)
            .unwrap_err();
        assert!(err.is_cancelled(), "got {err:?}");
    }

    #[test]
    fn live_token_matches_plain_symmetrize() {
        let g = figure1_graph();
        let plain = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let token = CancelToken::new();
        let cancellable = DegreeDiscounted::default()
            .symmetrize_cancellable(&g, &token)
            .unwrap();
        assert_eq!(plain.adjacency(), cancellable.adjacency());
    }

    #[test]
    fn tight_budget_degrades_and_generous_budget_is_exact() {
        let g = star_graph(40);
        let exact = DegreeDiscounted::default().symmetrize(&g).unwrap();
        let generous = DegreeDiscounted {
            options: DegreeDiscountedOptions {
                nnz_budget: Some(1_000_000),
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert!(!generous.degraded());
        assert_eq!(exact.adjacency(), generous.adjacency());
        let tight = DegreeDiscounted {
            options: DegreeDiscountedOptions {
                nnz_budget: Some(20),
                ..Default::default()
            },
        }
        .symmetrize(&g)
        .unwrap();
        assert!(tight.degraded());
        assert!(tight.adjacency().is_symmetric(1e-9));
    }

    #[test]
    fn rejects_negative_exponents() {
        let g = figure1_graph();
        assert!(DegreeDiscounted::with_exponents(-1.0, 0.5)
            .symmetrize(&g)
            .is_err());
        assert!(DegreeDiscounted::with_exponents(0.5, -0.1)
            .symmetrize(&g)
            .is_err());
    }
}

//! Random-walk symmetrization (§3.2).
//!
//! `U = (ΠP + PᵀΠ) / 2`, where `P` is the transition matrix of the random
//! walk on `G` and `Π = diag(π)` holds its stationary distribution (computed
//! with teleportation, the paper uses probability 0.05). Gleich \[9\] showed
//! that the undirected normalized cut on `G_U` equals the *directed*
//! normalized cut (Eq. 3) on `G` for every vertex subset, so clustering
//! `G_U` with any NCut-minimizing algorithm reproduces directed spectral
//! clustering — without eigenvectors.
//!
//! Note the edge set of `U` is identical to `A + Aᵀ` (§3.2): only the
//! weights differ. The same Figure-1 drawback therefore applies.

use crate::{Result, SymmetrizedGraph, Symmetrizer};
use std::time::Instant;
use symclust_graph::{DiGraph, UnGraph};
use symclust_sparse::{ops, pagerank, PageRankOptions};

/// Options for [`RandomWalk`].
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkOptions {
    /// Teleport probability for the stationary-distribution computation
    /// (the paper uses 0.05 in all experiments, §4.2).
    pub teleport: f64,
    /// Convergence tolerance of the power iteration.
    pub tol: f64,
    /// Power-iteration budget.
    pub max_iter: usize,
}

impl Default for RandomWalkOptions {
    fn default() -> Self {
        RandomWalkOptions {
            teleport: 0.05,
            tol: 1e-10,
            max_iter: 1000,
        }
    }
}

/// `U = (ΠP + PᵀΠ)/2`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomWalk {
    /// Stationary-distribution options.
    pub options: RandomWalkOptions,
}

impl RandomWalk {
    /// Creates the symmetrizer with a specific teleport probability.
    pub fn with_teleport(teleport: f64) -> Self {
        RandomWalk {
            options: RandomWalkOptions {
                teleport,
                ..Default::default()
            },
        }
    }
}

impl Symmetrizer for RandomWalk {
    fn name(&self) -> String {
        "Random Walk".to_string()
    }

    fn symmetrize(&self, g: &DiGraph) -> Result<SymmetrizedGraph> {
        let start = Instant::now();
        let a = g.adjacency();
        let pr = pagerank(
            a,
            &PageRankOptions {
                teleport: self.options.teleport,
                tol: self.options.tol,
                max_iter: self.options.max_iter,
            },
        )?;
        // M = Π P; then U = (M + Mᵀ)/2.
        let mut m = ops::row_normalize(a);
        ops::scale_rows(&mut m, &pr.pi)?;
        let mt = ops::transpose(&m);
        let u = ops::add_scaled(&m, 0.5, &mt, 0.5)?;
        let mut un = UnGraph::from_symmetric_unchecked(u);
        if let Some(labels) = g.labels() {
            un = un.with_labels(labels.to_vec())?;
        }
        Ok(SymmetrizedGraph::new(un, self.name(), 0.0, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symclust_graph::generators::{cycle_graph, figure1_graph};

    #[test]
    fn output_is_symmetric() {
        let g = figure1_graph();
        let s = RandomWalk::default().symmetrize(&g).unwrap();
        assert!(s.adjacency().is_symmetric(1e-12));
    }

    #[test]
    fn same_edge_set_as_plus_transpose() {
        let g = figure1_graph();
        let rw = RandomWalk::default().symmetrize(&g).unwrap();
        let pt = crate::PlusTranspose.symmetrize(&g).unwrap();
        assert_eq!(rw.adjacency().indptr(), pt.adjacency().indptr());
        assert_eq!(rw.adjacency().indices(), pt.adjacency().indices());
        // Figure-1 failure mode persists.
        assert_eq!(rw.adjacency().get(4, 5), 0.0);
    }

    #[test]
    fn cycle_edges_weighted_by_stationary_mass() {
        // On a directed n-cycle, π is uniform (1/n) and P(u, v) = 1, so each
        // undirected edge weight is (1/n · 1 + 0)/2 = 1/(2n).
        let n = 6;
        let g = cycle_graph(n);
        let s = RandomWalk::default().symmetrize(&g).unwrap();
        for i in 0..n {
            let w = s.adjacency().get(i, (i + 1) % n);
            assert!((w - 1.0 / (2.0 * n as f64)).abs() < 1e-6, "edge weight {w}");
        }
    }

    #[test]
    fn total_weight_is_walk_probability_mass() {
        // Σ U(i,j) over all i,j equals Σ π(i) P(i,j) = Σ π(i) over
        // non-dangling nodes; with no dangling nodes that's 1.
        let g = cycle_graph(5);
        let s = RandomWalk::default().symmetrize(&g).unwrap();
        let total: f64 = s.adjacency().values().iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn teleport_is_configurable() {
        let g = figure1_graph();
        let a = RandomWalk::with_teleport(0.05).symmetrize(&g).unwrap();
        let b = RandomWalk::with_teleport(0.5).symmetrize(&g).unwrap();
        // Different teleport → different stationary distribution → weights.
        let da: f64 = a.adjacency().values().iter().sum();
        let db: f64 = b.adjacency().values().iter().sum();
        assert!((da - db).abs() > 1e-6);
    }

    #[test]
    fn handles_dangling_nodes() {
        let g = DiGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let s = RandomWalk::default().symmetrize(&g).unwrap();
        assert!(s.adjacency().is_symmetric(1e-12));
        assert!(s.adjacency().get(0, 2) > 0.0);
    }
}

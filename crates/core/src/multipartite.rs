//! Degree-discounted similarity over multi-partite chains.
//!
//! Completes the paper's future-work sentence — "extending our approaches
//! to bi-partite and **multi-partite** graphs". A chain-structured
//! multi-partite graph has layers `0..=L` with a biadjacency matrix `Bᵢ`
//! relating layer `i` to layer `i+1` (e.g. users → items → tags). Two
//! layer-0 nodes are similar when the *meta-path* through the chain lands
//! them on the same terminal-layer nodes, with every traversed node
//! discounted by (a power of) its degree so high-degree intermediates —
//! blockbuster items, umbrella tags — contribute little, exactly like hubs
//! in the directed case (§3.4).
//!
//! Formally, with `Dᵢ` the layer-`i` degree matrices along the chain,
//!
//! ```text
//! X = D₀⁻ᵅ · B₀ · D₁⁻ᵝ · B₁ · ... · B_{L-1} · D_L^{-β/2}
//! S = X · Xᵀ
//! ```
//!
//! which reduces exactly to the bipartite projection for a single link.

use crate::degree_discounted::DiscountExponent;
use crate::{Result, SymmetrizeError};
use symclust_graph::UnGraph;
use symclust_sparse::{ops, spgemm_syrk_observed, CsrMatrix, SpgemmOptions};

/// A chain of biadjacency matrices: `links[i]` relates layer `i` (rows) to
/// layer `i+1` (columns).
#[derive(Debug, Clone)]
pub struct MultipartiteChain {
    links: Vec<CsrMatrix>,
}

impl MultipartiteChain {
    /// Builds a chain, validating that consecutive dimensions agree.
    pub fn new(links: Vec<CsrMatrix>) -> Result<MultipartiteChain> {
        if links.is_empty() {
            return Err(SymmetrizeError::InvalidConfig(
                "chain needs at least one link".into(),
            ));
        }
        for (i, pair) in links.windows(2).enumerate() {
            if pair[0].n_cols() != pair[1].n_rows() {
                return Err(SymmetrizeError::InvalidConfig(format!(
                    "link {i} has {} columns but link {} has {} rows",
                    pair[0].n_cols(),
                    i + 1,
                    pair[1].n_rows()
                )));
            }
        }
        Ok(MultipartiteChain { links })
    }

    /// Number of layers (`links + 1`).
    pub fn n_layers(&self) -> usize {
        self.links.len() + 1
    }

    /// Node count of layer `i`.
    pub fn layer_size(&self, i: usize) -> usize {
        if i == 0 {
            self.links[0].n_rows()
        } else {
            self.links[i - 1].n_cols()
        }
    }

    /// The biadjacency matrices.
    pub fn links(&self) -> &[CsrMatrix] {
        &self.links
    }
}

/// Options for [`chain_degree_discounted`].
#[derive(Debug, Clone, Copy)]
pub struct ChainOptions {
    /// Discount on layer-0 (the projected side's) degrees — the paper's α.
    pub own_discount: DiscountExponent,
    /// Discount on intermediate and terminal layer degrees — the paper's β.
    pub via_discount: DiscountExponent,
    /// Prune threshold for the final similarity product.
    pub threshold: f64,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            own_discount: DiscountExponent::Power(0.5),
            via_discount: DiscountExponent::Power(0.5),
            threshold: 0.0,
        }
    }
}

/// Computes the degree-discounted meta-path similarity among layer-0 nodes
/// of a multipartite chain.
pub fn chain_degree_discounted(chain: &MultipartiteChain, opts: &ChainOptions) -> Result<UnGraph> {
    // Layer degrees: layer 0 uses row sums of B₀; intermediate layer i
    // combines incoming (col sums of B_{i-1}) and outgoing (row sums of
    // Bᵢ) mass; the terminal layer uses col sums of the last link.
    let links = chain.links();
    let factor = |exp: DiscountExponent, degs: &[f64]| -> Vec<f64> {
        degs.iter().map(|&d| exp.factor(d)).collect()
    };

    // X starts as D₀⁻ᵅ · B₀.
    let mut x = links[0].clone();
    let own_deg = links[0].row_sums();
    ops::scale_rows(&mut x, &factor(opts.own_discount, &own_deg))
        .map_err(SymmetrizeError::Sparse)?;

    // Walk the chain, discounting each intermediate layer once.
    for (i, link) in links.iter().enumerate().skip(1) {
        let mut via_deg = links[i - 1].col_sums();
        for (d, extra) in via_deg.iter_mut().zip(link.row_sums()) {
            *d += extra;
        }
        ops::scale_cols(&mut x, &factor(opts.via_discount, &via_deg))
            .map_err(SymmetrizeError::Sparse)?;
        x = symclust_sparse::spgemm(&x, link).map_err(SymmetrizeError::Sparse)?;
    }

    // Terminal layer: split the discount across the two sides of X·Xᵀ.
    let term_deg = links[links.len() - 1].col_sums();
    let sqrt_factor: Vec<f64> = term_deg
        .iter()
        .map(|&d| opts.via_discount.factor(d).sqrt())
        .collect();
    ops::scale_cols(&mut x, &sqrt_factor).map_err(SymmetrizeError::Sparse)?;

    let xt = ops::transpose(&x);
    let s = spgemm_syrk_observed(
        &x,
        &xt,
        &SpgemmOptions {
            threshold: opts.threshold,
            drop_diagonal: true,
            n_threads: 0,
            ..Default::default()
        },
        None,
        None,
    )
    .map_err(SymmetrizeError::Sparse)?;
    Ok(UnGraph::from_symmetric_unchecked(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::{
        bipartite_degree_discounted, BipartiteGraph, BipartiteOptions, BipartiteSide,
    };
    use symclust_sparse::CooMatrix;

    fn link(rows: usize, cols: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        CooMatrix::from_triplets(rows, cols, edges.iter().map(|&(r, c)| (r, c, 1.0)))
            .unwrap()
            .to_csr()
    }

    #[test]
    fn single_link_chain_matches_bipartite_projection() {
        let edges = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 2), (0, 3)];
        let b = link(4, 4, &edges);
        let chain = MultipartiteChain::new(vec![b.clone()]).unwrap();
        let s = chain_degree_discounted(&chain, &ChainOptions::default()).unwrap();
        let bip = bipartite_degree_discounted(
            &BipartiteGraph::from_biadjacency(b),
            BipartiteSide::Left,
            &BipartiteOptions::default(),
        )
        .unwrap();
        assert_eq!(s.adjacency(), bip.graph().adjacency());
    }

    #[test]
    fn three_layer_chain_links_users_through_tags() {
        // Users 0,1 buy items 0,1; users 2,3 buy items 2,3.
        // Items 0,1 share tag 0; items 2,3 share tag 1.
        let users_items = link(
            4,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
            ],
        );
        let items_tags = link(4, 2, &[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let chain = MultipartiteChain::new(vec![users_items, items_tags]).unwrap();
        assert_eq!(chain.n_layers(), 3);
        assert_eq!(chain.layer_size(0), 4);
        assert_eq!(chain.layer_size(2), 2);
        let s = chain_degree_discounted(&chain, &ChainOptions::default()).unwrap();
        // Users 0,1 reach tag 0; users 2,3 reach tag 1: within-community
        // similarity positive, cross-community zero.
        assert!(s.weight(0, 1) > 0.0);
        assert!(s.weight(2, 3) > 0.0);
        assert_eq!(s.weight(0, 2), 0.0);
        assert_eq!(s.weight(1, 3), 0.0);
    }

    #[test]
    fn umbrella_tags_are_discounted() {
        // All four items share umbrella tag 0; items 0,1 also share the
        // niche tag 1 and items 2,3 the niche tag 2.
        let users_items = link(4, 4, &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let items_tags = link(
            4,
            3,
            &[
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0),
                (0, 1),
                (1, 1),
                (2, 2),
                (3, 2),
            ],
        );
        let chain = MultipartiteChain::new(vec![users_items, items_tags]).unwrap();
        let s = chain_degree_discounted(&chain, &ChainOptions::default()).unwrap();
        // Within-pair similarity (via umbrella + niche) must exceed
        // cross-pair similarity (umbrella only).
        assert!(
            s.weight(0, 1) > s.weight(0, 2),
            "within {} vs cross {}",
            s.weight(0, 1),
            s.weight(0, 2)
        );
        // With no discount the umbrella tag contributes as much as a niche.
        let raw = chain_degree_discounted(
            &chain,
            &ChainOptions {
                own_discount: DiscountExponent::Power(0.0),
                via_discount: DiscountExponent::Power(0.0),
                threshold: 0.0,
            },
        )
        .unwrap();
        let ratio_disc = s.weight(0, 1) / s.weight(0, 2);
        let ratio_raw = raw.weight(0, 1) / raw.weight(0, 2);
        assert!(
            ratio_disc > ratio_raw,
            "discounting should sharpen the contrast: {ratio_disc} vs {ratio_raw}"
        );
    }

    #[test]
    fn rejects_mismatched_chain() {
        let a = link(2, 3, &[(0, 0)]);
        let b = link(4, 2, &[(0, 0)]);
        assert!(MultipartiteChain::new(vec![a, b]).is_err());
        assert!(MultipartiteChain::new(vec![]).is_err());
    }

    #[test]
    fn threshold_prunes() {
        let users_items = link(3, 2, &[(0, 0), (1, 0), (2, 1)]);
        let chain = MultipartiteChain::new(vec![users_items]).unwrap();
        let full = chain_degree_discounted(&chain, &ChainOptions::default()).unwrap();
        assert!(full.weight(0, 1) > 0.0);
        let pruned = chain_degree_discounted(
            &chain,
            &ChainOptions {
                threshold: full.weight(0, 1) * 1.01,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pruned.weight(0, 1), 0.0);
    }
}

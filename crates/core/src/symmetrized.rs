//! The output of a symmetrization: an undirected graph plus provenance.

use std::time::Duration;
use symclust_graph::UnGraph;
use symclust_sparse::CsrMatrix;

/// A symmetrized graph: the undirected similarity graph plus metadata about
/// how it was produced, used by the experiment harness for Table 2 and the
/// timing figures.
#[derive(Debug, Clone)]
pub struct SymmetrizedGraph {
    graph: UnGraph,
    method: String,
    threshold: f64,
    elapsed: Duration,
    degraded: bool,
}

impl SymmetrizedGraph {
    /// Packages a symmetrization result.
    pub fn new(graph: UnGraph, method: String, threshold: f64, elapsed: Duration) -> Self {
        SymmetrizedGraph {
            graph,
            method,
            threshold,
            elapsed,
            degraded: false,
        }
    }

    /// Marks whether the symmetrization ran in degraded mode (a memory
    /// budget forced a thresholded/truncated SpGEMM instead of the exact
    /// product).
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// True when a memory budget forced a degraded (thresholded) product.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The undirected similarity graph.
    pub fn graph(&self) -> &UnGraph {
        &self.graph
    }

    /// Consumes self, returning the undirected graph.
    pub fn into_graph(self) -> UnGraph {
        self.graph
    }

    /// The symmetric adjacency/similarity matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        self.graph.adjacency()
    }

    /// Name of the symmetrization method that produced this graph.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Prune threshold that was applied (0.0 when none).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Wall-clock time the symmetrization took.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.graph.n_nodes()
    }

    /// Number of undirected edges (Table 2 column).
    pub fn n_edges(&self) -> usize {
        self.graph.n_edges()
    }

    /// Number of isolated nodes (the paper's "singletons" diagnostic for
    /// Bibliometric on Wikipedia, §5.3).
    pub fn n_singletons(&self) -> usize {
        self.graph.n_singletons()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_roundtrip() {
        let g = UnGraph::from_edges(3, &[(0, 1)]).unwrap();
        let s = SymmetrizedGraph::new(g, "Test".into(), 0.5, Duration::from_millis(10));
        assert_eq!(s.method(), "Test");
        assert_eq!(s.threshold(), 0.5);
        assert_eq!(s.elapsed(), Duration::from_millis(10));
        assert!(!s.degraded());
        let s = s.with_degraded(true);
        assert!(s.degraded());
        assert_eq!(s.n_nodes(), 3);
        assert_eq!(s.n_edges(), 1);
        assert_eq!(s.n_singletons(), 1);
        let g = s.into_graph();
        assert_eq!(g.n_nodes(), 3);
    }
}

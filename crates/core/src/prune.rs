//! Prune-threshold selection by node sampling (§5.3.1).
//!
//! "One can compute all the similarities corresponding to a small random
//! sample of the nodes, and choose a prune threshold such that the average
//! degree when this threshold is applied to the random sample approximates
//! the final average degree that the user desires. For many real networks,
//! an average degree of 50–150 in the symmetrized graph seems most
//! reasonable, since this is the size of typical clusters."

use crate::degree_discounted::{DegreeDiscountedOptions, SimilarityFactors};
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use symclust_graph::DiGraph;

/// Result of sample-based threshold selection.
#[derive(Debug, Clone)]
pub struct ThresholdSelection {
    /// The selected threshold.
    pub threshold: f64,
    /// Average degree the sampled rows would have at that threshold.
    pub expected_avg_degree: f64,
    /// How many nodes were sampled.
    pub n_sampled: usize,
}

/// Selects a prune threshold for the Degree-discounted similarity of `g`
/// such that the symmetrized graph's average degree approximates
/// `target_avg_degree`, by computing the full similarity rows of
/// `sample_size` random nodes.
pub fn select_threshold(
    g: &DiGraph,
    opts: &DegreeDiscountedOptions,
    target_avg_degree: f64,
    sample_size: usize,
    seed: u64,
) -> Result<ThresholdSelection> {
    let n = g.n_nodes();
    let sample_size = sample_size.max(1).min(n);
    let factors = SimilarityFactors::build(g, opts)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<usize> = (0..n).collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(sample_size);

    // Pool every similarity value from the sampled rows; the threshold that
    // yields average degree `t` keeps the top `t * sample_size` of them.
    let mut values: Vec<f64> = Vec::new();
    for &node in &nodes {
        for (_, v) in factors.row(node) {
            values.push(v);
        }
    }
    if values.is_empty() {
        return Ok(ThresholdSelection {
            threshold: 0.0,
            expected_avg_degree: 0.0,
            n_sampled: sample_size,
        });
    }
    values.sort_unstable_by(|a, b| b.total_cmp(a));
    let keep = ((target_avg_degree * sample_size as f64).round() as usize).max(1);
    let (threshold, kept) = if keep >= values.len() {
        // Everything already passes: threshold just below the minimum.
        (values[values.len() - 1] * 0.999, values.len())
    } else {
        (values[keep - 1], keep)
    };
    Ok(ThresholdSelection {
        threshold,
        expected_avg_degree: kept as f64 / sample_size as f64,
        n_sampled: sample_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegreeDiscounted, Symmetrizer};
    use symclust_graph::generators::{shared_link_dsbm, SharedLinkDsbmConfig};

    fn test_graph() -> DiGraph {
        shared_link_dsbm(&SharedLinkDsbmConfig {
            n_nodes: 400,
            n_clusters: 10,
            seed: 21,
            ..Default::default()
        })
        .unwrap()
        .graph
    }

    #[test]
    fn selected_threshold_hits_target_degree() {
        let g = test_graph();
        let opts = DegreeDiscountedOptions::default();
        let target = 20.0;
        let sel = select_threshold(&g, &opts, target, 100, 1).unwrap();
        assert!(sel.threshold > 0.0);
        // Symmetrize with the selected threshold and check the avg degree.
        let dd = DegreeDiscounted {
            options: DegreeDiscountedOptions {
                threshold: sel.threshold,
                ..opts
            },
        };
        let s = dd.symmetrize(&g).unwrap();
        let avg_degree = 2.0 * s.n_edges() as f64 / s.n_nodes() as f64;
        assert!(
            (avg_degree - target).abs() < target * 0.5,
            "target {target}, got {avg_degree} (threshold {})",
            sel.threshold
        );
    }

    #[test]
    fn higher_target_degree_gives_lower_threshold() {
        let g = test_graph();
        let opts = DegreeDiscountedOptions::default();
        let hi = select_threshold(&g, &opts, 50.0, 80, 1).unwrap();
        let lo = select_threshold(&g, &opts, 5.0, 80, 1).unwrap();
        assert!(lo.threshold > hi.threshold);
    }

    #[test]
    fn target_beyond_all_values_keeps_everything() {
        let g = test_graph();
        let opts = DegreeDiscountedOptions::default();
        let sel = select_threshold(&g, &opts, 1e9, 50, 1).unwrap();
        // Expected avg degree is just the sample's full degree.
        assert!(sel.expected_avg_degree > 0.0);
        assert!(sel.threshold > 0.0);
    }

    #[test]
    fn empty_graph_returns_zero_threshold() {
        let g = DiGraph::from_edges(10, &[]).unwrap();
        let sel = select_threshold(&g, &DegreeDiscountedOptions::default(), 50.0, 5, 1).unwrap();
        assert_eq!(sel.threshold, 0.0);
        assert_eq!(sel.expected_avg_degree, 0.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = test_graph();
        let opts = DegreeDiscountedOptions::default();
        let a = select_threshold(&g, &opts, 20.0, 50, 9).unwrap();
        let b = select_threshold(&g, &opts, 20.0, 50, 9).unwrap();
        assert_eq!(a.threshold, b.threshold);
    }
}

#![warn(missing_docs)]

//! # symclust-core — graph symmetrizations
//!
//! The primary contribution of *"Symmetrizations for Clustering Directed
//! Graphs"* (Satuluri & Parthasarathy, EDBT 2011): transformations that turn
//! a directed graph `G` with adjacency matrix `A` into a weighted undirected
//! graph `G_U` whose edges capture the similarity structure relevant for
//! clustering. The four methods compared in the paper:
//!
//! | method | formula | paper § |
//! |--------|---------|---------|
//! | [`PlusTranspose`] | `U = A + Aᵀ` | 3.1 |
//! | [`RandomWalk`] | `U = (ΠP + PᵀΠ)/2` | 3.2 |
//! | [`Bibliometric`] | `U = AAᵀ + AᵀA` (with `A := A + I`) | 3.3 |
//! | [`DegreeDiscounted`] | `U = Do⁻ᵅADi⁻ᵝAᵀDo⁻ᵅ + Di⁻ᵝAᵀDo⁻ᵅADi⁻ᵝ` | 3.4 |
//!
//! All methods implement the [`Symmetrizer`] trait and produce a
//! [`SymmetrizedGraph`] carrying the undirected graph plus provenance
//! metadata. The [`prune`] module implements the paper's §3.5/§5.3.1
//! machinery: thresholding similarity matrices and selecting a threshold
//! from a random node sample so the symmetrized graph hits a target average
//! degree.

pub mod bibliometric;
pub mod bipartite;
pub mod degree_discounted;
pub mod multipartite;
pub mod plus_transpose;
pub mod prune;
pub mod random_walk;
pub mod symmetrized;

pub use bibliometric::{Bibliometric, BibliometricOptions};
pub use bipartite::{
    bipartite_degree_discounted, BipartiteGraph, BipartiteOptions, BipartiteProjection,
    BipartiteSide,
};
pub use degree_discounted::{DegreeDiscounted, DegreeDiscountedOptions, DiscountExponent};
pub use multipartite::{chain_degree_discounted, ChainOptions, MultipartiteChain};
pub use plus_transpose::PlusTranspose;
pub use prune::{select_threshold, ThresholdSelection};
pub use random_walk::{RandomWalk, RandomWalkOptions};
pub use symmetrized::SymmetrizedGraph;

use symclust_graph::DiGraph;

/// Error type for symmetrization operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum SymmetrizeError {
    /// Underlying sparse-matrix failure.
    Sparse(symclust_sparse::SparseError),
    /// Underlying graph failure.
    Graph(symclust_graph::GraphError),
    /// Invalid configuration.
    InvalidConfig(String),
    /// The symmetrization was cancelled via a
    /// [`CancelToken`](symclust_sparse::CancelToken) (explicitly or by
    /// deadline).
    Cancelled,
}

impl SymmetrizeError {
    /// Whether this error stems from cooperative cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SymmetrizeError::Cancelled)
    }
}

impl std::fmt::Display for SymmetrizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetrizeError::Sparse(e) => write!(f, "sparse error: {e}"),
            SymmetrizeError::Graph(e) => write!(f, "graph error: {e}"),
            SymmetrizeError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SymmetrizeError::Cancelled => write!(f, "symmetrization cancelled"),
        }
    }
}

impl std::error::Error for SymmetrizeError {}

impl From<symclust_sparse::SparseError> for SymmetrizeError {
    fn from(e: symclust_sparse::SparseError) -> Self {
        match e {
            symclust_sparse::SparseError::Cancelled => SymmetrizeError::Cancelled,
            e => SymmetrizeError::Sparse(e),
        }
    }
}

impl From<symclust_graph::GraphError> for SymmetrizeError {
    fn from(e: symclust_graph::GraphError) -> Self {
        SymmetrizeError::Graph(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SymmetrizeError>;

/// A transformation from a directed graph to a weighted undirected graph.
///
/// This is stage 1 of the paper's two-stage framework (Figure 2); any
/// [`Symmetrizer`] can be paired with any stage-2 clustering algorithm.
pub trait Symmetrizer {
    /// Short human-readable method name ("A+A'", "Degree-discounted", ...).
    fn name(&self) -> String;

    /// Transforms the directed graph into an undirected one.
    fn symmetrize(&self, g: &DiGraph) -> Result<SymmetrizedGraph>;

    /// [`symmetrize`](Self::symmetrize) with cooperative cancellation.
    ///
    /// The default implementation only checks the token before starting —
    /// adequate for the cheap methods (`A+Aᵀ`). The similarity methods
    /// ([`Bibliometric`], [`DegreeDiscounted`]) override it to poll inside
    /// their SpGEMM row loops, so a multi-second symmetrization stops
    /// within one row's work of the token tripping.
    fn symmetrize_cancellable(
        &self,
        g: &DiGraph,
        token: &symclust_sparse::CancelToken,
    ) -> Result<SymmetrizedGraph> {
        token.checkpoint()?;
        self.symmetrize(g)
    }

    /// [`symmetrize_cancellable`](Self::symmetrize_cancellable) that also
    /// records kernel work counters (SpGEMM rows/flops/nnz, degraded
    /// fallbacks — DESIGN.md §11) into `metrics`.
    ///
    /// The default implementation ignores the registry — correct for the
    /// cheap methods, whose cost the engine's stage spans already capture.
    /// The SpGEMM-backed methods ([`Bibliometric`], [`DegreeDiscounted`])
    /// override it to thread the registry into their multiply kernels.
    fn symmetrize_observed(
        &self,
        g: &DiGraph,
        token: &symclust_sparse::CancelToken,
        metrics: Option<&symclust_obs::MetricsRegistry>,
    ) -> Result<SymmetrizedGraph> {
        let _ = metrics;
        self.symmetrize_cancellable(g, token)
    }
}

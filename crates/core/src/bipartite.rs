//! Degree-discounted similarity for bipartite graphs.
//!
//! The paper's conclusion names "extending our approaches to bi-partite and
//! multi-partite graphs" as a promising avenue; this module implements that
//! extension. A bipartite graph (users × items, papers × venues, documents
//! × terms) has an `n × m` biadjacency matrix `B` relating *left* nodes to
//! *right* nodes. Two left nodes are similar when they connect to the same
//! right nodes — exactly the bibliographic-coupling intuition — and hub
//! right-nodes (items everyone buys, terms every document contains) inflate
//! raw co-occurrence counts exactly like hub pages inflate `AAᵀ`.
//!
//! The degree-discounted left-similarity therefore mirrors Eq. 6:
//!
//! ```text
//! S_left  = Dl^{-α} · B · Dr^{-β} · Bᵀ · Dl^{-α}
//! S_right = Dr^{-β} · Bᵀ · Dl^{-α} · B · Dr^{-β}
//! ```
//!
//! with `Dl`, `Dr` the left/right degree matrices. `α = β = 0.5` again
//! makes this a cosine-style normalization. The result is an undirected
//! similarity graph over one side of the bipartite graph, ready for any
//! stage-2 clusterer.

use crate::degree_discounted::DiscountExponent;
use crate::{Result, SymmetrizeError};
use std::time::Instant;
use symclust_graph::UnGraph;
use symclust_sparse::{ops, spgemm_syrk_observed, CsrMatrix, SpgemmOptions};

/// A bipartite graph with `n_left` left nodes and `n_right` right nodes.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    biadjacency: CsrMatrix,
}

impl BipartiteGraph {
    /// Wraps an `n_left × n_right` biadjacency matrix.
    pub fn from_biadjacency(biadjacency: CsrMatrix) -> BipartiteGraph {
        BipartiteGraph { biadjacency }
    }

    /// Builds from `(left, right)` edges.
    pub fn from_edges(
        n_left: usize,
        n_right: usize,
        edges: &[(usize, usize)],
    ) -> Result<BipartiteGraph> {
        let mut coo = symclust_sparse::CooMatrix::with_capacity(n_left, n_right, edges.len());
        for &(l, r) in edges {
            coo.push(l, r, 1.0).map_err(SymmetrizeError::Sparse)?;
        }
        Ok(BipartiteGraph {
            biadjacency: coo.to_csr(),
        })
    }

    /// Number of left nodes.
    pub fn n_left(&self) -> usize {
        self.biadjacency.n_rows()
    }

    /// Number of right nodes.
    pub fn n_right(&self) -> usize {
        self.biadjacency.n_cols()
    }

    /// Number of bipartite edges.
    pub fn n_edges(&self) -> usize {
        self.biadjacency.nnz()
    }

    /// The biadjacency matrix.
    pub fn biadjacency(&self) -> &CsrMatrix {
        &self.biadjacency
    }

    /// Left-node weighted degrees.
    pub fn left_degrees(&self) -> Vec<f64> {
        self.biadjacency.row_sums()
    }

    /// Right-node weighted degrees.
    pub fn right_degrees(&self) -> Vec<f64> {
        self.biadjacency.col_sums()
    }
}

/// Which side of the bipartite graph to project the similarity onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BipartiteSide {
    /// Similarity among left (row) nodes.
    Left,
    /// Similarity among right (column) nodes.
    Right,
}

/// Options for [`bipartite_degree_discounted`].
#[derive(Debug, Clone, Copy)]
pub struct BipartiteOptions {
    /// Discount on the projected side's own degrees (α).
    pub own_discount: DiscountExponent,
    /// Discount on the shared-neighbor side's degrees (β).
    pub shared_discount: DiscountExponent,
    /// Prune threshold applied during the product.
    pub threshold: f64,
}

impl Default for BipartiteOptions {
    fn default() -> Self {
        BipartiteOptions {
            own_discount: DiscountExponent::Power(0.5),
            shared_discount: DiscountExponent::Power(0.5),
            threshold: 0.0,
        }
    }
}

/// Computes the degree-discounted similarity graph over one side of a
/// bipartite graph.
pub fn bipartite_degree_discounted(
    g: &BipartiteGraph,
    side: BipartiteSide,
    opts: &BipartiteOptions,
) -> Result<BipartiteProjection> {
    let start = Instant::now();
    // Work with X = Downᵅ · M · sqrt(Dsharedᵝ) so S = X·Xᵀ, exactly as the
    // directed factorization in `degree_discounted`.
    let m = match side {
        BipartiteSide::Left => g.biadjacency.clone(),
        BipartiteSide::Right => ops::transpose(&g.biadjacency),
    };
    let own_deg = m.row_sums();
    let shared_deg = m.col_sums();
    let f_own: Vec<f64> = own_deg
        .iter()
        .map(|&d| opts.own_discount.factor(d))
        .collect();
    let f_shared_sqrt: Vec<f64> = shared_deg
        .iter()
        .map(|&d| opts.shared_discount.factor(d).sqrt())
        .collect();
    let mut x = m;
    ops::scale_rows(&mut x, &f_own).map_err(SymmetrizeError::Sparse)?;
    ops::scale_cols(&mut x, &f_shared_sqrt).map_err(SymmetrizeError::Sparse)?;
    let xt = ops::transpose(&x);
    let s = spgemm_syrk_observed(
        &x,
        &xt,
        &SpgemmOptions {
            threshold: opts.threshold,
            drop_diagonal: true,
            n_threads: 0,
            ..Default::default()
        },
        None,
        None,
    )
    .map_err(SymmetrizeError::Sparse)?;
    Ok(BipartiteProjection {
        graph: UnGraph::from_symmetric_unchecked(s),
        side,
        threshold: opts.threshold,
        elapsed: start.elapsed(),
    })
}

/// The similarity graph over one side of a bipartite graph.
#[derive(Debug, Clone)]
pub struct BipartiteProjection {
    graph: UnGraph,
    side: BipartiteSide,
    threshold: f64,
    elapsed: std::time::Duration,
}

impl BipartiteProjection {
    /// The undirected similarity graph (nodes are the projected side's).
    pub fn graph(&self) -> &UnGraph {
        &self.graph
    }

    /// Which side was projected.
    pub fn side(&self) -> BipartiteSide {
        self.side
    }

    /// The prune threshold used.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Wall time of the projection.
    pub fn elapsed(&self) -> std::time::Duration {
        self.elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Users 0,1 buy items 0,1; users 2,3 buy items 2,3; everyone buys the
    /// hub item 4.
    fn two_communities_with_hub() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            4,
            5,
            &[
                (0, 0),
                (0, 1),
                (1, 0),
                (1, 1),
                (2, 2),
                (2, 3),
                (3, 2),
                (3, 3),
                (0, 4),
                (1, 4),
                (2, 4),
                (3, 4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_degrees() {
        let g = two_communities_with_hub();
        assert_eq!(g.n_left(), 4);
        assert_eq!(g.n_right(), 5);
        assert_eq!(g.n_edges(), 12);
        assert_eq!(g.left_degrees(), vec![3.0, 3.0, 3.0, 3.0]);
        assert_eq!(g.right_degrees(), vec![2.0, 2.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn left_projection_is_symmetric_and_discounts_hub() {
        let g = two_communities_with_hub();
        let p = bipartite_degree_discounted(&g, BipartiteSide::Left, &BipartiteOptions::default())
            .unwrap();
        let s = p.graph().adjacency();
        assert!(s.is_symmetric(1e-12));
        // Within-community similarity: two shared specific items + the hub.
        // Cross-community: hub only. The former must dominate.
        assert!(
            s.get(0, 1) > 2.0 * s.get(0, 2),
            "within {} vs cross {}",
            s.get(0, 1),
            s.get(0, 2)
        );
    }

    #[test]
    fn undiscounted_projection_counts_shared_neighbors() {
        let g = two_communities_with_hub();
        let opts = BipartiteOptions {
            own_discount: DiscountExponent::Power(0.0),
            shared_discount: DiscountExponent::Power(0.0),
            threshold: 0.0,
        };
        let p = bipartite_degree_discounted(&g, BipartiteSide::Left, &opts).unwrap();
        // Users 0,1 share items {0,1,4} → count 3; users 0,2 share {4} → 1.
        assert_eq!(p.graph().adjacency().get(0, 1), 3.0);
        assert_eq!(p.graph().adjacency().get(0, 2), 1.0);
    }

    #[test]
    fn right_projection_clusters_items() {
        let g = two_communities_with_hub();
        let p = bipartite_degree_discounted(&g, BipartiteSide::Right, &BipartiteOptions::default())
            .unwrap();
        let s = p.graph().adjacency();
        assert_eq!(p.graph().n_nodes(), 5);
        // Items 0 and 1 share buyers {0,1}: strongly similar. Items 0 and 2
        // share none directly (only via hub item? no — right projection
        // counts shared LEFT neighbors; 0 and 2 have disjoint buyers).
        assert!(s.get(0, 1) > 0.0);
        assert_eq!(s.get(0, 2), 0.0);
        assert_eq!(p.side(), BipartiteSide::Right);
    }

    #[test]
    fn threshold_prunes_hub_only_pairs() {
        let g = two_communities_with_hub();
        let full =
            bipartite_degree_discounted(&g, BipartiteSide::Left, &BipartiteOptions::default())
                .unwrap();
        let hub_only = full.graph().adjacency().get(0, 2);
        let within = full.graph().adjacency().get(0, 1);
        let mid = (hub_only + within) / 2.0;
        let pruned = bipartite_degree_discounted(
            &g,
            BipartiteSide::Left,
            &BipartiteOptions {
                threshold: mid,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pruned.graph().adjacency().get(0, 2), 0.0);
        assert!(pruned.graph().adjacency().get(0, 1) > 0.0);
        assert_eq!(pruned.threshold(), mid);
    }

    #[test]
    fn projection_feeds_clustering() {
        // End-to-end: project then verify the two planted communities are
        // separable by connected components after hub pruning.
        let g = two_communities_with_hub();
        let p = bipartite_degree_discounted(
            &g,
            BipartiteSide::Left,
            &BipartiteOptions {
                threshold: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        let (labels, count) = symclust_graph::stats::connected_components(p.graph());
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn rejects_out_of_bounds_edges() {
        assert!(BipartiteGraph::from_edges(2, 2, &[(0, 5)]).is_err());
    }
}
